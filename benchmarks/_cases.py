"""Shared benchmark configuration: the nine Table 1 rows and budgets.

Scaling knobs (environment variables):

* ``REPRO_BENCH_BUDGET``   — seconds per formal check (default 60; the
  paper used 100 s on a 32-core Xeon).
* ``REPRO_BENCH_DEPTH_BUDGET`` — seconds for each "max # of clock cycles"
  ramp (default 5).
* ``REPRO_BENCH_TRIGGER`` — RISC trigger repetition count (default 2;
  the paper's Trojans use 100 — pass 100 to reproduce the exact setting
  with a correspondingly larger budget).
"""

from __future__ import annotations

import os

from repro.designs.trojans import (
    aes_t700,
    aes_t800,
    aes_t1200,
    mc8051_t400,
    mc8051_t700,
    mc8051_t800,
    risc_t100,
    risc_t300,
    risc_t400,
)

BUDGET = float(os.environ.get("REPRO_BENCH_BUDGET", "60"))
DEPTH_BUDGET = float(os.environ.get("REPRO_BENCH_DEPTH_BUDGET", "5"))
TRIGGER_COUNT = int(os.environ.get("REPRO_BENCH_TRIGGER", "2"))


def _risc(factory):
    return lambda: factory(trigger_count=TRIGGER_COUNT)


# label -> (factory, max_cycles, paper row ground truth)
TABLE1_CASES = [
    ("MC8051-T400", mc8051_t400, 12),
    ("MC8051-T700", mc8051_t700, 12),
    ("MC8051-T800", mc8051_t800, 12),
    ("RISC-T100", _risc(risc_t100), 8 + 4 * (TRIGGER_COUNT + 3)),
    ("RISC-T300", _risc(risc_t300), 8 + 4 * (TRIGGER_COUNT + 3)),
    ("RISC-T400", _risc(risc_t400), 8 + 4 * (TRIGGER_COUNT + 3)),
    ("AES-T700", aes_t700, 24),
    ("AES-T800", aes_t800, 12),
    ("AES-T1200", aes_t1200, 16),
]

# Expected paper verdicts (Table 1): every Trojan except AES-T1200 is
# detected by BMC and ATPG; FANCI and VeriTrust detect none.
PAPER_DETECTED = {label: label != "AES-T1200" for label, _f, _c in TABLE1_CASES}


def build_case(label):
    for case_label, factory, cycles in TABLE1_CASES:
        if case_label == label:
            netlist, spec = factory()
            return netlist, spec, cycles
    raise KeyError(label)
