"""Ablation — BMC vs ATPG unroll depth and memory at equal budget.

Section 3.2 / footnote 3: "ATPG is faster and more efficient than a
SAT-based BMC"; Table 1 reports the ATPG unrolling ~3x more clock cycles
in the same 100 s with an order of magnitude less memory. This bench races
the engines on the same Eq. (2) monitors at an equal wall-clock budget and
reports depth and peak-memory ratios. The backward structural justifier
(our TetraMAX stand-in's core) is raced both with and without its
state-cube learning disabled... (learning is structural; the 'atpg-podem'
row shows the PI-decision engine instead).

Run standalone::

    python benchmarks/bench_ablation_bmc_vs_atpg.py
"""

from __future__ import annotations

import sys

import pytest

sys.path.insert(0, "benchmarks")
from _cases import DEPTH_BUDGET, build_case  # noqa: E402

from repro.bench import fmt_memory, max_bound_within_budget, render_table
from repro.core.backends import run_objective
from repro.properties.monitors import build_corruption_monitor

RACE_CASES = ["MC8051-T400", "MC8051-T800", "RISC-T300", "AES-T800"]
ENGINES = ["bmc", "atpg-backward", "atpg-podem"]


def monitor_for(label):
    netlist, spec, cycles = build_case(label)
    register = spec.trojan.target_register
    monitor = build_corruption_monitor(
        netlist, spec.critical[register], functional=True
    )
    return monitor, spec, cycles


def depth_race(label, engine):
    monitor, spec, _cycles = monitor_for(label)
    bound, elapsed = max_bound_within_budget(
        monitor.netlist,
        monitor.objective_net,
        engine,
        DEPTH_BUDGET,
        pinned_inputs=spec.pinned_inputs,
    )
    return bound, elapsed


def memory_race(label, engine):
    monitor, spec, cycles = monitor_for(label)
    result = run_objective(
        engine,
        monitor.netlist,
        monitor.objective_net,
        cycles,
        property_name="mem:{}:{}".format(label, engine),
        pinned_inputs=spec.pinned_inputs,
        time_budget=DEPTH_BUDGET * 4,
        measure_memory=True,
    )
    return result.peak_memory


@pytest.mark.parametrize("label", ["MC8051-T400", "RISC-T300"])
@pytest.mark.parametrize("engine", ENGINES)
def test_depth_race(benchmark, label, engine):
    bound, _elapsed = benchmark.pedantic(
        depth_race, args=(label, engine), rounds=1, iterations=1
    )
    assert bound >= 1


def main():
    rows = []
    ratios = []
    for label in RACE_CASES:
        cells = {engine: depth_race(label, engine)[0] for engine in ENGINES}
        mems = {engine: memory_race(label, engine) for engine in ENGINES}
        rows.append([
            label,
            cells["bmc"],
            cells["atpg-backward"],
            cells["atpg-podem"],
            fmt_memory(mems["bmc"]),
            fmt_memory(mems["atpg-backward"]),
        ])
        if cells["bmc"]:
            best_atpg = max(cells["atpg-backward"], cells["atpg-podem"])
            ratios.append(best_atpg / cells["bmc"])
    print(render_table(
        ["Design", "BMC depth", "ATPG-bwd depth", "ATPG-podem depth",
         "BMC mem", "ATPG mem"],
        rows,
        title="BMC vs ATPG: bounds processed in {}s + peak memory".format(
            DEPTH_BUDGET
        ),
    ))
    if ratios:
        print("mean best-ATPG/BMC depth ratio: {:.2f}x "
              "(paper: ~3x at 100s on a 32-core Xeon)".format(
                  sum(ratios) / len(ratios)))
    # per-bound solve-time shape on one representative case
    from repro.bench import series_compare
    from repro.core.backends import make_engine

    monitor, spec, cycles = monitor_for("MC8051-T400")
    series = {}
    for engine in ("bmc", "atpg-backward"):
        runner = make_engine(
            engine, monitor.netlist, monitor.objective_net,
            pinned_inputs=spec.pinned_inputs,
        )
        result = runner.check(cycles, time_budget=DEPTH_BUDGET * 2)
        series[engine] = result.per_bound_elapsed
    print()
    print(series_compare(
        series,
        title="per-bound solve time, MC8051-T400 (left = bound 1)",
    ))


if __name__ == "__main__":
    main()
