"""Ablation — cone-of-influence reduction.

DESIGN.md calls COI reduction the decision that makes the AES key-register
checks cheap (the key's cone excludes the 12k-cell round datapath). This
bench measures the same BMC check with COI on vs off: encoded variables,
clauses and time per bound.

Run standalone::

    python benchmarks/bench_ablation_coi.py
"""

from __future__ import annotations

import sys

import pytest

sys.path.insert(0, "benchmarks")
from _cases import BUDGET  # noqa: E402

from repro.bench import fmt_seconds, render_table
from repro.bmc import BmcEngine
from repro.designs.trojans import aes_t800, mc8051_t800
from repro.properties.monitors import build_corruption_monitor

CASES = [("MC8051-T800", mc8051_t800, 12), ("AES-T800", aes_t800, 12)]


def run(case_factory, cycles, use_coi):
    netlist, spec = case_factory()
    register = spec.trojan.target_register
    monitor = build_corruption_monitor(
        netlist, spec.critical[register], functional=True
    )
    engine = BmcEngine(
        monitor.netlist,
        monitor.objective_net,
        property_name="coi={}".format(use_coi),
        use_coi=use_coi,
        pinned_inputs=spec.pinned_inputs,
    )
    return engine.check(cycles, time_budget=BUDGET)


@pytest.mark.parametrize("use_coi", [True, False])
def test_coi_both_modes_detect(benchmark, use_coi):
    result = benchmark.pedantic(
        run, args=(mc8051_t800, 12, use_coi), rounds=1, iterations=1
    )
    assert result.detected


def main():
    rows = []
    for label, factory, cycles in CASES:
        for use_coi in (True, False):
            result = run(factory, cycles, use_coi)
            rows.append([
                label,
                "on" if use_coi else "off",
                result.status,
                result.cone[0],
                result.variables,
                result.clauses,
                fmt_seconds(result.elapsed),
            ])
    print(render_table(
        ["Design", "COI", "status", "cone cells", "SAT vars", "clauses",
         "time"],
        rows,
        title="Cone-of-influence ablation (same property, same bound)",
    ))


if __name__ == "__main__":
    main()
