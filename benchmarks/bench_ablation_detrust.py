"""Ablation — DeTrust trigger shaping vs the naive Trust-Hub shape.

The paper's FANCI/VeriTrust = "No" columns rest on the Trojans being
DeTrust-restructured. This bench builds AES-T700 both ways — the naive
monolithic 128-bit comparator and the DeTrust chunk-serial scan — and
shows FANCI flags the former and misses the latter, while BMC detects both
(formal detection is oblivious to trigger structure — "the technique is
oblivious to the structure of the Trojan", Section 3.3.2).

Run standalone::

    python benchmarks/bench_ablation_detrust.py
"""

from __future__ import annotations

import sys

import pytest

sys.path.insert(0, "benchmarks")
from _cases import BUDGET  # noqa: E402

from repro.baselines import Fanci
from repro.bench import fmt_seconds, render_table
from repro.core.backends import run_objective
from repro.designs.trojans import aes_t700
from repro.properties.monitors import build_corruption_monitor

VARIANTS = [
    ("naive (1-cycle wide AND)", dict(detrust=False), 6),
    ("DeTrust (8-bit serial scan)", dict(detrust=True, chunk_bits=8), 24),
]


def fanci_verdict(kwargs):
    netlist, spec = aes_t700(**kwargs)
    trojan_cells = [
        net
        for net in spec.trojan.trojan_nets
        if netlist.is_driven(net) and netlist.driver_of(net)[0] == "cell"
    ]
    report = Fanci(netlist, samples=2048, threshold=2 ** -10).analyze(
        trojan_cells
    )
    return report.detects(spec.trojan.trojan_nets), report


def bmc_verdict(kwargs, cycles, budget=None):
    netlist, spec = aes_t700(**kwargs)
    monitor = build_corruption_monitor(
        netlist, spec.critical["key_register"], functional=True
    )
    return run_objective(
        "bmc",
        monitor.netlist,
        monitor.objective_net,
        cycles,
        property_name="detrust-ablation",
        pinned_inputs=spec.pinned_inputs,
        time_budget=BUDGET if budget is None else budget,
    )


def test_fanci_flags_naive_trigger(benchmark):
    detected, _report = benchmark.pedantic(
        fanci_verdict, args=(dict(detrust=False),), rounds=1, iterations=1
    )
    assert detected


def test_fanci_misses_detrust_trigger(benchmark):
    detected, _report = benchmark.pedantic(
        fanci_verdict,
        args=(dict(detrust=True, chunk_bits=8),),
        rounds=1,
        iterations=1,
    )
    assert not detected


def test_bmc_detects_both_shapes(benchmark):
    # the chunk-serial scan needs ~18 unrolled frames: give this check a
    # floor regardless of the global budget knob
    def both():
        return [
            bmc_verdict(kwargs, cycles, budget=max(BUDGET, 150))
            for _label, kwargs, cycles in VARIANTS
        ]

    results = benchmark.pedantic(both, rounds=1, iterations=1)
    for result in results:
        assert result.detected


def main():
    rows = []
    for label, kwargs, cycles in VARIANTS:
        fanci_hit, report = fanci_verdict(kwargs)
        bmc = bmc_verdict(kwargs, cycles)
        rows.append([
            label,
            "Yes" if fanci_hit else "No",
            len(report.flagged_nets),
            "Yes" if bmc.detected else bmc.status,
            fmt_seconds(bmc.elapsed),
        ])
    print(render_table(
        ["AES-T700 trigger shape", "FANCI detects", "flagged wires",
         "BMC detects", "BMC time"],
        rows,
        title="DeTrust ablation: trigger shape vs detectability",
    ))


if __name__ == "__main__":
    main()
