"""Ablation — the Section 4.5.1 one-way-function limitation.

A Trojan gated by a multi-round ARX mixer of the input history: generating
its trigger is a preimage search, and both engines exhaust any practical
budget without a verdict — the paper's "BMC or ATPG exits by stating the
design is untestable; we cannot verify the trustworthiness of such
designs". The same design with the mixer reduced to one round is easy,
showing the budget exhaustion is the OWF's doing, not the harness's.

Run standalone::

    python benchmarks/bench_ablation_owf.py
"""

from __future__ import annotations

import sys

import pytest

sys.path.insert(0, "benchmarks")  # noqa: E402

from repro.bench import fmt_seconds, render_table
from repro.core.backends import run_objective
from repro.designs import build_mc8051
from repro.designs.trojans.attacks import add_owf_trigger
from repro.properties.monitors import build_corruption_monitor

OWF_BUDGET = 10.0


def run(rounds, engine="bmc"):
    netlist, spec = build_mc8051()
    attacked, _info = add_owf_trigger(netlist, "stack_pointer",
                                      rounds=rounds)
    monitor = build_corruption_monitor(
        attacked, spec.critical["stack_pointer"], functional=False
    )
    return run_objective(
        engine,
        monitor.netlist,
        monitor.objective_net,
        40,
        property_name="owf-{}r".format(rounds),
        pinned_inputs=spec.pinned_inputs,
        time_budget=OWF_BUDGET,
    )


@pytest.mark.parametrize("engine", ["bmc", "atpg"])
def test_owf_trigger_defeats_engines(benchmark, engine):
    result = benchmark.pedantic(run, args=(12, engine), rounds=1,
                                iterations=1)
    # no verdict within budget: the documented limitation
    assert result.status == "unknown"


def main():
    rows = []
    for rounds in (1, 4, 12):
        for engine in ("bmc", "atpg"):
            result = run(rounds, engine)
            rows.append([
                "{}-round mixer".format(rounds),
                engine,
                result.status,
                result.bound,
                fmt_seconds(result.elapsed),
            ])
    print(render_table(
        ["Trigger", "engine", "status", "bound reached", "time"],
        rows,
        title="OWF-trigger limitation (budget {}s): deeper mixers defeat "
              "both engines".format(OWF_BUDGET),
    ))


if __name__ == "__main__":
    main()
