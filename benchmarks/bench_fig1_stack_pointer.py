"""Figure 1 — the stack-pointer Trojan of the paper's running example.

A RISC processor whose stack pointer is decremented by two once the
instruction register's four MSBs have been in 0x4-0xB for N consecutive
instructions (Figure 1 / Examples 1-2). This bench runs the full
Algorithm 1 audit on it and prints the counterexample — the "set of
instructions that trigger the Trojan" the paper's Example 2 describes
(theirs was 100 ADD instructions; ours is whatever instruction sequence
the solver picks from the same trigger window).

Run standalone::

    python benchmarks/bench_fig1_stack_pointer.py
"""

from __future__ import annotations

import sys

import pytest

sys.path.insert(0, "benchmarks")
from _cases import BUDGET, TRIGGER_COUNT  # noqa: E402

from repro.core import TrojanDetector
from repro.designs.risc import OPCODE_NAMES
from repro.designs.trojans import risc_figure1


def run_algorithm1(engine="bmc"):
    netlist, spec = risc_figure1(trigger_count=TRIGGER_COUNT)
    detector = TrojanDetector(
        netlist,
        spec,
        max_cycles=8 + 4 * (TRIGGER_COUNT + 3),
        engine=engine,
        functional=True,
        time_budget=BUDGET,
    )
    return detector.run(registers=["stack_pointer"])


@pytest.mark.parametrize("engine", ["bmc", "atpg"])
def test_figure1_detected(benchmark, engine):
    report = benchmark.pedantic(
        run_algorithm1, args=(engine,), rounds=1, iterations=1
    )
    finding = report.findings["stack_pointer"]
    assert finding.corrupted
    assert finding.witness_confirmed


def decode_witness(witness):
    lines = []
    # the instruction register latches at Q4 (cycle % 4 == 3); the word
    # sampled there is the instruction executed in the NEXT window
    for cycle, words in enumerate(witness.inputs):
        if cycle % 4 != 3:
            continue
        opcode = (words["instr_in"] >> 10) & 0xF
        lines.append(
            "  window {:>2}: {:<7} operand=0x{:02x}".format(
                cycle // 4 + 1,
                OPCODE_NAMES[opcode],
                words["instr_in"] & 0xFF,
            )
        )
    return "\n".join(lines)


def main():
    for engine in ("bmc", "atpg"):
        report = run_algorithm1(engine)
        print(report.summary())
        finding = report.findings["stack_pointer"]
        if finding.corrupted:
            print("trigger instruction stream ({}):".format(engine))
            print(decode_witness(finding.corruption.witness))
        print()


if __name__ == "__main__":
    main()
