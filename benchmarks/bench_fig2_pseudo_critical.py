"""Figure 2 — the pseudo-critical stack pointer (Attack 1).

The RISC stack pointer's fan-out is rerouted through a pseudo-critical
copy; the copy (not the original) is corrupted by a DeTrust trigger. The
bench shows the full story of Section 4.1:

1. the defender's Eq. (2) check on the *original* stack pointer proves
   clean — the attack evades it (Example 5);
2. Eq. (3) examines the design's registers and catches the copy: either
   it certifies a faithful copy as pseudo-critical (promoting it into the
   critical set, Example 6) or it returns a tracking-violation witness
   that exposes the corruption directly.

Run standalone::

    python benchmarks/bench_fig2_pseudo_critical.py
"""

from __future__ import annotations

import sys

import pytest

sys.path.insert(0, "benchmarks")
from _cases import BUDGET  # noqa: E402

from repro.bmc.witness import confirms_violation
from repro.core.backends import run_objective
from repro.designs import build_risc
from repro.designs.trojans.attacks import add_pseudo_critical
from repro.properties.monitors import (
    build_corruption_monitor,
    build_tracking_monitor,
)

CYCLES = 16


def build_figure2(corrupt=True):
    netlist, spec = build_risc()
    attacked, info = add_pseudo_critical(
        netlist,
        "stack_pointer",
        invert=False,
        corrupt=corrupt,
        trigger_input="eeprom_in",
    )
    return attacked, spec, info


def eq2_on_original(engine="bmc"):
    attacked, spec, _info = build_figure2()
    monitor = build_corruption_monitor(
        attacked, spec.critical["stack_pointer"], functional=True
    )
    return run_objective(
        engine, monitor.netlist, monitor.objective_net, CYCLES,
        property_name="fig2:eq2-original",
        pinned_inputs=spec.pinned_inputs, time_budget=BUDGET,
    )


def eq3_on_copy(engine="bmc", corrupt=True):
    attacked, spec, _info = build_figure2(corrupt=corrupt)
    monitor = build_tracking_monitor(
        attacked, spec.critical["stack_pointer"], "pseudo_stack_pointer"
    )
    result = run_objective(
        engine, monitor.netlist, monitor.objective_net, CYCLES,
        property_name="fig2:eq3-copy",
        pinned_inputs=spec.pinned_inputs, time_budget=BUDGET,
    )
    confirmed = result.detected and confirms_violation(
        monitor.netlist, result.witness, monitor.violation_net
    )
    return result, confirmed


def test_attack_evades_eq2(benchmark):
    result = benchmark.pedantic(eq2_on_original, rounds=1, iterations=1)
    assert result.status == "proved"  # the whole point of Attack 1


@pytest.mark.parametrize("engine", ["bmc", "atpg"])
def test_eq3_exposes_corrupted_copy(benchmark, engine):
    result, confirmed = benchmark.pedantic(
        eq3_on_copy, args=(engine,), rounds=1, iterations=1
    )
    assert result.detected
    assert confirmed


def test_faithful_copy_certified_pseudo_critical(benchmark):
    result, _confirmed = benchmark.pedantic(
        eq3_on_copy, args=("bmc", False), rounds=1, iterations=1
    )
    assert result.status == "proved"  # tracks -> promoted to critical set


def main():
    print("Figure 2 / Attack 1 on the RISC stack pointer")
    result = eq2_on_original()
    print("  Eq.(2) on the original register:", result.status,
          "(attack evades the naive check)")
    result, _ = eq3_on_copy(corrupt=False)
    print("  Eq.(3) on a faithful copy:", result.status,
          "-> certified pseudo-critical, promoted")
    for engine in ("bmc", "atpg"):
        result, confirmed = eq3_on_copy(engine)
        print("  Eq.(3) on the corrupted copy [{}]: {} (witness "
              "confirmed: {}, {:.2f}s)".format(
                  engine, result.status, confirmed, result.elapsed))


if __name__ == "__main__":
    main()
