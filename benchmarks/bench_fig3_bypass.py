"""Figure 3 — the bypass stack pointer (Attack 2).

A trigger-controlled mux swaps the RISC stack pointer's fan-out over to a
free-running bypass register. Eq. (2) on the (untouched) stack pointer
proves clean; the Eq. (4) CEGIS check finds an input prefix after which
the outputs are insensitive to the stack pointer's value — the bypass —
and the finding is validated by randomized replay.

Run standalone::

    python benchmarks/bench_fig3_bypass.py
"""

from __future__ import annotations

import sys

sys.path.insert(0, "benchmarks")
from _cases import BUDGET  # noqa: E402

from repro.core.backends import run_objective
from repro.designs import build_risc
from repro.designs.trojans.attacks import add_bypass
from repro.properties.bypass import BypassChecker, validate_bypass
from repro.properties.monitors import build_corruption_monitor

CYCLES = 10


def build_figure3():
    netlist, spec = build_risc()
    attacked, info = add_bypass(
        netlist, "stack_pointer", trigger_input="eeprom_in"
    )
    return attacked, spec, info


def eq2_on_original():
    attacked, spec, _info = build_figure3()
    monitor = build_corruption_monitor(
        attacked, spec.critical["stack_pointer"], functional=True
    )
    return run_objective(
        "bmc", monitor.netlist, monitor.objective_net, CYCLES,
        property_name="fig3:eq2",
        pinned_inputs=spec.pinned_inputs, time_budget=BUDGET,
    )


def eq4_check():
    attacked, spec, _info = build_figure3()
    checker = BypassChecker(attacked, spec.critical["stack_pointer"])
    result = checker.check(CYCLES, time_budget=BUDGET)
    confirmed = result.detected and validate_bypass(
        attacked, result, "stack_pointer"
    )
    return result, confirmed


def eq4_clean_design():
    netlist, spec = build_risc()
    checker = BypassChecker(netlist, spec.critical["stack_pointer"])
    return checker.check(4, time_budget=BUDGET)


def test_attack_evades_eq2(benchmark):
    result = benchmark.pedantic(eq2_on_original, rounds=1, iterations=1)
    assert result.status == "proved"


def test_eq4_finds_bypass(benchmark):
    result, confirmed = benchmark.pedantic(eq4_check, rounds=1, iterations=1)
    assert result.detected
    assert confirmed


def test_eq4_clean_risc_no_false_positive(benchmark):
    result = benchmark.pedantic(eq4_clean_design, rounds=1, iterations=1)
    assert not result.detected


def main():
    print("Figure 3 / Attack 2 on the RISC stack pointer")
    result = eq2_on_original()
    print("  Eq.(2) on the stack pointer:", result.status,
          "(attack evades the naive check)")
    result, confirmed = eq4_check()
    print("  Eq.(4) CEGIS:", result.summary())
    print("  randomized replay validation:", confirmed)
    clean = eq4_clean_design()
    print("  Eq.(4) on the clean RISC:", clean.status,
          "(no false positive)")


if __name__ == "__main__":
    main()
