"""Table 1 — detecting the Trust-Hub Trojans.

Regenerates every column group of the paper's Table 1 for all nine
Trojans: FANCI and VeriTrust verdicts, BMC and ATPG detection with time
and peak memory, and the "max # of clock cycles" unrolled within a fixed
wall-clock budget.

Run standalone for the full table::

    python benchmarks/bench_table1_detection.py

Under pytest-benchmark, each (Trojan, engine) detection cell is measured
as its own benchmark (single round — these are seconds-long formal runs,
not microbenchmarks).

Expected shape (paper vs. this reproduction): FANCI/VeriTrust detect
nothing; BMC and ATPG detect everything except AES-T1200 (whose 2^128-1
cycle trigger is out of any bounded check's reach — the design is
certified only "trustworthy for T cycles"); ATPG uses far less memory
than BMC and unrolls deeper in the same budget.
"""

from __future__ import annotations

import sys

import pytest

sys.path.insert(0, "benchmarks")
from _cases import BUDGET, DEPTH_BUDGET, TABLE1_CASES, build_case  # noqa: E402

from repro.bench import (
    baseline_run,
    detection_run,
    fmt_memory,
    fmt_seconds,
    max_bound_within_budget,
    render_table,
)
from repro.properties.monitors import build_corruption_monitor


def run_formal_cell(label, engine):
    netlist, spec, cycles = build_case(label)
    register = spec.trojan.target_register
    return detection_run(
        label,
        netlist,
        spec,
        register,
        engine,
        cycles,
        time_budget=BUDGET,
        functional=True,
        measure_memory=True,
    )


def run_depth_cell(label, engine):
    netlist, spec, _cycles = build_case(label)
    register = spec.trojan.target_register
    monitor = build_corruption_monitor(
        netlist, spec.critical[register], functional=True
    )
    bound, _elapsed = max_bound_within_budget(
        monitor.netlist,
        monitor.objective_net,
        engine,
        DEPTH_BUDGET,
        pinned_inputs=spec.pinned_inputs,
    )
    return bound


def run_baseline_cell(label):
    netlist, spec, _cycles = build_case(label)
    return baseline_run(
        label,
        netlist,
        spec.trojan.trojan_nets,
        fanci_samples=2048,
        veritrust_cycles=32,
        veritrust_lanes=32,
        max_fanci_wires=2500,
    )


CASE_IDS = [label for label, _f, _c in TABLE1_CASES]


@pytest.mark.parametrize("label", CASE_IDS)
@pytest.mark.parametrize("engine", ["bmc", "atpg"])
def test_table1_formal_cell(benchmark, label, engine):
    result = benchmark.pedantic(
        run_formal_cell, args=(label, engine), rounds=1, iterations=1
    )
    if label == "AES-T1200":
        # the N/A row: no counterexample may exist within the bound
        assert not result.detected
    else:
        # every other Trojan: detected (and replay-confirmed), or an
        # honest budget abort — never a wrong "proved clean"
        if result.detected:
            assert result.confirmed
        else:
            assert result.status == "unknown"


@pytest.mark.parametrize("label", ["MC8051-T800", "RISC-T300", "AES-T800"])
def test_table1_baseline_cell(benchmark, label):
    row = benchmark.pedantic(
        run_baseline_cell, args=(label,), rounds=1, iterations=1
    )
    assert not row.fanci_detected  # DeTrust-shaped: FANCI misses
    assert not row.veritrust_detected


def main():
    formal_rows = []
    depth_rows = []
    for label, _factory, _cycles in TABLE1_CASES:
        base = run_baseline_cell(label)
        cells = {}
        for engine in ("bmc", "atpg"):
            cells[engine] = run_formal_cell(label, engine)
        bmc, atpg = cells["bmc"], cells["atpg"]
        formal_rows.append([
            label,
            "Yes" if base.fanci_detected else "No",
            "Yes" if base.veritrust_detected else "No",
            bmc.verdict,
            fmt_seconds(bmc.elapsed),
            fmt_memory(bmc.peak_memory),
            atpg.verdict,
            fmt_seconds(atpg.elapsed),
            fmt_memory(atpg.peak_memory),
        ])
        depth_rows.append([
            label,
            run_depth_cell(label, "bmc"),
            run_depth_cell(label, "atpg-backward"),
        ])
    print(render_table(
        ["Trojan", "FANCI", "VeriTrust", "BMC", "BMC time", "BMC mem",
         "ATPG", "ATPG time", "ATPG mem"],
        formal_rows,
        title="Table 1 — detection of Trust-Hub Trojans "
              "(budget {}s per check)".format(BUDGET),
    ))
    ratios = [
        row[2] / row[1] for row in depth_rows if row[1] and row[2]
    ]
    print()
    print(render_table(
        ["Trojan", "BMC max cycles", "ATPG max cycles"],
        depth_rows,
        title="Table 1 — max # of clock cycles unrolled in {}s".format(
            DEPTH_BUDGET
        ),
    ))
    if ratios:
        print("mean ATPG/BMC depth ratio: {:.2f}x (paper: ~3x)".format(
            sum(ratios) / len(ratios)
        ))


if __name__ == "__main__":
    main()
