"""Table 2 — valid ways to update the RISC registers.

Table 2 is the paper's specification artifact: the datasheet-derived valid
ways for each RISC register. This bench (a) prints our machine-readable
rendition of the table, (b) *validates* it — the Trojan-free RISC must
satisfy the functional no-corruption property for every listed register
(the paper's false-positive check, Section 3.3.2: "Our technique did not
flag these designs"), as must the clean MC8051 and AES cores.

Run standalone::

    python benchmarks/bench_table2_valid_ways.py
"""

from __future__ import annotations

import sys

import pytest

sys.path.insert(0, "benchmarks")
from _cases import BUDGET  # noqa: E402

from repro.bench import fmt_seconds, render_table
from repro.core.backends import run_objective
from repro.designs import build_aes, build_mc8051, build_risc
from repro.properties.monitors import build_corruption_monitor

CHECK_CYCLES = 12

CLEAN_DESIGNS = [
    ("risc", build_risc),
    ("mc8051", build_mc8051),
    ("aes", build_aes),
]


def check_register(netlist, spec, register, engine="bmc",
                   cycles=CHECK_CYCLES):
    monitor = build_corruption_monitor(
        netlist, spec.critical[register], functional=True
    )
    return run_objective(
        engine,
        monitor.netlist,
        monitor.objective_net,
        cycles,
        property_name="table2:{}".format(register),
        pinned_inputs=spec.pinned_inputs,
        time_budget=BUDGET,
    )


def _risc_registers():
    _netlist, spec = build_risc()
    return list(spec.critical)


@pytest.mark.parametrize("register", _risc_registers())
def test_clean_risc_register_not_flagged(benchmark, register):
    netlist, spec = build_risc()
    result = benchmark.pedantic(
        check_register, args=(netlist, spec, register), rounds=1,
        iterations=1,
    )
    assert result.status == "proved", (register, result.status)


@pytest.mark.parametrize("name,builder", CLEAN_DESIGNS)
def test_clean_designs_not_flagged_any_register(benchmark, name, builder):
    netlist, spec = builder()

    def audit():
        outcomes = {}
        for register in spec.critical:
            outcomes[register] = check_register(netlist, spec, register)
        return outcomes

    outcomes = benchmark.pedantic(audit, rounds=1, iterations=1)
    for register, result in outcomes.items():
        assert result.status == "proved", (name, register, result.status)


def main():
    netlist, spec = build_risc()
    spec_rows = []
    for register, reg_spec in spec.critical.items():
        for way in reg_spec.ways:
            spec_rows.append([
                register,
                way.cycle,
                way.name,
                way.expression,
            ])
    print(render_table(
        ["Register", "Cycle", "Valid way", "Condition"],
        spec_rows,
        title="Table 2 — valid ways to update registers in RISC",
    ))
    print()
    check_rows = []
    for name, builder in CLEAN_DESIGNS:
        netlist, spec = builder()
        for register in spec.critical:
            result = check_register(netlist, spec, register)
            check_rows.append([
                name,
                register,
                result.status,
                result.bound,
                fmt_seconds(result.elapsed),
            ])
    print(render_table(
        ["Design", "Register", "Eq.(2)+values", "bound", "time"],
        check_rows,
        title="False-positive check: clean designs vs their own specs "
              "(must all prove)",
    ))


if __name__ == "__main__":
    main()
