"""Table 3 — detecting pseudo-critical and bypass registers.

For every Table 1 design, this bench applies the Section 4 attacks to the
Trojan's critical register (Attack 1: a corrupting pseudo-critical copy;
Attack 2: a trigger-selected bypass register) and measures detection:

* pseudo-critical: Eq. (3) — a tracking violation under valid update
  sequences exposes the corrupted copy (BMC and ATPG columns);
* bypass: Eq. (4) via the CEGIS loop;
* plus the "max # of clock cycles" ramps for both properties, which also
  reproduce the paper's Section 4.4 controllability/observability
  asymmetry (AES's key register, near the inputs, sustains deeper
  pseudo-critical unrolls than bypass ones; the processors' registers,
  near the outputs, the reverse).

Run standalone::

    python benchmarks/bench_table3_pseudo_bypass.py
"""

from __future__ import annotations

import sys

import pytest

sys.path.insert(0, "benchmarks")
from _cases import BUDGET, DEPTH_BUDGET, TABLE1_CASES, build_case  # noqa: E402

from repro.bench import fmt_seconds, max_bound_within_budget, render_table
from repro.bmc.witness import confirms_violation
from repro.core.backends import run_objective
from repro.designs.trojans.attacks import add_bypass, add_pseudo_critical
from repro.properties.bypass import BypassChecker, validate_bypass
from repro.properties.monitors import build_tracking_monitor

CASE_IDS = [label for label, _f, _c in TABLE1_CASES]

# the trigger port for the attack logic, per design family
TRIGGER_INPUT = {
    "MC8051": "uart_rx",
    "RISC": "eeprom_in",
    "AES": "key_in",
}


def _trigger_input(label):
    return TRIGGER_INPUT[label.split("-")[0]]


def pseudo_attack_case(label):
    netlist, spec, cycles = build_case(label)
    register = spec.trojan.target_register
    attacked, info = add_pseudo_critical(
        netlist,
        register,
        invert=True,
        corrupt=True,
        trigger_input=_trigger_input(label),
    )
    return attacked, spec, register, info, cycles


def bypass_attack_case(label):
    netlist, spec, cycles = build_case(label)
    register = spec.trojan.target_register
    attacked, info = add_bypass(
        netlist, register, trigger_input=_trigger_input(label)
    )
    return attacked, spec, register, info, cycles


def run_pseudo_cell(label, engine):
    attacked, spec, register, _info, cycles = pseudo_attack_case(label)
    monitor = build_tracking_monitor(
        attacked, spec.critical[register], "pseudo_" + register
    )
    result = run_objective(
        engine,
        monitor.netlist,
        monitor.objective_net,
        max(8, cycles // 2),
        property_name="eq3:{}".format(label),
        pinned_inputs=spec.pinned_inputs,
        time_budget=BUDGET,
    )
    confirmed = result.detected and confirms_violation(
        monitor.netlist, result.witness, monitor.violation_net
    )
    return result, confirmed


def run_bypass_cell(label):
    attacked, spec, register, _info, cycles = bypass_attack_case(label)
    checker = BypassChecker(attacked, spec.critical[register])
    result = checker.check(max(4, cycles // 3), time_budget=BUDGET)
    confirmed = result.detected and validate_bypass(
        attacked, result, register
    )
    return result, confirmed


def run_depth_cells(label, engine):
    """(pseudo-critical depth, bypass depth) ramps at equal budget."""
    attacked, spec, register, _info, _cycles = pseudo_attack_case(label)
    monitor = build_tracking_monitor(
        attacked, spec.critical[register], "pseudo_" + register
    )
    pseudo_depth, _ = max_bound_within_budget(
        monitor.netlist,
        monitor.objective_net,
        engine,
        DEPTH_BUDGET,
        pinned_inputs=spec.pinned_inputs,
    )
    # bypass depth: the Eq.(2) monitor over the *bypass-attacked* design
    # measures how deep the engines sweep the bypassed design's state
    from repro.properties.monitors import build_corruption_monitor

    attacked2, spec2, register2, _info2, _c = bypass_attack_case(label)
    monitor2 = build_corruption_monitor(
        attacked2, spec2.critical[register2], functional=False
    )
    bypass_depth, _ = max_bound_within_budget(
        monitor2.netlist,
        monitor2.objective_net,
        engine,
        DEPTH_BUDGET,
        pinned_inputs=spec2.pinned_inputs,
    )
    return pseudo_depth, bypass_depth


@pytest.mark.parametrize("label", CASE_IDS)
def test_table3_pseudo_critical(benchmark, label):
    result, confirmed = benchmark.pedantic(
        run_pseudo_cell, args=(label, "bmc"), rounds=1, iterations=1
    )
    assert result.detected, label
    assert confirmed, label


# AES bypass is excluded from the strict asserts: its 12-cycle observe
# latency unrolls the full round datapath twice per CEGIS query, beyond a
# pure-Python SAT budget (see EXPERIMENTS.md); main() still reports it.
@pytest.mark.parametrize("label", ["MC8051-T400", "MC8051-T800", "RISC-T100"])
def test_table3_bypass(benchmark, label):
    result, confirmed = benchmark.pedantic(
        run_bypass_cell, args=(label,), rounds=1, iterations=1
    )
    assert result.detected, label
    assert confirmed, label


def main():
    rows = []
    for label in CASE_IDS:
        bmc_pseudo, bmc_ok = run_pseudo_cell(label, "bmc")
        atpg_pseudo, atpg_ok = run_pseudo_cell(label, "atpg")
        bypass, byp_ok = run_bypass_cell(label)
        rows.append([
            label,
            "Yes" if (bmc_pseudo.detected and bmc_ok) else bmc_pseudo.status,
            "Yes" if (atpg_pseudo.detected and atpg_ok) else atpg_pseudo.status,
            "Yes" if (bypass.detected and byp_ok) else bypass.status,
            fmt_seconds(bmc_pseudo.elapsed),
            fmt_seconds(atpg_pseudo.elapsed),
            fmt_seconds(bypass.elapsed),
        ])
    print(render_table(
        ["Trojan", "Pseudo(BMC)", "Pseudo(ATPG)", "Bypass(CEGIS)",
         "t_BMC", "t_ATPG", "t_byp"],
        rows,
        title="Table 3 — pseudo-critical and bypass register detection",
    ))
    print()
    depth_rows = []
    for label in ("MC8051-T400", "RISC-T300", "AES-T700"):
        p_bmc, b_bmc = run_depth_cells(label, "bmc")
        p_atpg, b_atpg = run_depth_cells(label, "atpg-backward")
        depth_rows.append([label, p_bmc, p_atpg, b_bmc, b_atpg])
    print(render_table(
        ["Design", "Pseudo BMC", "Pseudo ATPG", "Bypass BMC", "Bypass ATPG"],
        depth_rows,
        title="Table 3 — max # of clock cycles in {}s (Section 4.4 "
              "asymmetry: compare AES vs processors)".format(DEPTH_BUDGET),
    ))


if __name__ == "__main__":
    main()
