"""Make the benchmark-local helpers importable regardless of pytest's cwd."""

import sys
from pathlib import Path

BENCH_DIR = str(Path(__file__).resolve().parent)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)
