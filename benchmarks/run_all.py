"""Run every benchmark's standalone table generator and save the outputs.

    python benchmarks/run_all.py [results_dir]

Each bench's stdout is captured to ``results/<bench>.txt`` and echoed; the
set of files under ``benchmarks/results/`` is the paper-table artifact
bundle referenced by EXPERIMENTS.md.
"""

from __future__ import annotations

import contextlib
import importlib
import io
import sys
import time
from pathlib import Path

BENCHES = [
    "bench_table1_detection",
    "bench_table2_valid_ways",
    "bench_table3_pseudo_bypass",
    "bench_fig1_stack_pointer",
    "bench_fig2_pseudo_critical",
    "bench_fig3_bypass",
    "bench_ablation_bmc_vs_atpg",
    "bench_ablation_coi",
    "bench_ablation_detrust",
    "bench_ablation_owf",
]


def main():
    bench_dir = Path(__file__).resolve().parent
    sys.path.insert(0, str(bench_dir))
    results = Path(sys.argv[1]) if len(sys.argv) > 1 else bench_dir / "results"
    results.mkdir(parents=True, exist_ok=True)
    for name in BENCHES:
        module = importlib.import_module(name)
        print("=" * 72)
        print("##", name)
        print("=" * 72, flush=True)
        buffer = io.StringIO()
        started = time.perf_counter()
        with contextlib.redirect_stdout(buffer):
            module.main()
        elapsed = time.perf_counter() - started
        text = buffer.getvalue()
        print(text)
        print("[{} finished in {:.1f}s]".format(name, elapsed), flush=True)
        (results / (name + ".txt")).write_text(
            text + "\n[completed in {:.1f}s]\n".format(elapsed)
        )


if __name__ == "__main__":
    main()
