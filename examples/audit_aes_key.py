"""Audit the AES key register (the paper's Example 3 and the T1200 row).

AES-T800 corrupts the key register after a specific four-plaintext
sequence — BMC finds exactly that sequence. AES-T1200's 2^128-cycle
counter is beyond any bounded check: the auditor's honest verdict is
"trustworthy for T cycles, reset every T cycles" (Section 3.2).

    python examples/audit_aes_key.py
"""

from __future__ import annotations

from repro.core.backends import run_objective
from repro.designs.trojans import aes_t800, aes_t1200
from repro.designs.trojans.aes_trojans import T800_SEQUENCE
from repro.properties.monitors import build_corruption_monitor


def audit(label, netlist, spec, cycles, budget=120):
    monitor = build_corruption_monitor(
        netlist, spec.critical["key_register"], functional=True
    )
    result = run_objective(
        "bmc",
        monitor.netlist,
        monitor.objective_net,
        cycles,
        property_name=label,
        pinned_inputs=spec.pinned_inputs,
        time_budget=budget,
    )
    print("[{}] {}".format(label, result.summary()))
    return result


def main():
    netlist, spec = aes_t800()
    print("=== AES-T800:", spec.trojan.trigger)
    result = audit("aes-t800", netlist, spec, cycles=12)
    if result.detected:
        print("counterexample plaintext sequence (start pulses):")
        expected = iter(T800_SEQUENCE)
        for cycle, words in enumerate(result.witness.inputs):
            if words.get("start"):
                marker = ""
                try:
                    if words["pt_in"] == next(expected):
                        marker = "   <- Table 1 trigger value"
                except StopIteration:
                    pass
                print("  cycle {:>2}: pt = {:032x}{}".format(
                    cycle, words["pt_in"], marker))
    print()

    netlist, spec = aes_t1200()
    print("=== AES-T1200:", spec.trojan.trigger)
    result = audit("aes-t1200", netlist, spec, cycles=16, budget=90)
    if not result.detected:
        print(
            "no counterexample within {0} cycles: the design is certified "
            "trustworthy for {0} cycles only — the SoC integrator must "
            "reset it at least every {0} cycles (paper, Section 3.2).".format(
                result.bound
            )
        )


if __name__ == "__main__":
    main()
