"""The paper's Figure 1 scenario: a RISC stack-pointer Trojan.

The processor's stack pointer may only change on reset, CALL (+1) and
RETURN (-1) — Table 2's rows. The Figure 1 Trojan decrements it by two
after N consecutive instructions whose four MSBs lie in 0x4-0xB. This
example audits the stack pointer with both engines, decodes the trigger
instruction stream from the counterexample (the paper's "100 ADD
instructions" — ours picks whatever opcodes from the same window the
solver likes), and replays it on the simulator to show the corruption.

    python examples/detect_risc_stack_pointer.py
"""

from __future__ import annotations

from repro.core import AuditConfig, TrojanDetector
from repro.designs.risc import OPCODE_NAMES
from repro.designs.trojans import risc_figure1
from repro.sim import SequentialSimulator

TRIGGER_COUNT = 2  # the paper uses 100; see DESIGN.md on scaling


def decode(witness):
    for cycle, words in enumerate(witness.inputs):
        if cycle % 4 == 3:  # Q4: the fetch that feeds the next window
            opcode = (words["instr_in"] >> 10) & 0xF
            yield "window {:>2}: {:<7} operand=0x{:02x}".format(
                cycle // 4 + 1, OPCODE_NAMES[opcode], words["instr_in"] & 0xFF
            )


def main():
    netlist, spec = risc_figure1(trigger_count=TRIGGER_COUNT)
    print("Trojan under audit:", spec.trojan.name)
    print("  trigger:", spec.trojan.trigger)
    print("  payload:", spec.trojan.payload)
    print()

    for engine in ("bmc", "atpg"):
        config = AuditConfig(max_cycles=8 + 4 * (TRIGGER_COUNT + 3),
                             engine=engine, time_budget=120)
        report = TrojanDetector(
            netlist, spec, config=config,
        ).run(registers=["stack_pointer"])
        finding = report.findings["stack_pointer"]
        print("[{}] {}".format(engine, report.summary()))
        if not finding.corrupted:
            continue
        witness = finding.corruption.witness
        print("trigger instruction stream:")
        for line in decode(witness):
            print("   ", line)

        # replay: watch the stack pointer break its contract
        sim = SequentialSimulator(netlist)
        previous = sim.register_value("stack_pointer")
        for cycle, words in enumerate(witness.inputs):
            sim.step(words)
            value = sim.register_value("stack_pointer")
            if value != previous:
                print(
                    "    cycle {:>3}: stack_pointer {} -> {}".format(
                        cycle, previous, value
                    )
                )
            previous = value
        print()


if __name__ == "__main__":
    main()
