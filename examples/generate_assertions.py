"""Export the interchange artifacts of the paper's toolflow.

Section 3.3.1: "We generated Verilog assertions for the data corruption
property ... embedded into the respective designs and provided as input to
the BMC engine." This example writes, for the RISC core:

* ``risc.v``       — the structural Verilog netlist (round-trips through
  this library's own parser),
* ``risc_props.sv`` — the Eq. (2)/(3)/(4) assertion text for every
  Table 2 register, consumable by a commercial flow.

    python examples/generate_assertions.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.designs import build_risc
from repro.hdl import parse_verilog, write_verilog
from repro.properties import render_spec


def main():
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "out_assertions")
    out_dir.mkdir(parents=True, exist_ok=True)

    netlist, spec = build_risc()

    verilog = write_verilog(netlist)
    (out_dir / "risc.v").write_text(verilog)
    # prove the export is faithful: re-import and compare structure
    twin = parse_verilog(verilog)
    assert len(twin.flops) == len(netlist.flops)
    print("wrote {} ({} lines, {} cells, {} flops; re-import OK)".format(
        out_dir / "risc.v", len(verilog.splitlines()),
        len(netlist.cells), len(netlist.flops),
    ))

    blocks = []
    for register, reg_spec in spec.critical.items():
        blocks.append("// " + "=" * 70)
        blocks.append("// register: {} — {}".format(
            register, reg_spec.description))
        blocks.append(render_spec(reg_spec))
    text = "\n".join(blocks)
    (out_dir / "risc_props.sv").write_text(text)
    print("wrote {} ({} assertion lines for {} registers)".format(
        out_dir / "risc_props.sv", len(text.splitlines()),
        len(spec.critical),
    ))
    print()
    print("sample (stack pointer):")
    print(render_spec(spec.critical["stack_pointer"]))


if __name__ == "__main__":
    main()
