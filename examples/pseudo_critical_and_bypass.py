"""The Section 4 attacks (Figures 2 and 3) and their defenses, end to end.

Attack 1: a pseudo-critical copy of the RISC stack pointer feeds its
fan-out and the *copy* is corrupted — Eq. (2) on the original register is
blind, Eq. (3) exposes the copy.

Attack 2: a trigger-selected bypass register replaces the stack pointer's
fan-out — Eq. (4)'s CEGIS loop recovers the trigger prefix and the
(p, q) value pair proving the register unobservable.

    python examples/pseudo_critical_and_bypass.py
"""

from __future__ import annotations

from repro.bmc.witness import confirms_violation
from repro.core.backends import run_objective
from repro.designs import build_risc
from repro.designs.trojans.attacks import add_bypass, add_pseudo_critical
from repro.properties.bypass import BypassChecker, validate_bypass
from repro.properties.monitors import (
    build_corruption_monitor,
    build_tracking_monitor,
)


def attack1():
    print("=== Attack 1 (Figure 2): pseudo-critical stack pointer")
    netlist, spec = build_risc()
    attacked, info = add_pseudo_critical(
        netlist, "stack_pointer", invert=False, corrupt=True,
        trigger_input="eeprom_in",
    )
    print("  inserted:", info.payload)

    monitor = build_corruption_monitor(
        attacked, spec.critical["stack_pointer"], functional=True
    )
    naive = run_objective(
        "bmc", monitor.netlist, monitor.objective_net, 16,
        pinned_inputs=spec.pinned_inputs, time_budget=90,
    )
    print("  Eq.(2) on the original stack pointer:", naive.status,
          "-> the naive audit passes the infected design")

    tracker = build_tracking_monitor(
        attacked, spec.critical["stack_pointer"], "pseudo_stack_pointer"
    )
    eq3 = run_objective(
        "bmc", tracker.netlist, tracker.objective_net, 16,
        pinned_inputs=spec.pinned_inputs, time_budget=90,
    )
    confirmed = eq3.detected and confirms_violation(
        tracker.netlist, eq3.witness, tracker.violation_net
    )
    print("  Eq.(3) on the copy:", eq3.status,
          "(witness confirmed: {})".format(confirmed))
    if eq3.detected:
        print("  -> the copy diverges from the register it claims to "
              "mirror: Trojan exposed at cycle", eq3.witness.violation_cycle)
    print()


def attack2():
    print("=== Attack 2 (Figure 3): bypass stack pointer")
    netlist, spec = build_risc()
    attacked, info = add_bypass(
        netlist, "stack_pointer", trigger_input="eeprom_in"
    )
    print("  inserted:", info.payload)

    checker = BypassChecker(attacked, spec.critical["stack_pointer"])
    result = checker.check(10, time_budget=120)
    print("  Eq.(4) CEGIS:", result.summary())
    if result.detected:
        print("  validated by randomized replay:",
              validate_bypass(attacked, result, "stack_pointer"))
        print("  -> after the {}-cycle prefix, outputs cannot tell "
              "stack_pointer={:#x} from {:#x}: the register is "
              "bypassed".format(result.bound, result.p_value,
                                result.q_value))


if __name__ == "__main__":
    attack1()
    attack2()
