"""Quickstart: audit a tiny 3PIP for data-corrupting Trojans.

Builds an 8-bit "secret register" core with a DeTrust-style Trojan (five
loads of 0xA5 arm it; then the secret's low bit is flipped), writes the
defender's valid-way spec, and runs Algorithm 1 with both formal engines.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import AuditConfig, TrojanDetector
from repro.netlist import Circuit, stats
from repro.properties import DesignSpec, RegisterSpec, ValidWay


def build_design(trojan=True):
    """An 8-bit secret register: reset clears it, load writes key_in."""
    c = Circuit("secret_core")
    reset = c.input("reset", 1)
    load = c.input("load", 1)
    key_in = c.input("key_in", 8)

    secret = c.reg("secret", 8)
    next_value = c.select(
        secret.q,
        (reset, c.const(0, 8)),
        (load, key_in),
    )

    if trojan:
        # DeTrust-style trigger: count loads of the magic value 0xA5
        counter = c.reg("counter", 3)
        magic = key_in.eq_const(0xA5) & load
        done = counter.q.eq_const(5)
        counter.hold_unless((reset, c.const(0, 3)), (magic & ~done,
                                                     counter.q + 1))
        next_value = c.mux(done, next_value, next_value ^ c.const(1, 8))

    secret.drive(next_value)
    c.output("out", secret.q)
    return c.finalize()


def defender_spec():
    """What the datasheet says: the only valid ways to update `secret`."""
    ways = [
        ValidWay("reset", lambda m: m.input("reset"),
                 value=lambda m: m.const(0, 8), expression="reset"),
        ValidWay("load", lambda m: m.input("load"),
                 value=lambda m: m.input("key_in"), expression="load"),
    ]
    return DesignSpec(
        name="secret_core",
        critical={"secret": RegisterSpec("secret", ways)},
        pinned_inputs={"reset": 0},
    )


def main():
    for label, trojan in (("Trojan-infected", True), ("clean", False)):
        netlist = build_design(trojan=trojan)
        print("=== {} design: {}".format(label, stats(netlist)))
        for engine in ("bmc", "atpg"):
            config = AuditConfig(max_cycles=15, engine=engine,
                                 time_budget=60)
            report = TrojanDetector(
                netlist, defender_spec(), config=config,
            ).run()
            print("[{}] {}".format(engine, report.summary()))
            finding = report.findings["secret"]
            if finding.corrupted:
                print(finding.corruption.witness.format(netlist))
        print()


if __name__ == "__main__":
    main()
