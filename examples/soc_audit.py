"""An SoC integrator's audit: every incoming 3PIP, one report.

The paper's threat model (Section 2.1): the integrator receives several
third-party cores, knows each one's critical registers and datasheet
semantics, and must decide which to trust before tape-out. This example
audits a three-IP delivery — a clean router, a clean AES, and an MCU that
(unknown to the integrator) carries MC8051-T800 — and prints the kind of
sign-off sheet the flow is for.

    python examples/soc_audit.py
"""

from __future__ import annotations

import time

from repro.core import AuditConfig, TrojanDetector
from repro.designs import build_aes, build_router
from repro.designs.trojans import mc8051_t800
from repro.netlist import stats


def deliveries():
    router_netlist, router_spec = build_router()
    aes_netlist, aes_spec = build_aes()
    mcu_netlist, mcu_spec = mc8051_t800()  # the vendor lied
    return [
        ("vendor-A/router", router_netlist, router_spec, 10),
        ("vendor-B/aes", aes_netlist, aes_spec, 12),
        ("vendor-C/mcu", mcu_netlist, mcu_spec, 10),
    ]


def main():
    verdicts = []
    for name, netlist, spec, cycles in deliveries():
        print("=== auditing {} — {}".format(name, stats(netlist)))
        started = time.perf_counter()
        config = AuditConfig(max_cycles=cycles, engine="bmc",
                             functional=True, time_budget=120)
        report = TrojanDetector(netlist, spec, config=config).run()
        elapsed = time.perf_counter() - started
        print(report.summary())
        print("  ({:.1f}s)".format(elapsed))
        print()
        verdicts.append((name, report))

    print("=" * 64)
    print("SIGN-OFF SHEET")
    print("=" * 64)
    for name, report in verdicts:
        if report.trojan_found:
            print("  REJECT  {:<18s} data-corrupting Trojan found".format(
                name))
        else:
            print(
                "  ACCEPT  {:<18s} trustworthy for {} cycles "
                "(reset at least that often)".format(
                    name, report.trusted_for()
                )
            )


if __name__ == "__main__":
    main()
