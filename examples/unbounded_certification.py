"""Beyond the paper: unbounded certification with k-induction.

The paper's guarantee is bounded — the design is trustworthy for T cycles
and must be reset every T cycles (Section 3.2). When the no-corruption
monitor is k-inductive, the property instead holds for *all* time and the
periodic reset becomes unnecessary. This example certifies the clean
RISC's Table 2 registers and the router's destination register forever,
and shows the Trojan-infected variants failing in the base case.

    python examples/unbounded_certification.py
"""

from __future__ import annotations

from repro.bmc import prove_by_induction
from repro.designs import build_risc, build_router, router_redirect_trojan
from repro.properties.monitors import build_corruption_monitor


def certify(label, netlist, spec, register, max_k=3, budget=90):
    monitor = build_corruption_monitor(
        netlist, spec.critical[register], functional=False
    )
    result = prove_by_induction(
        monitor.netlist,
        monitor.violation_net,
        max_k=max_k,
        time_budget=budget,
        pinned_inputs=spec.pinned_inputs,
        property_name="{}:{}".format(label, register),
    )
    verdicts = {
        "proved-unbounded": "TRUSTWORTHY FOR ALL TIME (k={})".format(
            result.k
        ),
        "violated": "TROJAN (base case fails at bound {})".format(
            result.base_bound
        ),
        "unknown": "only the bounded guarantee applies (k reached {})".format(
            result.k
        ),
    }
    print("  {:28s} {}".format(register, verdicts[result.status]))
    return result


def main():
    print("clean RISC (no periodic reset needed if all certify):")
    netlist, spec = build_risc()
    for register in ("stack_pointer", "eeprom_data", "eeprom_address",
                     "sleep_flag", "interrupt_enable"):
        certify("risc", netlist, spec, register)

    print("\nclean router:")
    netlist, spec = build_router()
    certify("router", netlist, spec, "dest_register")

    print("\nrouter with the traffic-redirection Trojan:")
    netlist, spec = router_redirect_trojan()
    result = certify("router-redirect", netlist, spec, "dest_register",
                     max_k=8)
    if result.witness is not None:
        print(result.witness.format(netlist))


if __name__ == "__main__":
    main()
