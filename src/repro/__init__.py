"""repro — reproduction of "Detecting Malicious Modifications of Data in
Third-Party Intellectual Property Cores" (Rajendran, Vedula, Karri — DAC'15).

A pure-Python framework for detecting data-corrupting hardware Trojans in
gate-level IP cores with bounded model checking and sequential ATPG, plus
every substrate it needs: a netlist IR and builder, a logic simulator, a
CDCL SAT solver, PODEM-based ATPG, the paper's security-property monitors
(no-data-corruption, pseudo-critical, bypass), the FANCI / VeriTrust
baselines, and Trust-Hub-style benchmark designs (RISC, MC8051, AES) with
their Trojans.

Quickstart::

    from repro import AuditConfig, TrojanDetector
    from repro.designs.trojans import risc_t100

    design, spec = risc_t100()
    config = AuditConfig(max_cycles=40, jobs=4)
    report = TrojanDetector(design, spec, config=config).run()
    print(report.summary())

``__all__`` below is the stable public surface: detector and config,
report types, the parallel scheduler, the supervised runner, and the
lint / cache / trace entry points. Everything else under ``repro.*`` is
implementation detail that may move between releases.
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    # detector + configuration
    "TrojanDetector",
    "AuditConfig",
    # report types
    "DetectionReport",
    "RegisterFinding",
    "scrub_volatile",
    # parallel scheduling
    "AuditScheduler",
    "AuditRequest",
    "PersistentWorkerPool",
    # supervised execution
    "CheckRunner",
    "AuditCheckpoint",
    # static lint pre-pass
    "Linter",
    "LintConfig",
    "lint_design",
    # outcome cache + pluggable backends
    "OutcomeCache",
    "CacheBackend",
    "FallbackBackend",
    # audit service
    "AuditService",
    "JobQueue",
    "ServiceClient",
    # telemetry
    "Tracer",
    "summarize_trace",
    # substrate
    "Circuit",
    "ValidWay",
    "RegisterSpec",
    "DesignSpec",
    "SequentialSimulator",
    # misc
    "ReproError",
    "__version__",
]

# Lazy re-exports keep `import repro` cheap while exposing the main API at
# the top level. Target module per public name:
_EXPORTS = {
    "TrojanDetector": ("repro.core.detector", "TrojanDetector"),
    "AuditConfig": ("repro.core.detector", "AuditConfig"),
    "DetectionReport": ("repro.core.report", "DetectionReport"),
    "RegisterFinding": ("repro.core.report", "RegisterFinding"),
    "scrub_volatile": ("repro.core.report", "scrub_volatile"),
    "AuditScheduler": ("repro.sched.scheduler", "AuditScheduler"),
    "AuditRequest": ("repro.sched.scheduler", "AuditRequest"),
    "PersistentWorkerPool": ("repro.sched.pool", "PersistentWorkerPool"),
    "CheckRunner": ("repro.runner.supervisor", "CheckRunner"),
    "AuditCheckpoint": ("repro.runner.checkpoint", "AuditCheckpoint"),
    "Linter": ("repro.lint", "Linter"),
    "LintConfig": ("repro.lint", "LintConfig"),
    "lint_design": ("repro.lint", "lint_design"),
    "OutcomeCache": ("repro.cache", "OutcomeCache"),
    "CacheBackend": ("repro.cache.backend", "CacheBackend"),
    "FallbackBackend": ("repro.cache.backend", "FallbackBackend"),
    "AuditService": ("repro.serve.server", "AuditService"),
    "JobQueue": ("repro.serve.queue", "JobQueue"),
    "ServiceClient": ("repro.serve.server", "ServiceClient"),
    "Tracer": ("repro.obs.tracer", "Tracer"),
    "summarize_trace": ("repro.obs.summary", "summarize"),
    "Circuit": ("repro.netlist.builder", "Circuit"),
    "ValidWay": ("repro.properties.valid_ways", "ValidWay"),
    "RegisterSpec": ("repro.properties.valid_ways", "RegisterSpec"),
    "DesignSpec": ("repro.properties.valid_ways", "DesignSpec"),
    "SequentialSimulator": ("repro.sim.sequential", "SequentialSimulator"),
}


def __getattr__(name):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            "module 'repro' has no attribute {!r}".format(name)
        )
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
