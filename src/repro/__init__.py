"""repro — reproduction of "Detecting Malicious Modifications of Data in
Third-Party Intellectual Property Cores" (Rajendran, Vedula, Karri — DAC'15).

A pure-Python framework for detecting data-corrupting hardware Trojans in
gate-level IP cores with bounded model checking and sequential ATPG, plus
every substrate it needs: a netlist IR and builder, a logic simulator, a
CDCL SAT solver, PODEM-based ATPG, the paper's security-property monitors
(no-data-corruption, pseudo-critical, bypass), the FANCI / VeriTrust
baselines, and Trust-Hub-style benchmark designs (RISC, MC8051, AES) with
their Trojans.

Quickstart::

    from repro import TrojanDetector
    from repro.designs.trojans import risc_t100

    design, spec = risc_t100()
    report = TrojanDetector(design, spec, max_cycles=40).run()
    print(report.summary())
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]


def __getattr__(name):
    # Lazy re-exports keep `import repro` cheap while exposing the main API
    # at the top level.
    if name == "TrojanDetector":
        from repro.core.detector import TrojanDetector

        return TrojanDetector
    if name == "ValidWays":
        from repro.properties.valid_ways import ValidWays

        return ValidWays
    if name == "Circuit":
        from repro.netlist.builder import Circuit

        return Circuit
    if name == "SequentialSimulator":
        from repro.sim.sequential import SequentialSimulator

        return SequentialSimulator
    raise AttributeError("module 'repro' has no attribute {!r}".format(name))
