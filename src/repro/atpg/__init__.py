"""Test-generation substrate: SCOAP, faults, PODEM, fault simulation, and
the sequential property-justification engines."""

from repro.atpg.fault_sim import FaultSimResult, FaultSimulator
from repro.atpg.faults import Fault, collapse_faults, full_fault_list
from repro.atpg.podem import ABORTED, TESTABLE, UNTESTABLE, CombPodem, PodemResult
from repro.atpg.podem_seq import PodemJustifier
from repro.atpg.scoap import Scoap, compute_scoap
from repro.atpg.sequential import JustifyResult, SequentialJustifier

__all__ = [
    "FaultSimResult",
    "FaultSimulator",
    "Fault",
    "collapse_faults",
    "full_fault_list",
    "ABORTED",
    "TESTABLE",
    "UNTESTABLE",
    "CombPodem",
    "PodemResult",
    "PodemJustifier",
    "Scoap",
    "compute_scoap",
    "JustifyResult",
    "SequentialJustifier",
]

from repro.atpg.testgen import GeneratedTests, generate_tests  # noqa: E402

__all__ += ["GeneratedTests", "generate_tests"]
