"""Bit-parallel stuck-at fault simulation.

Parallel-fault simulation over the combinational view of a netlist: one
lane per fault (plus lane 0 for the good circuit). A fault is *injected*
by forcing its net's value in its lane after the driving gate evaluates —
the standard mask trick — so one levelized pass simulates the good machine
and 63 faulty machines at once.

Sequential designs are handled by carrying per-lane flop state across
cycles, so a fault's effect may surface at an output many cycles after the
corrupting pattern (how "functional testing with valid ways" reveals the
stuck pseudo-critical register of Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.engine import CombEvaluator


@dataclass
class FaultSimResult:
    """Coverage outcome of a fault-simulation run."""

    detected: dict = field(default_factory=dict)  # Fault -> cycle detected
    undetected: list = field(default_factory=list)
    patterns: int = 0

    @property
    def coverage(self):
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


class FaultSimulator:
    """Sequential parallel-fault simulator (lane 0 = good machine)."""

    def __init__(self, netlist, batch=63):
        if batch < 1 or batch > 262143:
            raise SimulationError("batch must be in 1..262143")
        self.netlist = netlist
        self.batch = batch

    def run(self, faults, stimulus, observe_outputs=None):
        """Simulate ``stimulus`` (list of per-cycle input dicts) against
        every fault; returns a :class:`FaultSimResult`."""
        if observe_outputs is None:
            observe_outputs = list(self.netlist.outputs)
        result = FaultSimResult(patterns=len(stimulus))
        remaining = list(faults)
        while remaining:
            chunk = remaining[: self.batch]
            remaining = remaining[self.batch :]
            self._run_chunk(chunk, stimulus, observe_outputs, result)
        result.undetected = [
            f for f in faults if f not in result.detected
        ]
        return result

    def _run_chunk(self, chunk, stimulus, observe_outputs, result):
        lanes = len(chunk) + 1
        evaluator = CombEvaluator(self.netlist, lanes=lanes)
        values = evaluator.fresh_values()
        mask = evaluator.mask
        # per-fault injection masks: lane k+1 carries fault k
        inject = {}
        for k, fault in enumerate(chunk):
            lane_bit = 1 << (k + 1)
            inject.setdefault(fault.net, [0, 0])
            if fault.stuck_at:
                inject[fault.net][1] |= lane_bit  # OR-mask
            else:
                inject[fault.net][0] |= lane_bit  # AND-clear mask
        # reset state in all lanes
        for flop in self.netlist.flops:
            values[flop.q] = mask if flop.init else 0
        self._apply_injection(values, inject, self.netlist.flop_q_set())

        for cycle, words in enumerate(stimulus):
            for name, word in words.items():
                evaluator.set_word(values, self.netlist.inputs[name], word)
            self._apply_injection(values, inject, self.netlist.input_net_set())
            self._propagate_with_injection(evaluator, values, inject)
            # compare faulty lanes against the good lane on outputs
            for name in observe_outputs:
                for net in self.netlist.outputs[name]:
                    word = values[net]
                    good = -(word & 1) & mask  # broadcast lane 0
                    diff = (word ^ good) & mask & ~1
                    while diff:
                        lane = (diff & -diff).bit_length() - 1
                        diff &= diff - 1
                        fault = chunk[lane - 1]
                        if fault not in result.detected:
                            result.detected[fault] = cycle
            # clock
            updates = [
                (flop.q, values[flop.d]) for flop in self.netlist.flops
            ]
            for q, value in updates:
                values[q] = value
            self._apply_injection(values, inject, self.netlist.flop_q_set())

    def _apply_injection(self, values, inject, nets):
        for net in nets:
            masks = inject.get(net)
            if masks is not None:
                values[net] = (values[net] & ~masks[0]) | masks[1]

    def _propagate_with_injection(self, evaluator, values, inject):
        mask = evaluator.mask
        for kind, ins, out in evaluator._program:
            # reuse the evaluator's compiled program, fault-injecting after
            # each gate that is a fault site
            from repro.netlist.cells import Kind

            if kind is Kind.AND:
                acc = values[ins[0]]
                for net in ins[1:]:
                    acc &= values[net]
                values[out] = acc
            elif kind is Kind.OR:
                acc = values[ins[0]]
                for net in ins[1:]:
                    acc |= values[net]
                values[out] = acc
            elif kind is Kind.XOR:
                acc = values[ins[0]]
                for net in ins[1:]:
                    acc ^= values[net]
                values[out] = acc
            elif kind is Kind.NOT:
                values[out] = ~values[ins[0]] & mask
            elif kind is Kind.MUX:
                sel = values[ins[0]]
                values[out] = (values[ins[1]] & ~sel) | (values[ins[2]] & sel)
            elif kind is Kind.BUF:
                values[out] = values[ins[0]]
            elif kind is Kind.NAND:
                acc = values[ins[0]]
                for net in ins[1:]:
                    acc &= values[net]
                values[out] = ~acc & mask
            elif kind is Kind.NOR:
                acc = values[ins[0]]
                for net in ins[1:]:
                    acc |= values[net]
                values[out] = ~acc & mask
            else:  # XNOR
                acc = values[ins[0]]
                for net in ins[1:]:
                    acc ^= values[net]
                values[out] = ~acc & mask
            masks = inject.get(out)
            if masks is not None:
                values[out] = (values[out] & ~masks[0]) | masks[1]
