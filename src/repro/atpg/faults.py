"""Stuck-at fault machinery.

The classical single-stuck-at model the paper leans on twice: the monitor
output is checked as a stuck-at-1 fault (Section 3.2, via [26]), and the
Attack-1 analysis argues a pseudo-critical register cannot hold a constant
"because such faults are revealed during functional testing" (Section 4.1)
— which our fault simulator substantiates.

A fault site is an (output) net; faults on a cell's input pins are modelled
at the driving net after fan-out-aware collapsing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.cells import Kind
from repro.netlist.traversal import fanout_map


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault at a net."""

    net: int
    stuck_at: int  # 0 or 1

    def __str__(self):
        return "s-a-{}@{}".format(self.stuck_at, self.net)


def full_fault_list(netlist):
    """Both polarities at every driven net (inputs, cell outputs, flop Qs)."""
    faults = []
    for net in range(2, netlist.num_nets):
        if netlist.is_driven(net):
            faults.append(Fault(net, 0))
            faults.append(Fault(net, 1))
    return faults


def collapse_faults(netlist):
    """Equivalence-collapsed fault list.

    Classic rules: a fan-out-free net driving an inverter/buffer carries the
    same fault class as the inverter output (s-a-v on a NOT input ==
    s-a-(1-v) on its output); the controlled-value fault on every input of
    an AND/NAND (OR/NOR) gate is equivalent to the corresponding output
    fault, so only one representative per gate is kept.
    """
    fanout = fanout_map(netlist)
    keep = set(full_fault_list(netlist))

    def fanout_free(net):
        return len(fanout.get(net, ())) == 1

    for cell in netlist.cells:
        if cell.kind in (Kind.BUF, Kind.NOT):
            inp = cell.inputs[0]
            if fanout_free(inp):
                for value in (0, 1):
                    # the input fault is equivalent to the output fault
                    keep.discard(Fault(inp, value))
        elif cell.kind in (Kind.AND, Kind.NAND, Kind.OR, Kind.NOR):
            controlling = 0 if cell.kind in (Kind.AND, Kind.NAND) else 1
            for inp in cell.inputs:
                if fanout_free(inp):
                    # input stuck at the controlling value == output stuck
                    # at the controlled output value: keep the output fault
                    keep.discard(Fault(inp, controlling))
    return sorted(keep, key=lambda f: (f.net, f.stuck_at))
