"""Combinational PODEM test generation with the 5-valued D-calculus.

Generates a test pattern for a single stuck-at fault in the combinational
view of a netlist (primary inputs + flop Q pins are controllable, primary
outputs + flop D pins are observable). This is the engine of [26]'s
monitor-output formulation in its original habitat: given the monitor's
violation net, a test for its stuck-at-1 fault *is* an input assignment
driving the violation to 0/1 across the fault-free/faulty pair.

Standard PODEM structure: objective selection (excite the fault, then
advance the D-frontier), SCOAP-guided backtrace to an unassigned input,
implication by 5-valued evaluation, X-path pruning, chronological
backtracking with a backtrack budget (``aborted`` faults are reported as
such, the TetraMAX behaviour the paper describes for one-way functions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.scoap import compute_scoap
from repro.atpg.values import (
    D,
    DBAR,
    ONE,
    X,
    ZERO,
    and5,
    fold,
    is_d_value,
    mux5,
    not5,
    or5,
    xor5,
)
from repro.netlist.cells import Kind
from repro.netlist.traversal import topological_cells

TESTABLE = "testable"
UNTESTABLE = "untestable"
ABORTED = "aborted"


@dataclass
class PodemResult:
    """Outcome of one fault's test generation."""

    status: str
    fault: object
    test: dict | None = None  # controllable net -> 0/1
    backtracks: int = 0
    observed_at: int | None = None  # net where the D value surfaced


class CombPodem:
    """PODEM over the combinational view of a netlist."""

    def __init__(self, netlist, max_backtracks=10000):
        self.netlist = netlist
        self.max_backtracks = max_backtracks
        self._order = [netlist.cells[i] for i in topological_cells(netlist)]
        self.controllable = sorted(
            netlist.input_net_set() | netlist.flop_q_set()
        )
        observable = set()
        for nets in netlist.outputs.values():
            observable.update(nets)
        observable.update(flop.d for flop in netlist.flops)
        self.observable = sorted(observable)
        self._scoap = compute_scoap(netlist)
        self._consumers = {}
        for cell in self._order:
            for net in set(cell.inputs):
                self._consumers.setdefault(net, []).append(cell)
        self._cell_of_output = {c.output: c for c in self._order}

    # ------------------------------------------------------------------ API

    def generate_test(self, fault):
        """PODEM main loop for one stuck-at fault."""
        assignment = {}
        decisions = []  # (net, value, flipped)
        backtracks = 0
        while True:
            values = self._simulate(assignment, fault)
            observed = self._observed_at(values)
            if observed is not None:
                test = {
                    net: assignment.get(net, 0) for net in self.controllable
                }
                return PodemResult(
                    TESTABLE, fault, test, backtracks, observed
                )
            objective = self._objective(values, fault)
            target = None
            if objective is not None:
                target = self._backtrace(*objective, values)
            if target is None:
                # dead end: flip the most recent unflipped decision
                while True:
                    backtracks += 1
                    if backtracks > self.max_backtracks:
                        return PodemResult(ABORTED, fault, None, backtracks)
                    if not decisions:
                        return PodemResult(
                            UNTESTABLE, fault, None, backtracks
                        )
                    net, value, flipped = decisions.pop()
                    del assignment[net]
                    if not flipped:
                        assignment[net] = value ^ 1
                        decisions.append((net, value ^ 1, True))
                        break
                continue
            net, value = target
            assignment[net] = value
            decisions.append((net, value, False))

    # ------------------------------------------------------------ internals

    def _simulate(self, assignment, fault):
        """5-valued evaluation with the fault injected at its site."""
        values = {0: ZERO, 1: ONE}
        for net in self.controllable:
            values[net] = assignment.get(net, X)
            if net == fault.net:
                values[net] = self._inject(values[net], fault)
        for cell in self._order:
            ins = [values[n] for n in cell.inputs]
            kind = cell.kind
            if kind is Kind.AND:
                value = fold(and5, ins)
            elif kind is Kind.OR:
                value = fold(or5, ins)
            elif kind is Kind.XOR:
                value = fold(xor5, ins)
            elif kind is Kind.NOT:
                value = not5(ins[0])
            elif kind is Kind.BUF:
                value = ins[0]
            elif kind is Kind.NAND:
                value = not5(fold(and5, ins))
            elif kind is Kind.NOR:
                value = not5(fold(or5, ins))
            elif kind is Kind.XNOR:
                value = not5(fold(xor5, ins))
            else:  # MUX
                value = mux5(ins[0], ins[1], ins[2])
            if cell.output == fault.net:
                value = self._inject(value, fault)
            values[cell.output] = value
        return values

    @staticmethod
    def _inject(good, fault):
        """Combine the good value with the stuck-at faulty value."""
        if good == X:
            return X
        if good in (ZERO, ONE):
            if good == fault.stuck_at:
                return good  # not excited
            return D if good == ONE else DBAR
        # D / D' through the fault site: faulty component is forced
        return D if fault.stuck_at == 0 else DBAR

    def _observed_at(self, values):
        for net in self.observable:
            if is_d_value(values[net]):
                return net
        return None

    def _objective(self, values, fault):
        """(net, value) the search should pursue next, or None if hopeless."""
        site = values.get(fault.net, X)
        if site == X:
            # excite the fault
            return (fault.net, fault.stuck_at ^ 1)
        if not is_d_value(site):
            return None  # fault blocked: site stuck at its own value
        # advance the D-frontier: a gate with a D input and X output that
        # still has an X path to an observable point
        frontier = []
        for cell in self._order:
            if values[cell.output] != X:
                continue
            if any(is_d_value(values[n]) for n in cell.inputs):
                frontier.append(cell)
        for cell in frontier:
            if not self._x_path(cell.output, values):
                continue
            kind = cell.kind
            if kind in (Kind.AND, Kind.NAND, Kind.OR, Kind.NOR):
                noncontrolling = (
                    1 if kind in (Kind.AND, Kind.NAND) else 0
                )
                for net in cell.inputs:
                    if values[net] == X:
                        return (net, noncontrolling)
            elif kind in (Kind.XOR, Kind.XNOR):
                for net in cell.inputs:
                    if values[net] == X:
                        return (net, 0)
            elif kind is Kind.MUX:
                sel, d0, d1 = cell.inputs
                if values[sel] == X:
                    steer = 1 if is_d_value(values[d1]) else 0
                    return (sel, steer)
                data = d1 if values[sel] == ONE else d0
                if values[data] == X:
                    return (data, 0)
        return None

    def _x_path(self, net, values):
        """Is there a path from ``net`` to an observable point through X?"""
        seen = set()
        stack = [net]
        observable = set(self.observable)
        while stack:
            current = stack.pop()
            if current in observable:
                return True
            if current in seen:
                continue
            seen.add(current)
            for cell in self._consumers.get(current, ()):
                if values[cell.output] == X and cell.output not in seen:
                    stack.append(cell.output)
            if current in observable:
                return True
        return False

    def _backtrace(self, net, value, values):
        """Map an objective to an unassigned controllable input."""
        scoap = self._scoap
        guard = 0
        while True:
            guard += 1
            if guard > 100000:  # pragma: no cover
                return None
            cell = self._cell_of_output.get(net)
            if cell is None:
                # controllable input (or flop Q): decide here if still X
                if values.get(net, X) == X:
                    return (net, value)
                return None
            kind = cell.kind
            ins = cell.inputs
            if kind is Kind.NOT:
                net, value = ins[0], value ^ 1
                continue
            if kind is Kind.BUF:
                net = ins[0]
                continue
            if kind is Kind.NAND:
                kind, value = Kind.AND, value ^ 1
            elif kind is Kind.NOR:
                kind, value = Kind.OR, value ^ 1
            if kind in (Kind.AND, Kind.OR):
                x_ins = [n for n in ins if values[n] == X]
                if not x_ins:
                    return None
                if (kind is Kind.AND and value == 0) or (
                    kind is Kind.OR and value == 1
                ):
                    table = scoap.cc0 if kind is Kind.AND else scoap.cc1
                    net = min(x_ins, key=lambda n: table.get(n, 1.0))
                    value = 0 if kind is Kind.AND else 1
                else:
                    table = scoap.cc1 if kind is Kind.AND else scoap.cc0
                    net = max(x_ins, key=lambda n: table.get(n, 1.0))
                    value = 1 if kind is Kind.AND else 0
                continue
            if kind in (Kind.XOR, Kind.XNOR):
                parity = value ^ (1 if kind is Kind.XNOR else 0)
                known = 0
                x_ins = []
                for n in ins:
                    v = values[n]
                    if v == X:
                        x_ins.append(n)
                    elif v in (ZERO, ONE):
                        known ^= v
                    else:
                        return None  # D on the path: don't disturb
                if not x_ins:
                    return None
                net = x_ins[0]
                value = (parity ^ known) if len(x_ins) == 1 else 0
                continue
            if kind is Kind.MUX:
                sel, d0, d1 = ins
                sv = values[sel]
                if sv == ZERO:
                    net = d0
                    continue
                if sv == ONE:
                    net = d1
                    continue
                if sv == X:
                    net, value = sel, 0
                    continue
                return None
            return None  # pragma: no cover

    # ------------------------------------------------------------- coverage

    def run_fault_list(self, faults):
        """Generate tests for a whole fault list; returns a result dict."""
        results = {}
        for fault in faults:
            results[fault] = self.generate_test(fault)
        return results
