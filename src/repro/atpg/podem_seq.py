"""PODEM-style sequential justification with forward implication.

The second (and default) ATPG engine. Where
:class:`~repro.atpg.sequential.SequentialJustifier` searches *backwards*
over line-justification choices, :class:`PodemJustifier` follows PODEM's
discipline (Goel 1981), the one production ATPG is built on:

* decisions are made **only on primary inputs** (here: input bits at
  specific time frames of the unrolled design);
* after every decision the engine runs **event-driven 3-valued forward
  implication** over the unrolled circuit, so any conflict with the
  objective is observed immediately — the failure mode that drowns
  backward search (re-refuting the same infeasible sub-goal under
  thousands of contexts) cannot occur, because implications are global;
* the next decision target is found by **backtracing** from the objective
  through X-valued gates to an unassigned input, guided by SCOAP
  controllabilities (hardest-first for all-controlling requirements,
  easiest-first for any-of requirements);
* chronological backtracking flips the most recent un-flipped decision.

The engine is sound and complete for bounded justification: SAT returns a
primary-input witness, UNSAT proves the objective unreachable within the
bound. Frame 0 is the reset state; pinned inputs (e.g. ``reset = 0``) are
folded into the base implication.
"""

from __future__ import annotations

import time
import tracemalloc
from collections import deque

from repro.atpg.scoap import compute_scoap
from repro.atpg.sequential import JustifyResult, PROVED, UNKNOWN_STATUS, VIOLATED
from repro.bmc.witness import Witness
from repro.netlist.cells import Kind
from repro.netlist.traversal import cone_of_influence, topological_cells
from repro.obs.tracer import get_tracer


def _eval3_cell(kind, ins, vals):
    if kind is Kind.AND or kind is Kind.NAND:
        out = 1
        for net in ins:
            v = vals[net]
            if v == 0:
                out = 0
                break
            if v is None:
                out = None
        if out is None:
            return None
        return out ^ 1 if kind is Kind.NAND else out
    if kind is Kind.OR or kind is Kind.NOR:
        out = 0
        for net in ins:
            v = vals[net]
            if v == 1:
                out = 1
                break
            if v is None:
                out = None
        if out is None:
            return None
        return out ^ 1 if kind is Kind.NOR else out
    if kind is Kind.XOR or kind is Kind.XNOR:
        out = 0
        for net in ins:
            v = vals[net]
            if v is None:
                return None
            out ^= v
        return out ^ 1 if kind is Kind.XNOR else out
    if kind is Kind.NOT:
        v = vals[ins[0]]
        return None if v is None else v ^ 1
    if kind is Kind.BUF:
        return vals[ins[0]]
    if kind is Kind.MUX:
        sel = vals[ins[0]]
        d0 = vals[ins[1]]
        d1 = vals[ins[2]]
        if sel == 0:
            return d0
        if sel == 1:
            return d1
        if d0 is not None and d0 == d1:
            return d0
        return None
    raise ValueError(kind)  # pragma: no cover


class _Budget(Exception):
    pass


class PodemJustifier:
    """Justifies ``objective_net == 1`` within a bound, PODEM-style."""

    def __init__(self, netlist, objective_net, property_name="", use_coi=True,
                 pinned_inputs=None):
        self.netlist = netlist
        self.objective_net = objective_net
        self.property_name = property_name
        self.pinned_inputs = dict(pinned_inputs or {})

        if use_coi:
            cone, cell_idxs, _flops = cone_of_influence(netlist, [objective_net])
        else:
            cone = None
            cell_idxs = topological_cells(netlist)
        self._cells = [netlist.cells[i] for i in cell_idxs]
        self._flops = [
            f
            for f in netlist.flops
            if cone is None or f.q in cone
        ]
        input_nets = sorted(
            net
            for net in netlist.input_net_set()
            if cone is None or net in cone
        )
        self._cone_counts = (len(self._cells), len(self._flops), len(input_nets))

        pinned_bits = {}
        for name, word in self.pinned_inputs.items():
            for bit, net in enumerate(netlist.inputs[name]):
                pinned_bits[net] = (word >> bit) & 1
        self._pinned_bits = pinned_bits
        self._free_inputs = {
            net for net in input_nets if net not in pinned_bits
        }
        self._input_name = {}
        for name, nets in netlist.inputs.items():
            for bit, net in enumerate(nets):
                self._input_name[net] = (name, bit)

        # structural indexes for event-driven propagation
        self._cell_of_output = {}
        self._consumers = {}  # net -> list of cells reading it
        for cell in self._cells:
            self._cell_of_output[cell.output] = cell
            for net in set(cell.inputs):
                self._consumers.setdefault(net, []).append(cell)
        self._flops_of_d = {}
        for flop in self._flops:
            self._flops_of_d.setdefault(flop.d, []).append(flop)
        self._driver_flop = {f.q: f for f in self._flops}

        self._scoap = compute_scoap(netlist)
        # search state (created per check)
        self._vals = []
        self._frames = 0
        self.backtracks = 0
        self.decisions = 0
        self._deadline = None
        self._tick = 0

    # ------------------------------------------------------------------ API

    def check(self, max_cycles, time_budget=None, backtrack_budget=None,
              measure_memory=False, start_cycle=1):
        start_cycle = max(start_cycle, 1)  # cycles are 1-based
        tracer = get_tracer()
        if not tracer.enabled:
            return self._check(max_cycles, time_budget, backtrack_budget,
                               measure_memory, start_cycle, tracer)
        with tracer.span(
            "atpg.check",
            engine="podem",
            property=self.property_name,
            max_cycles=max_cycles,
            start_cycle=start_cycle,
        ) as extra:
            result = self._check(max_cycles, time_budget, backtrack_budget,
                                 measure_memory, start_cycle, tracer)
            extra.update(
                status=result.status,
                bound=result.bound,
                backtracks=result.backtracks,
            )
            tracer.metrics.counter("atpg.checks").inc()
            tracer.metrics.counter("atpg.status." + result.status).inc()
            tracer.metrics.counter("atpg.backtracks").inc(result.backtracks)
        return result

    def _check(self, max_cycles, time_budget, backtrack_budget,
               measure_memory, start_cycle, tracer):
        start = time.perf_counter()
        self._deadline = None if time_budget is None else start + time_budget
        self._backtrack_budget = backtrack_budget
        self.backtracks = 0
        self.decisions = 0
        snapshotting = False
        if measure_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            snapshotting = True
        peak = 0
        try:
            if measure_memory:
                tracemalloc.reset_peak()
            # an empty bound range proves nothing — never report a
            # vacuous "proved at bound 0" (see BmcEngine.check)
            status = PROVED if max_cycles >= start_cycle else UNKNOWN_STATUS
            bound = 0
            witness = None
            per_bound = []
            for t in range(start_cycle, max_cycles + 1):
                bound_start = time.perf_counter()
                if (
                    self._deadline is not None
                    and time.perf_counter() > self._deadline
                ):
                    status = UNKNOWN_STATUS
                    break
                try:
                    with tracer.span("atpg.bound", t=t):
                        found = self._search(t)
                except _Budget:
                    status = UNKNOWN_STATUS
                    per_bound.append(time.perf_counter() - bound_start)
                    break
                per_bound.append(time.perf_counter() - bound_start)
                if found:
                    status = VIOLATED
                    bound = t
                    witness = Witness(
                        inputs=self._extract_inputs(t),
                        violation_cycle=t - 1,
                        property_name=self.property_name,
                    )
                    break
                bound = t
            if measure_memory:
                _cur, peak = tracemalloc.get_traced_memory()
        finally:
            if snapshotting:
                tracemalloc.stop()
        return JustifyResult(
            status=status,
            bound=bound,
            witness=witness,
            elapsed=time.perf_counter() - start,
            peak_memory=peak,
            backtracks=self.backtracks,
            decisions=self.decisions,
            assignments=0,
            cone=self._cone_counts,
            property_name=self.property_name,
            per_bound_elapsed=per_bound,
        )

    # ------------------------------------------------------------- plumbing

    def _budget_tick(self):
        self._tick += 1
        if self._tick & 1023:
            return
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise _Budget
        if (
            self._backtrack_budget is not None
            and self.backtracks > self._backtrack_budget
        ):
            raise _Budget

    def _base_values(self, frames):
        """Fresh per-frame value arrays: reset state + pinned inputs,
        fully implied forward."""
        num = self.netlist.num_nets
        vals = []
        for t in range(frames):
            frame = [None] * num
            frame[0] = 0
            frame[1] = 1
            for net, bit in self._pinned_bits.items():
                frame[net] = bit
            if t == 0:
                for flop in self._flops:
                    frame[flop.q] = flop.init
            else:
                prev = vals[t - 1]
                for flop in self._flops:
                    frame[flop.q] = prev[flop.d]
            for cell in self._cells:
                frame[cell.output] = _eval3_cell(cell.kind, cell.inputs, frame)
            vals.append(frame)
        return vals

    def _propagate(self, net, frame, undo):
        """Event-driven forward implication from one changed (net, frame)."""
        queue = deque([(net, frame)])
        vals = self._vals
        frames = self._frames
        while queue:
            src, t = queue.popleft()
            frame_vals = vals[t]
            for cell in self._consumers.get(src, ()):
                new = _eval3_cell(cell.kind, cell.inputs, frame_vals)
                out = cell.output
                if new != frame_vals[out]:
                    undo.append((out, t, frame_vals[out]))
                    frame_vals[out] = new
                    queue.append((out, t))
            if t + 1 < frames:
                for flop in self._flops_of_d.get(src, ()):
                    new = frame_vals[flop.d]
                    nxt = vals[t + 1]
                    if new != nxt[flop.q]:
                        undo.append((flop.q, t + 1, nxt[flop.q]))
                        nxt[flop.q] = new
                        queue.append((flop.q, t + 1))

    def _undo(self, undo):
        vals = self._vals
        for net, t, old in reversed(undo):
            vals[t][net] = old

    # ------------------------------------------------------------ backtrace

    def _backtrace(self, net, frame, value):
        """Walk from an X objective through X gates to an unassigned free
        input; returns (net, frame, value) or None if no input supports it."""
        scoap = self._scoap
        guard = 0
        while True:
            guard += 1
            if guard > 100000:  # pragma: no cover - structural safety net
                return None
            if net in self._free_inputs:
                if self._vals[frame][net] is None:
                    return (net, frame, value)
                return None
            flop = self._driver_flop.get(net)
            if flop is not None:
                if frame == 0:
                    return None
                net, frame = flop.d, frame - 1
                continue
            cell = self._cell_of_output.get(net)
            if cell is None:
                return None  # pinned input or net outside the cone
            kind = cell.kind
            ins = cell.inputs
            vals = self._vals[frame]
            if kind is Kind.NOT:
                net, value = ins[0], value ^ 1
                continue
            if kind is Kind.BUF:
                net = ins[0]
                continue
            if kind is Kind.NAND:
                kind, value = Kind.AND, value ^ 1
            elif kind is Kind.NOR:
                kind, value = Kind.OR, value ^ 1
            if kind is Kind.AND or kind is Kind.OR:
                controlling = 0 if kind is Kind.AND else 1
                x_inputs = [n for n in ins if vals[n] is None]
                if not x_inputs:
                    return None
                if value == controlling:
                    # any single X input set to the controlling value: easiest
                    table = scoap.cc0 if controlling == 0 else scoap.cc1
                    net = min(x_inputs, key=lambda n: table.get(n, 1.0))
                    value = controlling
                else:
                    # all X inputs must take the non-controlling value: hardest
                    table = scoap.cc1 if controlling == 0 else scoap.cc0
                    net = max(x_inputs, key=lambda n: table.get(n, 1.0))
                    value = controlling ^ 1
                continue
            if kind is Kind.XOR or kind is Kind.XNOR:
                parity = value ^ (1 if kind is Kind.XNOR else 0)
                known = 0
                x_inputs = []
                for n in ins:
                    v = vals[n]
                    if v is None:
                        x_inputs.append(n)
                    else:
                        known ^= v
                if not x_inputs:
                    return None
                net = x_inputs[0]
                # single remaining X input is forced; otherwise free choice
                value = (parity ^ known) if len(x_inputs) == 1 else 0
                continue
            if kind is Kind.MUX:
                sel, d0, d1 = ins
                sv = vals[sel]
                if sv == 0:
                    net = d0
                    continue
                if sv == 1:
                    net = d1
                    continue
                # select is X: steer it toward the cheaper data arm
                cost0 = scoap.cost(d0, value) if vals[d0] is None else (
                    0.0 if vals[d0] == value else float("inf")
                )
                cost1 = scoap.cost(d1, value) if vals[d1] is None else (
                    0.0 if vals[d1] == value else float("inf")
                )
                net, value = (sel, 0) if cost0 <= cost1 else (sel, 1)
                continue
            return None  # pragma: no cover - closed enum

    # --------------------------------------------------------------- search

    def _search(self, frames):
        self._frames = frames
        self._vals = self._base_values(frames)
        obj = self.objective_net
        obj_frame = frames - 1
        # decision stack: (net, frame, value, flipped, undo list)
        stack = []
        while True:
            self._budget_tick()
            value = self._vals[obj_frame][obj]
            if value == 1:
                return True
            if value is None:
                target = self._backtrace(obj, obj_frame, 1)
            else:
                target = None
            if target is not None:
                net, t, v = target
                undo = []
                self._vals[t][net] = v
                undo.append((net, t, None))
                self._propagate(net, t, undo)
                stack.append((net, t, v, False, undo))
                self.decisions += 1
                continue
            # conflict (objective 0) or no input supports the objective:
            # flip the most recent unflipped decision
            while True:
                self.backtracks += 1
                if not stack:
                    return False
                net, t, v, flipped, undo = stack.pop()
                self._undo(undo)
                if not flipped:
                    undo = []
                    self._vals[t][net] = v ^ 1
                    undo.append((net, t, None))
                    self._propagate(net, t, undo)
                    stack.append((net, t, v ^ 1, True, undo))
                    break

    def _extract_inputs(self, frames):
        sequence = []
        for t in range(frames):
            words = {
                name: self.pinned_inputs.get(name, 0)
                for name in self.netlist.inputs
            }
            frame_vals = self._vals[t]
            for net in self._free_inputs:
                if frame_vals[net]:
                    name, bit = self._input_name[net]
                    words[name] |= 1 << bit
            sequence.append(words)
        return sequence
