"""Portfolio sequential-ATPG: backward justification + PODEM, staged.

The two structural engines have complementary strengths (measured across
the nine Trust-Hub Trojans):

* the backward line-justifier excels when the witness is a narrow
  constant-matching sequence (the AES plaintext triggers: milliseconds),
  but drowns on properties with wide symbolic arithmetic (the RISC
  program-counter functional check);
* PODEM's input-space search with forward implication handles the
  arithmetic-heavy monitors, but wanders on long constant-scan FSMs.

Industrial ATPG is itself a staged portfolio of engines with per-fault
abort limits; :class:`PortfolioJustifier` reproduces that discipline:

1. backward ramp      (35% of the budget)
2. PODEM ramp         (35%)
3. backward single-shot at the full bound (15%) — sticky monitors make a
   single deep search complete for "violated within T"
4. PODEM single-shot  (remainder)

The first conclusive stage (violated with a witness, or proved through the
full bound) wins; otherwise the result is ``unknown`` at the deepest bound
any stage cleared, the "aborted fault" outcome of a production tool.
"""

from __future__ import annotations

import time

from repro.atpg.podem_seq import PodemJustifier
from repro.obs.tracer import get_tracer
from repro.atpg.sequential import (
    PROVED,
    JustifyResult,
    SequentialJustifier,
    UNKNOWN_STATUS,
    VIOLATED,
)


class PortfolioJustifier:
    """Staged backward + PODEM justification under one budget."""

    STAGES = (
        ("backward", "ramp", 0.30),
        ("podem", "ramp", 0.45),
        ("backward", "single", 0.15),
        ("podem", "single", 0.10),
    )

    def __init__(self, netlist, objective_net, property_name="", use_coi=True,
                 pinned_inputs=None):
        self.netlist = netlist
        self.objective_net = objective_net
        self.property_name = property_name
        self.use_coi = use_coi
        self.pinned_inputs = pinned_inputs
        self.stage_results = []

    def _make(self, which):
        cls = SequentialJustifier if which == "backward" else PodemJustifier
        return cls(
            self.netlist,
            self.objective_net,
            property_name=self.property_name,
            use_coi=self.use_coi,
            pinned_inputs=self.pinned_inputs,
        )

    def check(self, max_cycles, time_budget=None, measure_memory=False,
              start_cycle=1, backtrack_budget=None):
        start = time.perf_counter()
        start_cycle = max(start_cycle, 1)  # cycles are 1-based
        if max_cycles < start_cycle:
            # empty requested range: nothing to justify, nothing proved —
            # the single-shot stage must not "prove" a frame the caller
            # never asked about (it overrides start_cycle by design)
            self.stage_results = []
            return JustifyResult(
                status=UNKNOWN_STATUS,
                bound=0,
                elapsed=time.perf_counter() - start,
                property_name=self.property_name,
            )
        if time_budget is None:
            time_budget = 60.0
        deepest = 0
        self.stage_results = []
        for which, mode, share in self.STAGES:
            if time_budget - (time.perf_counter() - start) <= 0:
                break
            engine = self._make(which)
            # measure the stage budget *after* engine construction: SCOAP
            # and cone computation are not free, and charging them to the
            # stage would let the overall budget overshoot
            remaining = time_budget - (time.perf_counter() - start)
            if remaining <= 0:
                break
            stage_budget = min(remaining, time_budget * share)
            kwargs = {
                "time_budget": stage_budget,
                "measure_memory": measure_memory,
                "backtrack_budget": backtrack_budget,
            }
            if mode == "single":
                kwargs["start_cycle"] = max_cycles
            else:
                kwargs["start_cycle"] = start_cycle
            tracer = get_tracer()
            with tracer.span(
                "atpg.stage", engine=which, mode=mode,
                budget=round(stage_budget, 3),
            ) as stage_extra:
                result = engine.check(max_cycles, **kwargs)
                stage_extra.update(status=result.status, bound=result.bound)
            self.stage_results.append((which, mode, result))
            if result.status == VIOLATED:
                result.elapsed = time.perf_counter() - start
                return result
            if result.status == PROVED:
                # conclusive in either mode: a ramp proof walked every
                # bound, and a single-shot proof at the full bound covers
                # all earlier cycles because the monitors are sticky
                result.elapsed = time.perf_counter() - start
                return result
            if mode == "ramp":
                deepest = max(deepest, result.bound)
        # no stage concluded: report the deepest cleanly-proved bound
        last = self.stage_results[-1][2] if self.stage_results else None
        if last is None:
            # budget spent before any stage could start (e.g. a zero
            # time_budget): still a partial verdict, never an exception
            return JustifyResult(
                status=UNKNOWN_STATUS,
                bound=0,
                elapsed=time.perf_counter() - start,
                property_name=self.property_name,
            )
        last.status = UNKNOWN_STATUS
        last.bound = deepest
        last.elapsed = time.perf_counter() - start
        return last
