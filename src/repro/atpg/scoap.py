"""SCOAP testability measures (Goldstein 1979).

Controllability ``CC0(n)`` / ``CC1(n)`` estimates how many line assignments
it takes to force net ``n`` to 0 / 1; observability ``CO(n)`` estimates the
cost of propagating ``n`` to an output. The ATPG engines use these to order
backtrace choices — the structural guidance the paper credits for ATPG
"efficiently balancing depth-first and breadth-first searches" (footnote 3).

Sequential nets are handled Bellman-Ford style: a flop's Q costs its D plus
one (a clock cycle), iterated to a fixpoint, so costs are finite even
through state-holding loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.cells import Kind
from repro.netlist.traversal import fanout_map, topological_cells

INF = float("inf")


@dataclass
class Scoap:
    """Controllability/observability tables indexed by net id."""

    cc0: dict
    cc1: dict
    co: dict

    def cost(self, net, value):
        """Controllability of driving ``net`` to ``value``."""
        return self.cc1[net] if value else self.cc0[net]


def _cell_controllability(kind, ins, cc0, cc1):
    """(cc0, cc1) of a cell's output from its input costs."""
    if kind is Kind.AND:
        zero = min(cc0[i] for i in ins) + 1
        one = sum(cc1[i] for i in ins) + 1
        return zero, one
    if kind is Kind.OR:
        zero = sum(cc0[i] for i in ins) + 1
        one = min(cc1[i] for i in ins) + 1
        return zero, one
    if kind is Kind.NAND:
        zero, one = _cell_controllability(Kind.AND, ins, cc0, cc1)
        return one, zero
    if kind is Kind.NOR:
        zero, one = _cell_controllability(Kind.OR, ins, cc0, cc1)
        return one, zero
    if kind is Kind.NOT:
        return cc1[ins[0]] + 1, cc0[ins[0]] + 1
    if kind is Kind.BUF:
        return cc0[ins[0]] + 1, cc1[ins[0]] + 1
    if kind in (Kind.XOR, Kind.XNOR):
        # Fold pairwise: cost of parity p is the cheapest input-parity split.
        zero, one = cc0[ins[0]], cc1[ins[0]]
        for net in ins[1:]:
            new_zero = min(zero + cc0[net], one + cc1[net]) + 1
            new_one = min(zero + cc1[net], one + cc0[net]) + 1
            zero, one = new_zero, new_one
        if kind is Kind.XNOR:
            zero, one = one, zero
        return zero, one
    if kind is Kind.MUX:
        sel, d0, d1 = ins
        zero = min(cc0[sel] + cc0[d0], cc1[sel] + cc0[d1]) + 1
        one = min(cc0[sel] + cc1[d0], cc1[sel] + cc1[d1]) + 1
        return zero, one
    raise ValueError("unknown kind {!r}".format(kind))  # pragma: no cover


def compute_scoap(netlist, max_passes=None):
    """Compute SCOAP measures for every net of a netlist."""
    order = topological_cells(netlist)
    cc0 = {net: INF for net in range(netlist.num_nets)}
    cc1 = {net: INF for net in range(netlist.num_nets)}
    cc0[0] = 0.0
    cc1[0] = INF  # const0 can never be 1
    cc1[1] = 0.0
    cc0[1] = INF
    for nets in netlist.inputs.values():
        for net in nets:
            cc0[net] = cc1[net] = 1.0
    if max_passes is None:
        max_passes = len(netlist.flops) + 2

    for _ in range(max_passes):
        changed = False
        for flop in netlist.flops:
            for table in (cc0, cc1):
                relaxed = table[flop.d] + 1
                if relaxed < table[flop.q]:
                    table[flop.q] = relaxed
                    changed = True
            # A resettable flop can always present its init value.
            init_table = cc1 if flop.init else cc0
            if 1.0 < init_table[flop.q]:
                init_table[flop.q] = 1.0
                changed = True
        for idx in order:
            cell = netlist.cells[idx]
            zero, one = _cell_controllability(cell.kind, cell.inputs, cc0, cc1)
            if zero < cc0[cell.output]:
                cc0[cell.output] = zero
                changed = True
            if one < cc1[cell.output]:
                cc1[cell.output] = one
                changed = True
        if not changed:
            break

    co = _observability(netlist, cc0, cc1, max_passes)
    return Scoap(cc0=cc0, cc1=cc1, co=co)


def _observability(netlist, cc0, cc1, max_passes):
    co = {net: INF for net in range(netlist.num_nets)}
    for nets in netlist.outputs.values():
        for net in nets:
            co[net] = 0.0
    fanout = fanout_map(netlist)
    order = list(reversed(topological_cells(netlist)))
    for _ in range(max_passes):
        changed = False
        for idx in order:
            cell = netlist.cells[idx]
            out_co = co[cell.output]
            if out_co is INF:
                continue
            for pos, net in enumerate(cell.inputs):
                side = _side_cost(cell, pos, cc0, cc1)
                relaxed = out_co + side + 1
                if relaxed < co[net]:
                    co[net] = relaxed
                    changed = True
        for flop in netlist.flops:
            relaxed = co[flop.q] + 1
            if relaxed < co[flop.d]:
                co[flop.d] = relaxed
                changed = True
        # propagate through fanout stems (a net observable through any branch)
        for net, consumers in fanout.items():
            best = co[net]
            for kind, payload in consumers:
                if kind == "output":
                    best = min(best, 0.0)
            if best < co[net]:
                co[net] = best
                changed = True
        if not changed:
            break
    return co


def _side_cost(cell, pos, cc0, cc1):
    """Cost of setting a cell's *other* inputs to non-controlling values."""
    kind = cell.kind
    others = [n for i, n in enumerate(cell.inputs) if i != pos]
    if kind in (Kind.AND, Kind.NAND):
        return sum(cc1[n] for n in others)
    if kind in (Kind.OR, Kind.NOR):
        return sum(cc0[n] for n in others)
    if kind in (Kind.NOT, Kind.BUF):
        return 0.0
    if kind in (Kind.XOR, Kind.XNOR):
        return sum(min(cc0[n], cc1[n]) for n in others)
    if kind is Kind.MUX:
        sel, d0, d1 = cell.inputs
        if pos == 0:  # observing sel requires d0 != d1
            return min(cc0[d0] + cc1[d1], cc1[d0] + cc0[d1])
        if pos == 1:  # observing d0 requires sel = 0
            return cc0[sel]
        return cc1[sel]  # observing d1 requires sel = 1
    raise ValueError("unknown kind {!r}".format(kind))  # pragma: no cover
