"""Sequential justification engine — the ATPG half of the paper.

Section 3.2 repurposes a *full-sequential ATPG* for property checking: the
property is synthesized as a monitor circuit appended to the design, and the
tool is asked to generate a test that sets the monitor output to 1 (the
stuck-at-1 formulation of Abraham & Vedula [26]: a test for the s-a-1 fault
at the monitor output must drive the line to 0 ... and conversely a
*justification* of 1 is a property violation). Unlike BMC's translation to
CNF, ATPG searches the circuit *structure* directly, guided by testability
measures — which is why the paper observes it unrolls ~3x more clock cycles
than BMC in the same time at an order of magnitude less memory.

:class:`SequentialJustifier` implements that search: a backward
line-justification over time frames (decisions on gate choices, forced
implications chained immediately) with

* choice ordering by SCOAP controllability,
* a trail/undo stack for chronological backtracking,
* reconvergence consistency via the shared assignment store,
* wall-clock and backtrack budgets (for the "max cycles within budget"
  experiments of Tables 1 and 3).

The justified cube is turned into a primary-input witness; unassigned
inputs default to 0 — by construction the objective holds for *any* value
of the unassigned inputs.
"""

from __future__ import annotations

import random
import sys
import time
import tracemalloc
from dataclasses import dataclass, field

from repro.atpg.scoap import compute_scoap
from repro.bmc.witness import Witness
from repro.netlist.cells import Kind
from repro.netlist.traversal import cone_of_influence
from repro.obs.tracer import get_tracer

VIOLATED = "violated"
PROVED = "proved"
UNKNOWN_STATUS = "unknown"


class _BudgetExhausted(Exception):
    """Raised inside the search; ``kind`` is "time" or "backtracks"."""

    def __init__(self, kind):
        self.kind = kind
        super().__init__(kind)


def _eval3(cell, vals):
    """3-valued (0/1/None) evaluation of one cell over a value array."""
    kind = cell.kind
    ins = cell.inputs
    if kind is Kind.AND or kind is Kind.NAND:
        out = 1
        for net in ins:
            v = vals[net]
            if v == 0:
                out = 0
                break
            if v is None:
                out = None
        if out is None:
            return None
        return out ^ 1 if kind is Kind.NAND else out
    if kind is Kind.OR or kind is Kind.NOR:
        out = 0
        for net in ins:
            v = vals[net]
            if v == 1:
                out = 1
                break
            if v is None:
                out = None
        if out is None:
            return None
        return out ^ 1 if kind is Kind.NOR else out
    if kind is Kind.XOR or kind is Kind.XNOR:
        out = 0
        for net in ins:
            v = vals[net]
            if v is None:
                return None
            out ^= v
        return out ^ 1 if kind is Kind.XNOR else out
    if kind is Kind.NOT:
        v = vals[ins[0]]
        return None if v is None else v ^ 1
    if kind is Kind.BUF:
        return vals[ins[0]]
    if kind is Kind.MUX:
        sel = vals[ins[0]]
        d0 = vals[ins[1]]
        d1 = vals[ins[2]]
        if sel == 0:
            return d0
        if sel == 1:
            return d1
        if d0 is not None and d0 == d1:
            return d0
        return None
    raise ValueError("unknown kind {!r}".format(kind))  # pragma: no cover


@dataclass
class JustifyResult:
    """Outcome of a sequential-ATPG property check."""

    status: str  # violated / proved / unknown
    bound: int
    witness: Witness | None = None
    elapsed: float = 0.0
    peak_memory: int = 0
    backtracks: int = 0
    decisions: int = 0
    assignments: int = 0
    cone: tuple = (0, 0, 0)
    property_name: str = ""
    per_bound_elapsed: list = field(default_factory=list)

    @property
    def detected(self):
        return self.status == VIOLATED

    def summary(self):
        return (
            "[{}] {} at bound {} ({:.2f}s, {} backtracks, {} decisions, "
            "cone={})".format(
                self.property_name or "atpg",
                self.status,
                self.bound,
                self.elapsed,
                self.backtracks,
                self.decisions,
                self.cone,
            )
        )


class SequentialJustifier:
    """Justifies ``objective_net == 1`` within a bounded number of cycles."""

    def __init__(self, netlist, objective_net, property_name="", use_coi=True,
                 pinned_inputs=None):
        self.netlist = netlist
        self.objective_net = objective_net
        self.property_name = property_name
        self.pinned_inputs = dict(pinned_inputs or {})
        self._pinned_bits = {}
        for name, word in self.pinned_inputs.items():
            for bit, net in enumerate(netlist.inputs[name]):
                self._pinned_bits[net] = (word >> bit) & 1
        if use_coi:
            cone, cell_idxs, flop_idxs = cone_of_influence(
                netlist, [objective_net]
            )
            self._cone_counts = (
                len(cell_idxs),
                len(flop_idxs),
                len(cone & netlist.input_net_set()),
            )
        else:
            self._cone_counts = (
                len(netlist.cells),
                len(netlist.flops),
                sum(len(v) for v in netlist.inputs.values()),
            )
        self._scoap = compute_scoap(netlist)
        self._input_bit = {}
        for name, nets in netlist.inputs.items():
            for bit, net in enumerate(nets):
                self._input_bit[net] = (name, bit)
        # search state
        self._assign = {}
        self._trail = []
        self._pending = {}
        self._failed_cubes = set()
        self._restart_limit = None
        self._rng = random.Random(0)
        self._jitter = 0.0
        # Per-frame ternary constant propagation: nets whose value is
        # *implied* by the reset state and the pinned inputs regardless of
        # the free inputs. Justification consults this first — requirements
        # on determined nets never branch (the sequential-learning analogue
        # of constant propagation across time frames).
        self._tern = []
        from repro.netlist.traversal import topological_cells

        self._topo_cells = [
            netlist.cells[i] for i in topological_cells(netlist)
        ]
        self._steps = 0
        self._next_check = 0
        self._deadline = None
        self._backtrack_budget = None
        self.backtracks = 0
        self.decisions = 0

    # ------------------------------------------------------------------ API

    def check(self, max_cycles, time_budget=None, backtrack_budget=None,
              measure_memory=False, start_cycle=1):
        """Search frames ``1..max_cycles`` for a justification of the objective."""
        start_cycle = max(start_cycle, 1)  # cycles are 1-based
        tracer = get_tracer()
        if not tracer.enabled:
            return self._check(max_cycles, time_budget, backtrack_budget,
                               measure_memory, start_cycle, tracer)
        with tracer.span(
            "atpg.check",
            engine="backward",
            property=self.property_name,
            max_cycles=max_cycles,
            start_cycle=start_cycle,
        ) as extra:
            result = self._check(max_cycles, time_budget, backtrack_budget,
                                 measure_memory, start_cycle, tracer)
            extra.update(
                status=result.status,
                bound=result.bound,
                backtracks=result.backtracks,
            )
            tracer.metrics.counter("atpg.checks").inc()
            tracer.metrics.counter("atpg.status." + result.status).inc()
            tracer.metrics.counter("atpg.backtracks").inc(result.backtracks)
        return result

    def _check(self, max_cycles, time_budget, backtrack_budget,
               measure_memory, start_cycle, tracer):
        start = time.perf_counter()
        self._deadline = None if time_budget is None else start + time_budget
        self._backtrack_budget = backtrack_budget
        self.backtracks = 0
        self.decisions = 0
        snapshotting = False
        if measure_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            snapshotting = True
        peak = 0
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 1_000_000))
        try:
            if measure_memory:
                tracemalloc.reset_peak()
            # an empty bound range proves nothing — never report a
            # vacuous "proved at bound 0" (see BmcEngine.check)
            status = PROVED if max_cycles >= start_cycle else UNKNOWN_STATUS
            bound = 0
            witness = None
            per_bound = []
            for t in range(start_cycle, max_cycles + 1):
                bound_start = time.perf_counter()
                stop = False
                with tracer.span("atpg.bound", t=t) as bound_extra:
                    with tracer.span("atpg.encode", t=t):
                        self._extend_ternary(t)
                    if (
                        self._deadline is not None
                        and time.perf_counter() > self._deadline
                    ):
                        # ternary constant propagation spent the budget:
                        # stop before starting a search the deadline
                        # already forbids
                        status = UNKNOWN_STATUS
                        per_bound.append(time.perf_counter() - bound_start)
                        bound_extra["outcome"] = "budget"
                        break
                    with tracer.span("atpg.search", t=t):
                        outcome = self._search_bound(t)
                    per_bound.append(time.perf_counter() - bound_start)
                    bound_extra["outcome"] = outcome
                    if outcome == "budget":
                        status = UNKNOWN_STATUS
                        stop = True
                    elif outcome == "found":
                        status = VIOLATED
                        bound = t
                        witness = Witness(
                            inputs=self._extract_inputs(t),
                            violation_cycle=t - 1,
                            property_name=self.property_name,
                        )
                        stop = True
                    else:
                        bound = t
                if stop:
                    break
            if measure_memory:
                _current, peak = tracemalloc.get_traced_memory()
        finally:
            sys.setrecursionlimit(old_limit)
            if snapshotting:
                tracemalloc.stop()
        return JustifyResult(
            status=status,
            bound=bound,
            witness=witness,
            elapsed=time.perf_counter() - start,
            peak_memory=peak,
            backtracks=self.backtracks,
            decisions=self.decisions,
            assignments=len(self._assign),
            cone=self._cone_counts,
            property_name=self.property_name,
            per_bound_elapsed=per_bound,
        )

    # ------------------------------------------------------------- restarts

    def _search_bound(self, t):
        """Search one bound with randomized restarts.

        Plain chronological backtracking can drown re-refuting the same
        infeasible sub-goal under many contexts (no conflict-driven
        learning); like a CDCL solver, we restart with a jittered choice
        order and a geometrically growing backtrack budget. The failed-cube
        memo survives restarts, so work is not fully repeated, and the final
        attempt runs unbounded — the procedure stays complete.

        Returns "found", "exhausted" (proved for this bound) or "budget".
        """
        attempt = 0
        base = 4000
        while True:
            self._assign = {}
            self._trail = []
            self._pending = {f: [] for f in range(t)}
            self._pending[t - 1].append((self.objective_net, 1))
            if base * (4 ** attempt) <= 16_000_000:
                self._restart_limit = self.backtracks + base * (4 ** attempt)
            else:
                self._restart_limit = None  # final attempt: unbounded
            self._rng = random.Random(attempt * 7919 + 13)
            self._jitter = 0.0 if attempt == 0 else 1.0
            try:
                found = self._process_frame(t - 1)
            except _BudgetExhausted as exhausted:
                if exhausted.kind == "restart":
                    attempt += 1
                    continue
                return "budget"
            return "found" if found else "exhausted"

    # -------------------------------------------------------------- ternary

    def _extend_ternary(self, frames):
        netlist = self.netlist
        while len(self._tern) < frames:
            t = len(self._tern)
            vals = [None] * netlist.num_nets
            vals[0] = 0
            vals[1] = 1
            for net, bit in self._pinned_bits.items():
                vals[net] = bit
            if t == 0:
                for flop in netlist.flops:
                    vals[flop.q] = flop.init
            else:
                prev = self._tern[t - 1]
                for flop in netlist.flops:
                    vals[flop.q] = prev[flop.d]
            for cell in self._topo_cells:
                vals[cell.output] = _eval3(cell, vals)
            self._tern.append(vals)

    # ----------------------------------------------------------- search core

    def _budget_tick(self):
        self._steps += 1
        if self._steps < self._next_check:
            return
        self._next_check = self._steps + 2048
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise _BudgetExhausted("time")
        if (
            self._backtrack_budget is not None
            and self.backtracks > self._backtrack_budget
        ):
            raise _BudgetExhausted("backtracks")
        if (
            self._restart_limit is not None
            and self.backtracks > self._restart_limit
        ):
            raise _BudgetExhausted("restart")

    def _set(self, key, value):
        self._assign[key] = value
        self._trail.append(key)

    def _undo_to(self, mark):
        trail = self._trail
        assign = self._assign
        while len(trail) > mark:
            entry = trail.pop()
            if entry.__class__ is tuple and entry[0] == "pend":
                self._pending[entry[1]].pop()
            else:
                del assign[entry]

    # Frame-at-a-time processing: all requirements of a frame are justified
    # together inside its combinational logic before descending to the
    # previous frame. This keeps conflicts between state bits (e.g. the bits
    # of a trigger counter) local to one frame instead of being rediscovered
    # exponentially across the whole unrolled depth — the structural
    # equivalent of reverse-time-frame processing in sequential ATPG.

    def _process_frame(self, frame):
        # State-cube learning: whether a requirement cube is justifiable
        # within `frame` remaining clock cycles depends only on (cube,
        # frame) — frames above the cut contribute nothing but the cube
        # itself. Failed cubes are pruned forever, across bounds too.
        key = (frozenset(self._pending[frame]), frame)
        if key in self._failed_cubes:
            self.backtracks += 1
            return False
        obligations = self._pending[frame]

        def done():
            if frame == 0:
                return True
            return self._process_frame(frame - 1)

        ok = self._justify_pending(obligations, 0, frame, done)
        if not ok:
            self._failed_cubes.add(key)
        return ok

    def _justify_pending(self, obligations, index, frame, k):
        if index >= len(obligations):
            return k()
        net, value = obligations[index]
        return self._justify(
            net,
            frame,
            value,
            lambda: self._justify_pending(obligations, index + 1, frame, k),
        )

    def _justify(self, net, frame, value, k):
        """Try to justify ``net == value`` at ``frame``; call ``k`` on success.

        Returns True iff a consistent extension satisfying ``k`` exists.
        Leaves the assignment extended on success and unchanged on failure.
        Flop requirements are *deferred* to the previous frame's pending
        list rather than recursed into (see :meth:`_process_frame`).
        """
        self._budget_tick()
        implied = self._tern[frame][net]
        if implied is not None:
            return implied == value and k()
        key = (net, frame)
        existing = self._assign.get(key)
        if existing is not None:
            return existing == value and k()
        kind, payload = self.netlist.driver_of(net)
        if kind == "input":
            mark = len(self._trail)
            self._set(key, value)
            if k():
                return True
            self._undo_to(mark)
            return False
        if kind == "flop":
            flop = self.netlist.flops[payload]
            if frame == 0:
                return flop.init == value and k()
            mark = len(self._trail)
            self._set(key, value)
            self._pending[frame - 1].append((flop.d, value))
            self._trail.append(("pend", frame - 1))
            if k():
                return True
            self._undo_to(mark)
            return False
        # combinational cell
        cell = self.netlist.cells[payload]
        mark = len(self._trail)
        self._set(key, value)
        if self._justify_cell(cell, frame, value, k):
            return True
        self._undo_to(mark)
        return False

    def _justify_cell(self, cell, frame, value, k):
        kind = cell.kind
        ins = cell.inputs
        if kind is Kind.BUF:
            return self._justify(ins[0], frame, value, k)
        if kind is Kind.NOT:
            return self._justify(ins[0], frame, 1 - value, k)
        if kind is Kind.NAND:
            return self._justify_and(ins, frame, 1 - value, k)
        if kind is Kind.NOR:
            return self._justify_or(ins, frame, 1 - value, k)
        if kind is Kind.AND:
            return self._justify_and(ins, frame, value, k)
        if kind is Kind.OR:
            return self._justify_or(ins, frame, value, k)
        if kind is Kind.XOR:
            return self._justify_xor(ins, frame, value, k)
        if kind is Kind.XNOR:
            return self._justify_xor(ins, frame, 1 - value, k)
        if kind is Kind.MUX:
            return self._justify_mux(ins, frame, value, k)
        raise ValueError("unknown kind {!r}".format(kind))  # pragma: no cover

    def _known_value(self, net, frame):
        """Implied (ternary) or assigned value of a net, else None."""
        implied = self._tern[frame][net]
        if implied is not None:
            return implied
        return self._assign.get((net, frame))

    def _choice_key(self, net, frame, value, table):
        """Order choices: already-satisfied first, contradicted last, then
        by controllability (jittered on restart attempts)."""
        known = self._known_value(net, frame)
        if known is not None:
            return (0.0, 0.0) if known == value else (float("inf"), 0.0)
        cost = table.get(net, 1.0)
        if self._jitter:
            cost *= self._rng.uniform(0.25, 4.0)
        return (1.0, cost)

    def _justify_and(self, ins, frame, value, k):
        if value == 1:
            return self._justify_all(ins, 0, frame, 1, k)
        # choose one input to be 0, cheapest controllability first
        cc0 = self._scoap.cc0
        order = sorted(ins, key=lambda n: self._choice_key(n, frame, 0, cc0))
        return self._try_choices(
            [((net, frame, 0),) for net in order], k
        )

    def _justify_or(self, ins, frame, value, k):
        if value == 0:
            return self._justify_all(ins, 0, frame, 0, k)
        cc1 = self._scoap.cc1
        order = sorted(ins, key=lambda n: self._choice_key(n, frame, 1, cc1))
        return self._try_choices(
            [((net, frame, 1),) for net in order], k
        )

    def _justify_all(self, ins, index, frame, value, k):
        """All of ``ins[index:]`` must equal ``value`` at ``frame``."""
        if index == len(ins):
            return k()
        return self._justify(
            ins[index],
            frame,
            value,
            lambda: self._justify_all(ins, index + 1, frame, value, k),
        )

    def _justify_xor(self, ins, frame, parity, k):
        if len(ins) == 1:
            return self._justify(ins[0], frame, parity, k)
        first, rest = ins[0], ins[1:]
        existing = self._known_value(first, frame)
        if existing is not None:
            # no branching: the first input is already decided
            return self._justify(
                first,
                frame,
                existing,
                lambda: self._justify_xor(rest, frame, parity ^ existing, k),
            )
        cc0 = self._scoap.cc0.get(first, 1.0)
        cc1 = self._scoap.cc1.get(first, 1.0)
        options = [(0, parity), (1, parity ^ 1)]
        if (cc1 < cc0) if not self._jitter else self._rng.random() < 0.5:
            options.reverse()
        self.decisions += 1
        for first_value, rest_parity in options:
            mark = len(self._trail)
            if self._justify(
                first,
                frame,
                first_value,
                lambda rp=rest_parity: self._justify_xor(rest, frame, rp, k),
            ):
                return True
            self._undo_to(mark)
            self.backtracks += 1
        return False

    def _justify_mux(self, ins, frame, value, k):
        sel, d0, d1 = ins
        sel_existing = self._known_value(sel, frame)
        if sel_existing is not None:
            # select line already decided: no branching, but still record
            # the requirement on sel for assignment consistency
            data = d1 if sel_existing else d0
            return self._justify(
                sel,
                frame,
                sel_existing,
                lambda: self._justify(data, frame, value, k),
            )
        cost0 = self._scoap.cc0.get(sel, 1.0) + self._scoap.cost(d0, value)
        cost1 = self._scoap.cc1.get(sel, 1.0) + self._scoap.cost(d1, value)
        if self._jitter:
            cost0 *= self._rng.uniform(0.25, 4.0)
            cost1 *= self._rng.uniform(0.25, 4.0)
        d0_existing = self._known_value(d0, frame)
        d1_existing = self._known_value(d1, frame)
        if d0_existing == value:
            cost0 = -1.0
        elif d0_existing is not None:
            cost0 = float("inf")
        if d1_existing == value:
            cost1 = -1.0
        elif d1_existing is not None:
            cost1 = float("inf")
        choices = [
            ((sel, frame, 0), (d0, frame, value)),
            ((sel, frame, 1), (d1, frame, value)),
        ]
        if cost1 < cost0:
            choices.reverse()
        return self._try_choices(choices, k)

    def _try_choices(self, choices, k):
        """Try alternative obligation tuples; backtrack between them."""
        self.decisions += 1
        for obligations in choices:
            mark = len(self._trail)
            if self._justify_obligations(obligations, 0, k):
                return True
            self._undo_to(mark)
            self.backtracks += 1
        return False

    def _justify_obligations(self, obligations, index, k):
        if index == len(obligations):
            return k()
        net, frame, value = obligations[index]
        return self._justify(
            net,
            frame,
            value,
            lambda: self._justify_obligations(obligations, index + 1, k),
        )

    # ------------------------------------------------------------ extraction

    def _extract_inputs(self, frames):
        sequence = [
            {
                name: self.pinned_inputs.get(name, 0)
                for name in self.netlist.inputs
            }
            for _ in range(frames)
        ]
        for (net, frame), value in self._assign.items():
            if value and 0 <= frame < frames:
                entry = self._input_bit.get(net)
                if entry is not None:
                    name, bit = entry
                    sequence[frame][name] |= 1 << bit
        return sequence


def check_objective(netlist, objective_net, max_cycles, **kwargs):
    """One-shot convenience wrapper around :class:`SequentialJustifier`."""
    property_name = kwargs.pop("property_name", "")
    use_coi = kwargs.pop("use_coi", True)
    pinned_inputs = kwargs.pop("pinned_inputs", None)
    justifier = SequentialJustifier(
        netlist,
        objective_net,
        property_name=property_name,
        use_coi=use_coi,
        pinned_inputs=pinned_inputs,
    )
    return justifier.check(max_cycles, **kwargs)
