"""Stuck-at test-set generation: PODEM + fault-simulation compaction.

The classical ATPG production flow, and the machinery behind the paper's
Section 4.1 argument — "such faults are revealed during functional testing"
— made concrete: generate a compact test set for a design's collapsed
stuck-at fault list, then measure the coverage any given functional suite
achieves.

Flow (per undetected fault, hardest first by SCOAP observability):

1. PODEM generates a test cube for the fault (combinational view: flop Qs
   are controllable, flop Ds observable — single-time-frame tests);
2. the pattern is *fault-simulated* against every remaining fault and all
   collaterally-detected faults are dropped (the standard compaction that
   keeps test sets small);
3. aborted faults are retried once with a larger backtrack budget and
   otherwise reported, untestable faults are proven redundant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.atpg.faults import collapse_faults
from repro.atpg.podem import ABORTED, TESTABLE, UNTESTABLE, CombPodem
from repro.atpg.scoap import compute_scoap
from repro.sim.engine import CombEvaluator


@dataclass
class GeneratedTests:
    """Result of a test-generation run."""

    patterns: list = field(default_factory=list)  # dict: net -> bit
    detected: dict = field(default_factory=dict)  # Fault -> pattern index
    untestable: list = field(default_factory=list)
    aborted: list = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def coverage(self):
        total = (
            len(self.detected) + len(self.untestable) + len(self.aborted)
        )
        covered = len(self.detected) + len(self.untestable)
        return covered / total if total else 1.0

    def summary(self):
        return (
            "{} patterns detect {} faults; {} untestable, {} aborted "
            "(coverage {:.1%}, {:.2f}s)".format(
                len(self.patterns),
                len(self.detected),
                len(self.untestable),
                len(self.aborted),
                self.coverage,
                self.elapsed,
            )
        )


class _SingleFrameFaultSim:
    """Bit-parallel single-time-frame fault simulation for compaction."""

    def __init__(self, netlist, batch=63):
        self.netlist = netlist
        self.batch = batch
        self.controllable = sorted(
            netlist.input_net_set() | netlist.flop_q_set()
        )
        observable = set()
        for nets in netlist.outputs.values():
            observable.update(nets)
        observable.update(flop.d for flop in netlist.flops)
        self.observable = sorted(observable)

    def detected_by(self, pattern, faults):
        """Subset of ``faults`` the pattern detects (single frame)."""
        hits = []
        remaining = list(faults)
        while remaining:
            chunk = remaining[: self.batch]
            remaining = remaining[self.batch :]
            hits.extend(self._chunk(pattern, chunk))
        return hits

    def _chunk(self, pattern, chunk):
        lanes = len(chunk) + 1
        evaluator = CombEvaluator(self.netlist, lanes=lanes)
        values = evaluator.fresh_values()
        mask = evaluator.mask
        for net in self.controllable:
            values[net] = mask if pattern.get(net, 0) else 0
        inject = {}
        for k, fault in enumerate(chunk):
            lane_bit = 1 << (k + 1)
            masks = inject.setdefault(fault.net, [0, 0])
            masks[1 if fault.stuck_at else 0] |= lane_bit

        def apply_injection(net):
            masks = inject.get(net)
            if masks is not None:
                values[net] = (values[net] & ~masks[0]) | masks[1]

        for net in self.controllable:
            apply_injection(net)
        for kind, ins, out in evaluator._program:
            from repro.netlist.cells import Cell

            values[out] = Cell(kind, ins, out).eval(values) & mask
            apply_injection(out)
        hits = []
        for k, fault in enumerate(chunk):
            for net in self.observable:
                word = values[net]
                good = word & 1
                faulty = (word >> (k + 1)) & 1
                if good != faulty:
                    hits.append(fault)
                    break
        return hits


def generate_tests(netlist, faults=None, max_backtracks=2000,
                   retry_backtracks=20000, time_budget=None):
    """Generate a compact single-frame stuck-at test set."""
    start = time.perf_counter()
    if faults is None:
        faults = collapse_faults(netlist)
    scoap = compute_scoap(netlist)
    pending = sorted(
        faults,
        key=lambda f: -scoap.co.get(f.net, 0.0)
        if scoap.co.get(f.net) != float("inf")
        else 0.0,
    )
    simulator = _SingleFrameFaultSim(netlist)
    result = GeneratedTests()
    podem = CombPodem(netlist, max_backtracks=max_backtracks)
    retry = CombPodem(netlist, max_backtracks=retry_backtracks)
    while pending:
        if time_budget is not None and (
            time.perf_counter() - start > time_budget
        ):
            result.aborted.extend(pending)
            break
        fault = pending.pop(0)
        outcome = podem.generate_test(fault)
        if outcome.status == ABORTED:
            outcome = retry.generate_test(fault)
        if outcome.status == UNTESTABLE:
            result.untestable.append(fault)
            continue
        if outcome.status != TESTABLE:
            result.aborted.append(fault)
            continue
        index = len(result.patterns)
        result.patterns.append(outcome.test)
        result.detected[fault] = index
        # compaction: drop everything else this pattern also catches
        collateral = simulator.detected_by(outcome.test, pending)
        for hit in collateral:
            result.detected[hit] = index
        hit_set = set(collateral)
        pending = [f for f in pending if f not in hit_set]
    result.elapsed = time.perf_counter() - start
    return result
