"""Multi-valued algebras for test generation.

* The 3-valued algebra ``{0, 1, X}`` (X = unassigned/unknown) drives the
  justification engines; it is represented as Python ``0``, ``1``, ``None``.
* The 5-valued Roth/D-calculus ``{0, 1, X, D, D'}`` drives combinational
  PODEM: ``D`` means "1 in the good circuit, 0 in the faulty circuit" and
  ``D'`` the reverse, letting one evaluation track both circuits at once.

Values are small ints; tables are precomputed for the 2-input forms and
reduced n-ary by folding.
"""

from __future__ import annotations

ZERO = 0
ONE = 1
X = 2
D = 3  # good 1 / faulty 0
DBAR = 4  # good 0 / faulty 1

NAMES = {ZERO: "0", ONE: "1", X: "X", D: "D", DBAR: "D'"}

# Decompose into (good, faulty) pairs; X maps to None components.
_GOOD = {ZERO: 0, ONE: 1, X: None, D: 1, DBAR: 0}
_FAULTY = {ZERO: 0, ONE: 1, X: None, D: 0, DBAR: 1}


def _compose(good, faulty):
    if good is None or faulty is None:
        return X
    if good == faulty:
        return ONE if good else ZERO
    return D if good else DBAR


def _and2_bool(a, b):
    if a == 0 or b == 0:
        return 0
    if a is None or b is None:
        return None
    return 1


def _or2_bool(a, b):
    if a == 1 or b == 1:
        return 1
    if a is None or b is None:
        return None
    return 0


def _xor2_bool(a, b):
    if a is None or b is None:
        return None
    return a ^ b


def and5(a, b):
    return _compose(
        _and2_bool(_GOOD[a], _GOOD[b]), _and2_bool(_FAULTY[a], _FAULTY[b])
    )


def or5(a, b):
    return _compose(
        _or2_bool(_GOOD[a], _GOOD[b]), _or2_bool(_FAULTY[a], _FAULTY[b])
    )


def xor5(a, b):
    return _compose(
        _xor2_bool(_GOOD[a], _GOOD[b]), _xor2_bool(_FAULTY[a], _FAULTY[b])
    )


def not5(a):
    good = _GOOD[a]
    faulty = _FAULTY[a]
    return _compose(
        None if good is None else 1 - good,
        None if faulty is None else 1 - faulty,
    )


def mux5(sel, d0, d1):
    sg, s_f = _GOOD[sel], _FAULTY[sel]
    g = _GOOD[d1] if sg == 1 else _GOOD[d0] if sg == 0 else None
    f = _FAULTY[d1] if s_f == 1 else _FAULTY[d0] if s_f == 0 else None
    if sg is None and _GOOD[d0] == _GOOD[d1]:
        g = _GOOD[d0]
    if s_f is None and _FAULTY[d0] == _FAULTY[d1]:
        f = _FAULTY[d0]
    return _compose(g, f)


def fold(op, values):
    acc = values[0]
    for v in values[1:]:
        acc = op(acc, v)
    return acc


def is_d_value(v):
    """True for the fault-difference values D / D'."""
    return v in (D, DBAR)


def good_value(v):
    """Good-circuit component (0/1/None)."""
    return _GOOD[v]


def faulty_value(v):
    """Faulty-circuit component (0/1/None)."""
    return _FAULTY[v]
