"""Baseline detectors (FANCI, VeriTrust) and DeTrust trigger shaping."""

from repro.baselines.detrust import (
    chunk_constants,
    split_comparator,
    wide_comparator,
)
from repro.baselines.fanci import Fanci, FanciReport, WireScore
from repro.baselines.veritrust import PinActivity, VeriTrust, VeriTrustReport

__all__ = [
    "chunk_constants",
    "split_comparator",
    "wide_comparator",
    "Fanci",
    "FanciReport",
    "WireScore",
    "PinActivity",
    "VeriTrust",
    "VeriTrustReport",
]
