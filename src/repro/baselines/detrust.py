"""DeTrust-style trigger restructuring (Zhang, Yuan, Xu — CCS'14).

DeTrust defeats FANCI by splitting a wide trigger comparison into narrow
chunks that arrive over multiple clock cycles (each comparator gate's
control values rise from 2^-128 to 2^-k), and defeats VeriTrust by making
every Trojan gate's inputs functional signals whose partial-match activity
looks like ordinary decode logic.

The Trojan constructors in :mod:`repro.designs.trojans` apply these
transformations inline; this module provides the reusable pieces plus a
generic :func:`split_comparator` used by the ablation bench that contrasts
naive and DeTrust-shaped triggers under FANCI.
"""

from __future__ import annotations

from repro.errors import PropertyError


def sequence_recognizer(circuit, matches, step, reset, name="seq"):
    """One-hot recognizer for a symbol sequence (a DeTrust trigger FSM).

    ``matches[k]`` is the 1-bit "symbol k observed" condition; a symbol is
    consumed whenever ``step`` is 1. A wrong symbol restarts the scan; the
    final stage latches ("fired"). One-hot encoding is used deliberately:
    each stage bit is a flat AND/OR of functional signals (DeTrust's
    every-gate-functional requirement) with no priority mux chains.
    """
    n = len(matches)
    stages = [
        circuit.reg("{}_s{}".format(name, k), 1, init=1 if k == 0 else 0)
        for k in range(n + 1)
    ]
    advance = [stages[k].q & matches[k] & step for k in range(n)]
    nexts = [None] * (n + 1)
    nexts[n] = stages[n].q | advance[n - 1]
    for k in range(1, n):
        nexts[k] = advance[k - 1] | (stages[k].q & ~step)
    others = circuit.any_of(*[nexts[k] for k in range(1, n + 1)])
    nexts[0] = ~others
    for k in range(n + 1):
        stages[k].drive(
            circuit.mux(
                reset, nexts[k], circuit.const(1 if k == 0 else 0, 1)
            )
        )
    return stages[n].q


def chunk_constants(constant, width, chunk_bits):
    """Split a ``width``-bit constant into LSB-first chunks."""
    if width % chunk_bits:
        raise PropertyError(
            "width {} not divisible by chunk size {}".format(width, chunk_bits)
        )
    chunks = []
    for k in range(width // chunk_bits):
        chunks.append((constant >> (k * chunk_bits)) & ((1 << chunk_bits) - 1))
    return chunks


def wide_comparator(circuit, value, constant):
    """The *naive* trigger FANCI catches: one monolithic wide AND gate.

    Returns a 1-bit BitVec that is 1 iff ``value == constant``. Control
    value of each input at the AND gate is 2^-(width-1).
    """
    bits = []
    for i in range(value.width):
        bit_net = value.nets[i]
        if (constant >> i) & 1:
            bits.append(bit_net)
        else:
            bits.append(circuit.gate("not", bit_net))
    wide = circuit.netlist.add_cell("and", bits)
    return circuit.bv([wide])


def split_comparator(circuit, value, constant, chunk_bits, step, reset,
                     name="detrust"):
    """A DeTrust serial comparator: chunked over consecutive cycles.

    Compares chunk ``k`` of ``value`` against chunk ``k`` of ``constant``
    on the ``k``-th cycle after ``reset`` last restarted the scan; the
    result latches when all chunks matched. ``step`` gates the scan
    advance (e.g. a phase strobe); pass ``circuit.true()`` for every-cycle
    scanning. Every comparator gate sees at most ``chunk_bits`` inputs, so
    its FANCI control values are at worst 2^-(chunk_bits-1).
    """
    chunks = chunk_constants(constant, value.width, chunk_bits)
    count = len(chunks)
    index_width = max(1, (count - 1).bit_length())
    index = circuit.reg("{}_index".format(name), index_width)
    matched = circuit.reg("{}_matched".format(name), 1, init=1)
    chunk_eqs = []
    for k in range(1 << index_width):
        if k < count:
            lo = k * chunk_bits
            chunk_eqs.append(
                value[lo : lo + chunk_bits].eq_const(chunks[k])
            )
        else:
            chunk_eqs.append(circuit.false())
    current = circuit.word_select(index.q, chunk_eqs)
    at_end = index.q.eq_const(count - 1)
    scanning = step & ~at_end
    index.hold_unless(
        (reset, circuit.const(0, index_width)),
        (scanning, index.q + 1),
    )
    matched.hold_unless(
        (reset, circuit.true()),
        (step & ~current, circuit.false()),
    )
    fired = circuit.reg("{}_fired".format(name), 1)
    fired.hold_unless(
        (step & at_end & matched.q & current, circuit.true()),
    )
    return fired.q
