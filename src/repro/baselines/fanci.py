"""FANCI — identification of stealthy malicious logic via Boolean
functional analysis (Waksman, Suozzo, Sethumadhavan — CCS'13).

For every wire, FANCI computes a *control value* for each input of the
wire's fan-in cone: the fraction of cone-input assignments for which
toggling that input toggles the wire. Wires whose control-value vector is
dominated by near-zero entries are "weakly affecting" — the signature of a
wide, rarely-active trigger comparator.

This implementation reproduces FANCI's practical recipe:

* fan-in cones are truncated (``max_cone_cells``) exactly as the paper
  truncates for scalability; frontier nets become pseudo-inputs,
* control values are estimated by sampling (``samples`` random cone-input
  vectors, evaluated bit-parallel), not exact truth tables,
* a wire is flagged when the **mean** or **median** of its CV vector falls
  below ``threshold``.

And it inherits FANCI's documented blind spot, which DeTrust exploits and
the paper's Table 1 relies on: a trigger split into k-bit per-cycle chunks
has per-gate control values around 2^-k, far above any usable threshold —
so the DeTrust-shaped Trojans in this repository pass, while the naive
single-cycle 128-bit comparator variant is flagged.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field

from repro.netlist.cells import Kind
from repro.netlist.traversal import topological_cells


@dataclass
class WireScore:
    """FANCI verdict for one wire."""

    net: int
    mean: float
    median: float
    cone_inputs: int

    def flagged(self, threshold, use_median=False):
        """The mean heuristic is the default: the median rule also fires on
        benign dead cone inputs (e.g. unreachable counter states), one of
        FANCI's documented false-positive modes."""
        if self.mean < threshold:
            return True
        return use_median and self.median < threshold


@dataclass
class FanciReport:
    """Outcome of a FANCI analysis over a netlist."""

    scores: dict = field(default_factory=dict)  # net -> WireScore
    threshold: float = 2 ** -10
    analyzed: int = 0
    use_median: bool = False

    @property
    def flagged_nets(self):
        return [
            net
            for net, score in self.scores.items()
            if score.flagged(self.threshold, self.use_median)
        ]

    def detects(self, trojan_nets):
        """Did FANCI flag any wire belonging to the Trojan?"""
        return bool(set(self.flagged_nets) & set(trojan_nets))

    def summary(self):
        flagged = self.flagged_nets
        return "FANCI: {} wires analyzed, {} flagged (threshold {:.2e})".format(
            self.analyzed, len(flagged), self.threshold
        )


class Fanci:
    """FANCI analyzer over the combinational view of a netlist."""

    def __init__(self, netlist, threshold=2 ** -10, samples=256,
                 max_cone_cells=200, seed=0, use_median=False):
        self.netlist = netlist
        self.threshold = threshold
        self.use_median = use_median
        self.samples = samples
        self.max_cone_cells = max_cone_cells
        self.seed = seed
        self._order_index = {}
        for position, idx in enumerate(topological_cells(netlist)):
            self._order_index[netlist.cells[idx].output] = (position, idx)

    def analyze(self, nets=None):
        """Compute control values; returns a :class:`FanciReport`.

        ``nets`` restricts the analysis (default: every cell output).
        """
        report = FanciReport(
            threshold=self.threshold, use_median=self.use_median
        )
        if nets is None:
            nets = [cell.output for cell in self.netlist.cells]
        rng = random.Random(self.seed)
        for net in nets:
            score = self._score_wire(net, rng)
            if score is not None:
                report.scores[net] = score
        report.analyzed = len(report.scores)
        return report

    # ------------------------------------------------------------ internals

    def _cone(self, net):
        """Truncated fan-in cone: (cells in topo order, frontier inputs)."""
        cells = []
        inputs = []
        seen = set()
        stack = [net]
        cell_budget = self.max_cone_cells
        picked = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            entry = self._order_index.get(current)
            if entry is None or len(picked) >= cell_budget:
                if current not in (0, 1):
                    inputs.append(current)
                continue
            _position, idx = entry
            picked.add(idx)
            cells.append(idx)
            stack.extend(self.netlist.cells[idx].inputs)
        cells.sort(key=lambda idx: self._order_index[
            self.netlist.cells[idx].output][0])
        return cells, sorted(inputs)

    def _score_wire(self, net, rng):
        cells, cone_inputs = self._cone(net)
        if not cone_inputs or not cells:
            return None
        lanes = self.samples
        mask = (1 << lanes) - 1
        base = {0: 0, 1: mask}
        for source in cone_inputs:
            base[source] = rng.getrandbits(lanes)
        reference = self._evaluate(cells, dict(base), mask)[net]
        control_values = []
        for source in cone_inputs:
            flipped = dict(base)
            flipped[source] = base[source] ^ mask
            toggled = self._evaluate(cells, flipped, mask)[net]
            diff = (reference ^ toggled) & mask
            control_values.append(bin(diff).count("1") / lanes)
        return WireScore(
            net=net,
            mean=statistics.fmean(control_values),
            median=statistics.median(control_values),
            cone_inputs=len(cone_inputs),
        )

    def _evaluate(self, cells, values, mask):
        netlist = self.netlist
        for idx in cells:
            cell = netlist.cells[idx]
            kind = cell.kind
            ins = cell.inputs
            if kind is Kind.AND:
                acc = values[ins[0]]
                for source in ins[1:]:
                    acc &= values[source]
            elif kind is Kind.OR:
                acc = values[ins[0]]
                for source in ins[1:]:
                    acc |= values[source]
            elif kind is Kind.XOR:
                acc = values[ins[0]]
                for source in ins[1:]:
                    acc ^= values[source]
            elif kind is Kind.NOT:
                acc = ~values[ins[0]] & mask
            elif kind is Kind.BUF:
                acc = values[ins[0]]
            elif kind is Kind.MUX:
                sel = values[ins[0]]
                acc = (values[ins[1]] & ~sel) | (values[ins[2]] & sel)
            elif kind is Kind.NAND:
                acc = values[ins[0]]
                for source in ins[1:]:
                    acc &= values[source]
                acc = ~acc & mask
            elif kind is Kind.NOR:
                acc = values[ins[0]]
                for source in ins[1:]:
                    acc |= values[source]
                acc = ~acc & mask
            else:  # XNOR
                acc = values[ins[0]]
                for source in ins[1:]:
                    acc ^= values[source]
                acc = ~acc & mask
            values[cell.output] = acc
        return values
