"""VeriTrust — verification for hardware trust (Zhang, Yuan, Wei, Sun,
Xu — DAC'13), as a simulation-based activation/influence analysis.

VeriTrust's premise: trigger inputs of a Trojan do not drive the circuit's
*functional* behaviour — under a (non-triggering) verification suite they
never determine any gate's output. This implementation runs the suite
bit-parallel and, per gate input pin, counts *influence events*: cycles in
which flipping just that pin would have changed the gate's output (for an
AND pin that means all other pins were 1, for a MUX data pin that the
select pointed at it, and so on). Pins with zero observed influence are
candidate trigger wires; gates are ranked by how dormant they are and the
top ``suspects`` are handed to the (manual, per the original flow)
inspection step.

The DeTrust evasion the paper's Tables 1 and 3 rely on is inherited:
DeTrust-shaped Trojans drive every Trojan gate with functional signals
whose partial-match activity is indistinguishable from ordinary decode
logic (an opcode comparator also influences rarely), so under a realistic
suite the Trojan never surfaces in the top suspects — while a naive
always-dormant monolithic trigger does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.cells import Kind
from repro.sim.engine import CombEvaluator
from repro.sim.random_stim import StimulusGenerator


@dataclass
class PinActivity:
    """Observed influence of one gate-input pin."""

    net: int  # the gate's output net (identifies the gate)
    pin: int
    source: int  # the net feeding the pin
    influence: int  # cycles in which the pin determined the output
    observed: int

    @property
    def rate(self):
        return self.influence / self.observed if self.observed else 0.0


@dataclass
class VeriTrustReport:
    """Outcome of a VeriTrust analysis."""

    dormant: list = field(default_factory=list)  # PinActivity with zero influence
    ranked: list = field(default_factory=list)  # all pins by ascending rate
    cycles: int = 0
    suspects: int = 20

    def suspicious_nets(self):
        """Output nets of the top-ranked (most dormant) gates."""
        return [activity.net for activity in self.ranked[: self.suspects]]

    def detects(self, trojan_nets):
        """Did a Trojan wire make the inspected suspect list?"""
        trojan_nets = set(trojan_nets)
        return any(net in trojan_nets for net in self.suspicious_nets())

    def summary(self):
        return (
            "VeriTrust: {} pins observed over {} cycles, {} dormant, "
            "inspecting top {}".format(
                len(self.ranked), self.cycles, len(self.dormant), self.suspects
            )
        )


class VeriTrust:
    """Simulation-based dormant-pin analysis."""

    def __init__(self, netlist, cycles=64, lanes=64, seed=0, suspects=20,
                 stimulus=None):
        self.netlist = netlist
        self.cycles = cycles
        self.lanes = lanes
        self.seed = seed
        self.suspects = suspects
        self.stimulus = stimulus  # optional explicit per-cycle input dicts

    def analyze(self):
        netlist = self.netlist
        evaluator = CombEvaluator(netlist, lanes=self.lanes)
        values = evaluator.fresh_values()
        mask = evaluator.mask
        for flop in netlist.flops:
            values[flop.q] = mask if flop.init else 0
        generator = StimulusGenerator(netlist, seed=self.seed)
        influence = {}  # (cell index, pin) -> count
        observed = 0

        for cycle in range(self.cycles):
            if self.stimulus is not None:
                words = self.stimulus[cycle % len(self.stimulus)]
                for name, word in words.items():
                    evaluator.set_word(values, netlist.inputs[name], word)
            else:
                for name, nets in netlist.inputs.items():
                    evaluator.set_word_lanes(
                        values,
                        nets,
                        generator.random_lane_words(len(nets), self.lanes),
                    )
            evaluator.propagate(values)
            observed += self.lanes
            for index, cell in enumerate(netlist.cells):
                masks = _influence_masks(cell, values, mask)
                for pin, pin_mask in enumerate(masks):
                    if pin_mask:
                        key = (index, pin)
                        influence[key] = influence.get(key, 0) + bin(
                            pin_mask
                        ).count("1")
            updates = [(f.q, values[f.d]) for f in netlist.flops]
            for q, value in updates:
                values[q] = value

        report = VeriTrustReport(cycles=observed, suspects=self.suspects)
        activities = []
        for index, cell in enumerate(netlist.cells):
            if cell.kind in (Kind.BUF, Kind.NOT):
                continue  # single-input gates always influence
            for pin, source in enumerate(cell.inputs):
                count = influence.get((index, pin), 0)
                activity = PinActivity(
                    net=cell.output,
                    pin=pin,
                    source=source,
                    influence=count,
                    observed=observed,
                )
                activities.append(activity)
                if count == 0:
                    report.dormant.append(activity)
        activities.sort(key=lambda a: a.rate)
        report.ranked = activities
        return report


def _influence_masks(cell, values, mask):
    """Per-pin lane masks: lanes where flipping the pin flips the output."""
    kind = cell.kind
    ins = cell.inputs
    if kind in (Kind.AND, Kind.NAND):
        masks = []
        for pin in range(len(ins)):
            others = mask
            for j, net in enumerate(ins):
                if j != pin:
                    others &= values[net]
            masks.append(others)
        return masks
    if kind in (Kind.OR, Kind.NOR):
        masks = []
        for pin in range(len(ins)):
            others = 0
            for j, net in enumerate(ins):
                if j != pin:
                    others |= values[net]
            masks.append((~others) & mask)
        return masks
    if kind in (Kind.XOR, Kind.XNOR):
        return [mask] * len(ins)
    if kind in (Kind.NOT, Kind.BUF):
        return [mask]
    if kind is Kind.MUX:
        sel, d0, d1 = ins
        sel_influences = (values[d0] ^ values[d1]) & mask
        return [
            sel_influences,
            (~values[sel]) & mask,  # d0 matters when sel = 0
            values[sel] & mask,  # d1 matters when sel = 1
        ]
    raise ValueError(kind)  # pragma: no cover
