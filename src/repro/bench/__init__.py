"""Benchmark harness: measurement primitives and table rendering."""

from repro.bench.harness import (
    BaselineRow,
    DetectionRow,
    LintRow,
    baseline_run,
    detection_run,
    lint_run,
    max_bound_within_budget,
)
from repro.bench.tables import fmt_bool, fmt_memory, fmt_seconds, render_table

__all__ = [
    "BaselineRow",
    "DetectionRow",
    "LintRow",
    "baseline_run",
    "detection_run",
    "lint_run",
    "max_bound_within_budget",
    "fmt_bool",
    "fmt_memory",
    "fmt_seconds",
    "render_table",
]

from repro.bench.plot import bar_chart, series_compare, sparkline  # noqa: E402

__all__ += ["bar_chart", "series_compare", "sparkline"]
