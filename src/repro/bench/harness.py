"""Experiment harness: the measurements behind every table in the paper.

Three measurement primitives:

* :func:`detection_run` — one (design, engine) cell of Table 1/3: build
  the Eq. (2) monitor, run the engine, replay-validate the witness, and
  record time, peak memory and the bound.
* :func:`max_bound_within_budget` — the "Max. # of clk cycles" columns:
  keep processing deeper bounds until the wall-clock budget is spent,
  *continuing past detections* (the paper measures unroll depth under a
  100 s cap as a separate metric from detection).
* :func:`baseline_run` — FANCI and VeriTrust verdicts, scored against the
  Trojan's ground-truth net set.

Budgets are deliberately small by default (seconds, not the paper's 100 s
on a 32-core Xeon): the *ratios* — who detects what, BMC-vs-ATPG depth and
memory — are the reproduction target, not absolute numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.fanci import Fanci
from repro.baselines.veritrust import VeriTrust
from repro.bmc.witness import confirms_violation
from repro.core.backends import make_engine
from repro.properties.monitors import (
    build_corruption_monitor,
    build_tracking_monitor,
)


@dataclass
class DetectionRow:
    """One engine's verdict on one Trojan (a Table 1 cell group)."""

    label: str
    engine: str
    detected: bool
    status: str
    bound: int
    elapsed: float
    peak_memory: int
    confirmed: bool
    extra: dict = field(default_factory=dict)

    @property
    def verdict(self):
        if self.detected:
            return "Yes" if self.confirmed else "Yes(?)"
        return "N/A" if self.status in ("proved", "unknown") else self.status


def _row_telemetry(result, **runner_fields):
    """Per-check engine counters for a row's ``extra["telemetry"]``.

    Pulls whichever search statistics the engine's result carries (SAT
    deltas for BMC, backtrack counts for the structural engines) plus any
    supervision fields the caller adds; ``None``-valued stats the engine
    does not track are dropped so sweep reports can ``.get()`` uniformly.
    """
    telemetry = dict(runner_fields)
    for name in ("conflicts", "decisions", "propagations", "backtracks",
                 "clauses", "variables", "total_clauses",
                 "total_problem_clauses", "total_learnt_clauses"):
        value = getattr(result, name, None)
        if value is not None:
            telemetry[name] = value
    per_bound = getattr(result, "per_bound_elapsed", None)
    if per_bound:
        telemetry["bounds_timed"] = len(per_bound)
        telemetry["slowest_bound_seconds"] = max(per_bound)
    return telemetry


def detection_run(label, netlist, spec, register, engine, max_cycles,
                  time_budget=None, functional=True, measure_memory=True,
                  runner=None, cache_dir=None):
    """Run one Eq. (2) detection and replay-validate any witness.

    The verdict run is clean; the peak-memory figure comes from a *separate
    short probe* with ``tracemalloc`` enabled — tracing every allocation
    slows the structural engines by an order of magnitude, which must not
    distort the timing/budget columns. The footprint scale (a CNF database
    vs. a justification trail) shows within a couple of seconds.

    With ``runner`` (a :class:`~repro.runner.supervisor.CheckRunner`) the
    verdict check executes under supervision: an engine crash, hang or
    budget blow-up yields a row whose ``status`` names the failure
    (``crashed`` / ``timeout`` / ``budget``) instead of killing the whole
    benchmark sweep — one bad (design, engine) cell no longer costs the
    table.

    ``cache_dir`` (with ``runner``) routes the check through the outcome
    cache: the row's ``extra["cache"]`` records the disposition
    (``hit`` / ``partial`` / ``miss``) so sweep reports can show
    hit-rate columns, and ``extra["cache_saved"]`` the solve seconds a
    hit avoided. Cached verdict rows skip the memory probe — there was
    no solve to measure.
    """
    monitor = build_corruption_monitor(
        netlist, spec.critical[register], functional=functional
    )
    property_name = "{}:{}".format(label, engine)

    def fresh_engine():
        return make_engine(
            engine,
            monitor.netlist,
            monitor.objective_net,
            property_name=property_name,
            pinned_inputs=spec.pinned_inputs,
        )

    extra = {}
    if runner is not None:
        from repro.runner import ObjectiveTask

        task = ObjectiveTask(
            engine=engine,
            netlist=monitor.netlist,
            objective_net=monitor.objective_net,
            max_cycles=max_cycles,
            property_name=property_name,
            pinned_inputs=spec.pinned_inputs,
            check_kwargs={"time_budget": time_budget},
            cache_dir=cache_dir,
        )
        outcome = runner.run(task, name=property_name)
        result = outcome.verdict
        extra["outcome"] = outcome
        extra["telemetry"] = _row_telemetry(
            result,
            attempts=len(outcome.attempts),
            attempt_statuses=[a.status for a in outcome.attempts],
            bound_reached=outcome.bound_reached,
        )
        if outcome.cache is not None:
            extra["cache"] = outcome.cache
            if outcome.cache == "hit":
                extra["cache_saved"] = getattr(result, "saved_elapsed", 0.0)
                measure_memory = False  # nothing was solved
        if not outcome.ok:
            # supervision verdicts outrank the engine's "unknown"
            result_status = outcome.status
            measure_memory = False
        else:
            result_status = result.status
    else:
        result = fresh_engine().check(max_cycles, time_budget=time_budget)
        result_status = result.status
        extra["telemetry"] = _row_telemetry(result)
    confirmed = bool(
        result.detected
        and confirms_violation(
            monitor.netlist, result.witness, monitor.violation_net
        )
    )
    peak = 0
    if measure_memory:
        probe_budget = max(2.0, min(result.elapsed * 1.5, 20.0))
        probe = fresh_engine().check(
            max_cycles, time_budget=probe_budget, measure_memory=True
        )
        peak = probe.peak_memory
    return DetectionRow(
        label=label,
        engine=engine,
        detected=result.detected,
        status=result_status,
        bound=result.bound,
        elapsed=result.elapsed,
        peak_memory=peak,
        confirmed=confirmed,
        extra=extra,
    )


def max_bound_within_budget(netlist, objective_net, engine, budget,
                            pinned_inputs=None, hard_cap=100000,
                            property_name="depth"):
    """Deepest bound fully processed within ``budget`` seconds.

    Bounds are processed one at a time and processing *continues past a
    violation* — this measures unrolling capacity, not detection.
    """
    runner = make_engine(
        engine,
        netlist,
        objective_net,
        property_name=property_name,
        pinned_inputs=pinned_inputs,
    )
    start = time.perf_counter()
    bound = 0
    t = 1
    while t <= hard_cap:
        remaining = budget - (time.perf_counter() - start)
        if remaining <= 0:
            break
        result = runner.check(t, start_cycle=t, time_budget=remaining)
        if result.status == "unknown":
            break
        bound = t
        t += 1
    return bound, time.perf_counter() - start


def tracking_objective(netlist, spec, register, candidate, direction="after"):
    """Monitor build for the Eq. (3) depth measurements of Table 3."""
    return build_tracking_monitor(
        netlist, spec.critical[register], candidate, direction=direction
    )


@dataclass
class LintRow:
    """Static lint pre-pass figures for one design.

    The per-rule hit counts and lint runtime sit next to the formal
    engines' numbers in the experiment tables: the pre-pass costs
    milliseconds and the hit pattern shows *which* structural signature
    each Trojan family trips.
    """

    label: str
    elapsed: float
    findings: int
    rule_hits: dict = field(default_factory=dict)  # rule -> hit count
    flagged_registers: dict = field(default_factory=dict)  # name -> score
    max_severity: str | None = None

    @property
    def flagged(self):
        """True when lint implicated at least one register."""
        return bool(self.flagged_registers)


def lint_run(label, netlist, spec=None, config=None):
    """Run the static lint pre-pass on one design; returns a LintRow.

    Mirrors :func:`detection_run`'s shape so a bench sweep can record a
    lint column per (design) row without re-deriving anything: the
    engine's own per-rule timing lands in ``rule_hits`` companions via
    the report, and the row keeps only the table-facing numbers.
    """
    from repro.lint import lint_design

    report = lint_design(netlist, spec, config=config, design=label)
    return LintRow(
        label=label,
        elapsed=report.elapsed,
        findings=len(report.findings),
        rule_hits=dict(report.rule_hits),
        flagged_registers=report.register_scores(),
        max_severity=report.max_severity,
    )


@dataclass
class IftRow:
    """Static IFT screen figures for one design.

    The row exists to make the modality's cost visible next to the
    solver columns: ``solver_calls`` is identically zero (the screen is
    pure graph traversal) and ``elapsed`` is expected to stay well
    under a second per design.
    """

    label: str
    elapsed: float
    findings: int
    suspicious: int
    flagged_registers: dict = field(default_factory=dict)  # name -> score
    tainted_registers: list = field(default_factory=list)
    max_rounds: int = 0  # deepest fixpoint any register needed
    solver_calls: int = 0  # by construction; kept explicit for tables

    @property
    def flagged(self):
        """True when IFT implicated at least one register."""
        return bool(self.flagged_registers)


def ift_row(label, report):
    """Condense an :class:`~repro.ift.findings.IftReport` to an IftRow."""
    return IftRow(
        label=label,
        elapsed=report.elapsed,
        findings=len(report.findings),
        suspicious=report.severity_counts.get("suspicious", 0),
        flagged_registers=report.register_scores(),
        tainted_registers=report.tainted_registers,
        max_rounds=max(
            (st.rounds for st in report.register_stats.values()),
            default=0,
        ),
    )


def ift_run(label, netlist, spec):
    """Run the static IFT screen on one design; returns an IftRow.

    Mirrors :func:`lint_run`'s shape so bench sweeps can record the
    screen's timing/verdict without re-deriving anything.
    """
    from repro.ift import analyze_design

    return ift_row(label, analyze_design(netlist, spec, design=label))


@dataclass
class DiffRow:
    """Golden-model differential screen figures for one design.

    Like :class:`IftRow`, the row makes the modality's cost visible
    next to the solver columns: ``solver_calls`` is identically zero
    (the screen is pure bit-parallel simulation) and ``cycles`` /
    ``lanes`` record how much stimulus bought the verdict.
    """

    label: str
    elapsed: float
    findings: int
    suspicious: int
    flagged_registers: dict = field(default_factory=dict)  # name -> score
    divergent_registers: list = field(default_factory=list)
    cycles: int = 0  # total stimulus cycles driven across phases
    lanes: int = 0  # bit-parallel lanes per cycle
    solver_calls: int = 0  # by construction; kept explicit for tables

    @property
    def flagged(self):
        """True when the diff screen implicated at least one register."""
        return bool(self.flagged_registers)


def diff_row(label, report):
    """Condense a :class:`~repro.diff.findings.DiffReport` to a DiffRow."""
    return DiffRow(
        label=label,
        elapsed=report.elapsed,
        findings=len(report.findings),
        suspicious=report.severity_counts.get("suspicious", 0),
        flagged_registers=report.register_scores(),
        divergent_registers=report.divergent_registers,
        cycles=report.cycles,
        lanes=report.lanes,
    )


def diff_run(label, netlist, spec):
    """Run the differential screen on one design; returns a DiffRow.

    Mirrors :func:`ift_run`'s shape so bench sweeps can record the
    screen's timing/verdict without re-deriving anything.
    """
    from repro.diff import analyze_design

    return diff_row(label, analyze_design(netlist, spec, design=label))


@dataclass
class AuditRow:
    """One design's Algorithm 1 verdict from a bench sweep."""

    label: str
    trojan_found: bool
    expected: bool  # ground truth: does the bundled design carry a Trojan?
    elapsed: float
    status: str  # "ok" or "degraded"
    registers: int
    report: object = None  # the full DetectionReport
    ift: object = None  # IftRow when the sweep ran with ift=True
    diff: object = None  # DiffRow when the sweep ran with diff=True

    @property
    def match(self):
        return self.trojan_found == self.expected


def audit_sweep(designs, jobs=None, max_cycles=16, engine="bmc",
                time_budget=None, check_pseudo_critical=False,
                check_bypass=False, cache_dir=None, runner=None,
                ift=False, diff=False):
    """Run Algorithm 1 over many designs, scored against ground truth.

    ``designs`` is a list of ``(label, netlist, spec)`` triples.  With
    ``jobs`` set, every design's checks land on **one**
    :class:`~repro.sched.AuditScheduler` pool — cross-design
    parallelism, not a pool per design — so a sweep's wall clock is
    bounded by total work over N workers rather than by the slowest
    design times the design count.  Without ``jobs`` the designs run
    serially through the classic detector loop (the baseline the
    speedup acceptance criterion compares against).

    With ``ift=True``, the static IFT screen runs first per design, its
    report is fused into that design's audit (register prioritization,
    ``ift_evidence``, ``leakage_suspect`` statuses) and each
    :class:`AuditRow` carries the screen's timing/verdict figures as
    ``row.ift`` (an :class:`IftRow`).

    With ``diff=True``, the golden-model differential screen runs the
    same way: its report is fused into the audit (``diff_evidence``,
    ``differential_suspect`` statuses, prioritization) and each row
    carries ``row.diff`` (a :class:`DiffRow`).

    Returns a list of :class:`AuditRow` in input order; ``row.match``
    is False where the verdict disagrees with the design's bundled
    ground truth (``spec.trojan``).
    """
    from dataclasses import replace

    from repro.core.detector import AuditConfig, TrojanDetector

    config = AuditConfig(
        max_cycles=max_cycles,
        engine=engine,
        time_budget=time_budget,
        check_pseudo_critical=check_pseudo_critical,
        check_bypass=check_bypass,
        cache_dir=cache_dir,
        jobs=jobs,
    )
    ift_rows = {}
    diff_rows = {}
    configs = []
    for label, netlist, spec in designs:
        overrides = {}
        if ift:
            from repro.ift import analyze_design

            ift_report = analyze_design(netlist, spec, design=label)
            ift_rows[label] = ift_row(label, ift_report)
            overrides["ift_report"] = ift_report
        if diff:
            from repro.diff import analyze_design as diff_analyze

            diff_report = diff_analyze(netlist, spec, design=label)
            diff_rows[label] = diff_row(label, diff_report)
            overrides["diff_report"] = diff_report
        configs.append(replace(config, **overrides) if overrides
                       else config)
    detectors = [
        TrojanDetector(netlist, spec, config=cfg, runner=runner)
        for (_label, netlist, spec), cfg in zip(designs, configs)
    ]
    if jobs:
        from repro.sched import AuditRequest, AuditScheduler

        requests = [AuditRequest(detector) for detector in detectors]
        reports = AuditScheduler(requests, jobs=jobs).run()
    else:
        reports = [detector.run() for detector in detectors]
    rows = []
    for (label, _netlist, spec), report in zip(designs, reports):
        rows.append(AuditRow(
            label=label,
            trojan_found=report.trojan_found,
            expected=spec.trojan is not None,
            elapsed=report.elapsed,
            status="degraded" if report.degraded else "ok",
            registers=len(report.findings),
            report=report,
            ift=ift_rows.get(label),
            diff=diff_rows.get(label),
        ))
    return rows


@dataclass
class BaselineRow:
    """FANCI + VeriTrust verdicts for one design."""

    label: str
    fanci_detected: bool
    fanci_flagged: int
    veritrust_detected: bool
    veritrust_dormant: int
    elapsed: float


def baseline_run(label, netlist, trojan_nets, fanci_samples=4096,
                 fanci_threshold=2 ** -10, fanci_nets=None,
                 veritrust_cycles=48, veritrust_lanes=64, seed=0,
                 max_fanci_wires=None):
    """Run FANCI and VeriTrust on one design; score against ground truth."""
    start = time.perf_counter()
    analyzer = Fanci(
        netlist,
        threshold=fanci_threshold,
        samples=fanci_samples,
        seed=seed,
    )
    if fanci_nets is None:
        fanci_nets = [cell.output for cell in netlist.cells]
        if max_fanci_wires is not None and len(fanci_nets) > max_fanci_wires:
            # Deterministic thinning for very large designs (AES): keep all
            # Trojan-cone wires plus an even sample of the rest.
            keep = [n for n in fanci_nets if n in trojan_nets]
            rest = [n for n in fanci_nets if n not in trojan_nets]
            step = max(1, len(rest) // max(1, max_fanci_wires - len(keep)))
            keep.extend(rest[::step])
            fanci_nets = keep
    fanci_report = analyzer.analyze(fanci_nets)
    veritrust_report = VeriTrust(
        netlist, cycles=veritrust_cycles, lanes=veritrust_lanes, seed=seed
    ).analyze()
    return BaselineRow(
        label=label,
        fanci_detected=fanci_report.detects(trojan_nets),
        fanci_flagged=len(fanci_report.flagged_nets),
        veritrust_detected=veritrust_report.detects(trojan_nets),
        veritrust_dormant=len(veritrust_report.dormant),
        elapsed=time.perf_counter() - start,
    )
