"""ASCII series plots for benchmark output.

The paper's tables carry per-bound growth implicitly ("max # of clock
cycles"); these helpers render the underlying series — per-bound solve
times, depth-vs-budget ramps — as terminal-friendly charts so a bench run
shows the *shape* of an engine's scaling at a glance.
"""

from __future__ import annotations

BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values):
    """One-line bar chart of a numeric series."""
    values = list(values)
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return BLOCKS[1] * len(values)
    out = []
    for value in values:
        index = 1 + round((len(BLOCKS) - 2) * (value / top))
        out.append(BLOCKS[max(1, min(index, len(BLOCKS) - 1))])
    return "".join(out)


def bar_chart(rows, width=40, title=None):
    """Horizontal bar chart: rows are (label, value) pairs."""
    rows = list(rows)
    lines = []
    if title:
        lines.append(title)
    if not rows:
        return "\n".join(lines)
    top = max(value for _label, value in rows) or 1
    label_width = max(len(str(label)) for label, _ in rows)
    for label, value in rows:
        bar = "#" * max(1, round(width * value / top)) if value > 0 else ""
        lines.append(
            "{:<{lw}} |{:<{w}} {}".format(
                label, bar, _fmt(value), lw=label_width, w=width
            )
        )
    return "\n".join(lines)


def series_compare(series_map, width=50, title=None):
    """Sparkline per named series, aligned, with min/max annotations."""
    lines = []
    if title:
        lines.append(title)
    label_width = max((len(name) for name in series_map), default=0)
    for name, values in series_map.items():
        values = list(values)[:width]
        lines.append(
            "{:<{lw}} {} (n={}, max={})".format(
                name,
                sparkline(values),
                len(values),
                _fmt(max(values)) if values else "-",
                lw=label_width,
            )
        )
    return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float):
        return "{:.3g}".format(value)
    return str(value)
