"""ASCII table rendering for benchmark output.

The benches print the same row/column structure as the paper's Tables 1-3
so a reader can put them side by side with the PDF.
"""

from __future__ import annotations


def render_table(headers, rows, title=None):
    """Render a list-of-lists as a boxed ASCII table."""
    columns = len(headers)
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i in range(columns):
            widths[i] = max(widths[i], len(row[i]) if i < len(row) else 0)
    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(
        "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |"
    )
    lines.append(sep)
    for row in cells:
        padded = list(row) + [""] * (columns - len(row))
        lines.append(
            "| "
            + " | ".join(c.ljust(w) for c, w in zip(padded, widths))
            + " |"
        )
    lines.append(sep)
    return "\n".join(lines)


def fmt_seconds(value):
    if value is None:
        return "-"
    if value < 0.01:
        return "<0.01"
    return "{:.2f}".format(value)


def fmt_memory(value_bytes):
    if not value_bytes:
        return "-"
    mb = value_bytes / (1024 * 1024)
    if mb >= 1024:
        return "{:.2f} GB".format(mb / 1024)
    return "{:.1f} MB".format(mb)


def fmt_bool(value, yes="Yes", no="No"):
    return yes if value else no
