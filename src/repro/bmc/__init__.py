"""Bounded model checking: unrolling, engine, witnesses."""

from repro.bmc.induction import (
    InductionResult,
    PROVED_UNBOUNDED,
    prove_by_induction,
)
from repro.bmc.engine import (
    PROVED,
    UNKNOWN_STATUS,
    VIOLATED,
    BmcEngine,
    BmcResult,
    check_objective,
)
from repro.bmc.group import MultiObjectiveBmc, group_objectives_by_cone
from repro.bmc.unroll import Unroller
from repro.bmc.witness import (
    Witness,
    confirms_violation,
    replay,
    witness_to_vcd,
)

__all__ = [
    "InductionResult",
    "PROVED_UNBOUNDED",
    "prove_by_induction",
    "PROVED",
    "UNKNOWN_STATUS",
    "VIOLATED",
    "BmcEngine",
    "BmcResult",
    "check_objective",
    "group_objectives_by_cone",
    "MultiObjectiveBmc",
    "Unroller",
    "Witness",
    "confirms_violation",
    "witness_to_vcd",
    "replay",
]
