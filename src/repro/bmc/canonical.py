"""Canonical counterexample extraction: solver-state-independent models.

A SAT solver's model depends on its search history — restarts, phase
saving, learnt clauses — so the *same* violated property yields
different (all valid) witnesses from a cold solver and from a session
that already proved two sibling properties. That breaks the audit
pipeline's byte-identity guarantees: fresh-engine and persistent-session
runs must produce identical scrubbed reports.

:func:`canonicalize_model` fixes the model, not the guarantee: it
minimizes the witness's input bits lexicographically (frame-major, then
port declaration order, then bit order) under the same objective
assumption. The lex-minimal satisfying input assignment is a property of
the *formula*, not of the solver state — learnt clauses and promoted
units are implied by the formula, so they never exclude a model — which
makes the canonical witness identical across cold engines, warm
sessions, and solver backends.

The cost is one extra solve per input bit that is 1 in the current
model (bits already 0 are locked in for free), each under an
assumption stack that only ever tightens. Under a nearly-expired time
budget the remaining bits keep their current values — the witness is
then still valid, just not canonical, mirroring how budget exhaustion
already degrades verdicts elsewhere.
"""

from __future__ import annotations

import time

# status literal, not `from repro.sat.solver import SAT`: this module is
# imported by the engine before the package's import cycle through
# repro.netlist has settled, and it needs nothing else from the solver
SAT = "sat"

#: Safety valve: canonicalization never issues more solver calls than
#: this, no matter how many input bits the cone has. Violations live at
#: shallow bounds in practice, so the limit is far above typical use.
MAX_CANONICAL_SOLVES = 4096


def canonicalize_model(solver, unroller, assumptions, model, frames,
                       time_budget=None):
    """Return the lex-minimal model for the unrolled inputs.

    ``assumptions`` is the literal list that made the original solve
    satisfiable (the objective literal, for BMC). ``model`` is any
    satisfying model for it. Input literals are visited frame-major in
    the unroller's deterministic port order; each bit currently 1 is
    tested once for being forceable to 0. The returned model satisfies
    the formula plus ``assumptions`` and assigns the unique lex-minimal
    input vector; non-input variables follow the last solve's model.
    """
    start = time.perf_counter()
    fixed = list(assumptions)
    true_var = abs(unroller.true_lit)
    solves = 0

    # Pre-pass: point the solver's saved phases of every free input bit
    # at 0 and re-solve once. Phase saving is exactly why warm solvers
    # return 1-heavy models (they keep whatever polarity the last search
    # used); resetting it yields a near-lex-min model up front, so the
    # verification loop below only has to solve for the bits the formula
    # genuinely forces to 1 — typically an order of magnitude fewer
    # solver calls. Correctness is untouched: phases steer search, never
    # verdicts, and the loop's output is the same lex-min vector from
    # any starting model.
    input_lits = []
    for t in range(frames):
        for _name, _bit, net in unroller._input_nets:
            lit = unroller._lit.get((net, t))
            if lit is None or abs(lit) == true_var:
                continue
            input_lits.append((t, lit))
            solver.phase[abs(lit)] = lit < 0
    remaining = None
    if time_budget is not None:
        remaining = time_budget - (time.perf_counter() - start)
    if remaining is None or remaining > 0:
        solves += 1
        presolve = solver.solve(assumptions=fixed, time_budget=remaining)
        if presolve.status == SAT:
            model = presolve.model

    for _t, lit in input_lits:
        value = model[abs(lit)]
        if lit < 0:
            value = not value
        if not value:
            fixed.append(-lit)
            continue
        out_of_budget = (
            solves >= MAX_CANONICAL_SOLVES
            or (
                time_budget is not None
                and time.perf_counter() - start >= time_budget
            )
        )
        if out_of_budget:
            fixed.append(lit)
            continue
        remaining = None
        if time_budget is not None:
            remaining = time_budget - (time.perf_counter() - start)
        solves += 1
        result = solver.solve(
            assumptions=fixed + [-lit], time_budget=remaining
        )
        if result.status == SAT:
            model = result.model
            fixed.append(-lit)
        else:
            # UNSAT: the bit is forced to 1 under the prefix fixed
            # so far. UNKNOWN (budget): keep the current value — the
            # model stays valid either way.
            fixed.append(lit)
    return model
