"""Bounded model checking engine.

Implements the paper's Section 3.1 flow: the no-data-corruption property is
synthesized into the design as a monitor circuit whose 1-bit *objective net*
goes high in any cycle where the property is violated (the monitors make it
sticky, so checking the final unrolled frame covers all earlier cycles).
:class:`BmcEngine` unrolls the objective's cone of influence frame by frame
on an incremental CDCL solver and asks, at each bound ``t``, "can the
objective be 1 at frame t?".

* SAT → the property is violated; the model is decoded into a
  :class:`~repro.bmc.witness.Witness` (the paper's counterexample/trigger).
* UNSAT at every bound up to ``T`` → the design is *trustworthy for T
  clock cycles* (the paper's guarantee, Section 3.2 — reset the design
  every T cycles).
* Budget exhausted → ``unknown``, reporting the deepest proved bound
  (the "max # of clock cycles" columns of Tables 1 and 3).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field

from repro.bmc.canonical import canonicalize_model
from repro.bmc.unroll import Unroller
from repro.bmc.witness import Witness
from repro.obs.tracer import get_tracer
from repro.sat.factory import default_solver
from repro.sat.solver import SAT, UNKNOWN

VIOLATED = "violated"
PROVED = "proved"
UNKNOWN_STATUS = "unknown"


@dataclass
class BmcResult:
    """Outcome of a bounded check.

    All solver statistics are **deltas against this ``check()`` call**:
    ``conflicts`` / ``decisions`` / ``propagations`` count search work and
    ``clauses`` / ``variables`` count formula growth attributable to this
    check alone — consistent even when one engine (or a shared-cone group)
    serves several ``check()`` calls from the same solver instance. The
    cumulative end-of-check solver totals are ``total_clauses`` /
    ``total_variables``.
    """

    status: str  # violated / proved / unknown
    bound: int  # violated: frame count to violation; else deepest proved bound
    witness: Witness | None = None
    elapsed: float = 0.0
    peak_memory: int = 0  # bytes (tracemalloc), 0 when not measured
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    clauses: int = 0  # clauses added during this check (delta)
    variables: int = 0  # variables added during this check (delta)
    # Cumulative solver clause count after the check: problem AND learnt
    # clauses (they both occupy solver memory and both shape fingerprints),
    # with the two populations also reported separately.
    total_clauses: int = 0
    total_problem_clauses: int = 0
    total_learnt_clauses: int = 0
    total_variables: int = 0  # cumulative solver variable count after the check
    cone: tuple = (0, 0, 0)
    property_name: str = ""
    per_bound_elapsed: list = field(default_factory=list)

    @property
    def detected(self):
        return self.status == VIOLATED

    def summary(self):
        head = "[{}] {} at bound {}".format(
            self.property_name or "bmc", self.status, self.bound
        )
        # Deltas alone are misleading under session reuse (the second
        # property of a warm session adds near-zero clauses), so the
        # cumulative solver totals are always shown alongside.
        tail = (
            " ({:.2f}s, {} conflicts, {} vars, {} clauses,"
            " {} total vars, {} total clauses, cone={})".format(
                self.elapsed, self.conflicts, self.variables, self.clauses,
                self.total_variables, self.total_clauses, self.cone,
            )
        )
        return head + tail


class BmcEngine:
    """Incremental BMC over a 1-bit objective net."""

    def __init__(self, netlist, objective_net, property_name="", use_coi=True,
                 solver=None, pinned_inputs=None, unroller=None):
        self.netlist = netlist
        self.objective_net = objective_net
        self.property_name = property_name
        if unroller is not None:
            # Session path: share an existing solver+unroller (the
            # unroller's cone must already cover the objective — see
            # SolverSession, which extends it via add_targets).
            self.solver = unroller.solver
            self.unroller = unroller
        else:
            self.solver = solver if solver is not None else default_solver()
            self.unroller = Unroller(
                netlist,
                self.solver,
                [objective_net],
                use_coi=use_coi,
                pinned_inputs=pinned_inputs,
            )

    def check(self, max_cycles, time_budget=None, conflict_budget=None,
              measure_memory=False, start_cycle=1):
        """Check whether the objective can be 1 within ``max_cycles`` cycles.

        An empty bound range (``max_cycles < start_cycle``, e.g.
        ``max_cycles=0``) proves nothing: the result is ``unknown`` at
        bound 0, never a vacuous ``proved``.
        """
        start_cycle = max(start_cycle, 1)  # cycles are 1-based
        tracer = get_tracer()
        if not tracer.enabled:
            return self._check(max_cycles, time_budget, conflict_budget,
                               measure_memory, start_cycle, tracer)
        with tracer.span(
            "bmc.check",
            property=self.property_name,
            max_cycles=max_cycles,
            start_cycle=start_cycle,
        ) as extra:
            result = self._check(max_cycles, time_budget, conflict_budget,
                                 measure_memory, start_cycle, tracer)
            extra.update(status=result.status, bound=result.bound)
            tracer.metrics.counter("bmc.checks").inc()
            tracer.metrics.counter("bmc.status." + result.status).inc()
            tracer.metrics.counter("bmc.bounds_solved").inc(
                len(result.per_bound_elapsed)
            )
        return result

    def _check(self, max_cycles, time_budget, conflict_budget,
               measure_memory, start_cycle, tracer):
        start = time.perf_counter()
        base_conflicts = self.solver.stats.conflicts
        base_decisions = self.solver.stats.decisions
        base_props = self.solver.stats.propagations
        base_clauses = len(self.solver.clauses)
        base_vars = self.solver.num_vars
        snapshotting = False
        if measure_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            snapshotting = True
        peak = 0
        try:
            if measure_memory:
                tracemalloc.reset_peak()
            # An empty range would otherwise fall through and claim
            # "proved" without a single solver call — a vacuous
            # "trustworthy for 0 cycles" verdict callers treat as a pass.
            status = PROVED if max_cycles >= start_cycle else UNKNOWN_STATUS
            bound = 0
            witness = None
            per_bound = []
            for t in range(start_cycle, max_cycles + 1):
                bound_start = time.perf_counter()
                remaining = None
                if time_budget is not None:
                    remaining = time_budget - (time.perf_counter() - start)
                    if remaining <= 0:
                        status = UNKNOWN_STATUS
                        break
                stop = False
                with tracer.span("bmc.bound", t=t) as bound_extra:
                    with tracer.span("bmc.encode", t=t):
                        self.unroller.extend_to(t)
                    if time_budget is not None:
                        # re-read the clock: frame encoding above is not
                        # free, and the solver's cooperative budget must
                        # see it or the overall budget overshoots by a
                        # frame's encoding
                        remaining = time_budget - (time.perf_counter() - start)
                        if remaining <= 0:
                            status = UNKNOWN_STATUS
                            per_bound.append(time.perf_counter() - bound_start)
                            bound_extra["outcome"] = "budget"
                            break
                    objective_lit = self.unroller.lit(self.objective_net, t - 1)
                    result = self.solver.solve(
                        assumptions=[objective_lit],
                        conflict_budget=conflict_budget,
                        time_budget=remaining,
                    )
                    per_bound.append(time.perf_counter() - bound_start)
                    bound_extra["outcome"] = result.status
                    if result.status == SAT:
                        status = VIOLATED
                        bound = t
                        model = canonicalize_model(
                            self.solver,
                            self.unroller,
                            [objective_lit],
                            result.model,
                            t,
                            time_budget=(
                                None if time_budget is None else
                                time_budget - (time.perf_counter() - start)
                            ),
                        )
                        witness = Witness(
                            inputs=self.unroller.input_assignment(model, t),
                            violation_cycle=t - 1,
                            property_name=self.property_name,
                        )
                        stop = True
                    elif result.status == UNKNOWN:
                        status = UNKNOWN_STATUS
                        stop = True
                    else:
                        bound = t  # proved up to t
                        # UNSAT under [objective_lit] means the formula
                        # implies ¬objective@t-1; promoting it to a unit
                        # lets BCP kill the whole sticky chain backward,
                        # strengthening later bounds and later session
                        # checks for free.
                        self.solver.add_clause([-objective_lit])
                if stop:
                    break
            if measure_memory:
                _current, peak = tracemalloc.get_traced_memory()
        finally:
            if snapshotting:
                tracemalloc.stop()
        stats = self.solver.stats
        return BmcResult(
            status=status,
            bound=bound,
            witness=witness,
            elapsed=time.perf_counter() - start,
            peak_memory=peak,
            conflicts=stats.conflicts - base_conflicts,
            decisions=stats.decisions - base_decisions,
            propagations=stats.propagations - base_props,
            clauses=len(self.solver.clauses) - base_clauses,
            variables=self.solver.num_vars - base_vars,
            total_clauses=len(self.solver.clauses) + len(self.solver.learnts),
            total_problem_clauses=len(self.solver.clauses),
            total_learnt_clauses=len(self.solver.learnts),
            total_variables=self.solver.num_vars,
            cone=self.unroller.cone_size,
            property_name=self.property_name,
            per_bound_elapsed=per_bound,
        )


def check_objective(netlist, objective_net, max_cycles, **kwargs):
    """One-shot convenience wrapper around :class:`BmcEngine`."""
    property_name = kwargs.pop("property_name", "")
    use_coi = kwargs.pop("use_coi", True)
    pinned_inputs = kwargs.pop("pinned_inputs", None)
    engine = BmcEngine(
        netlist,
        objective_net,
        property_name=property_name,
        use_coi=use_coi,
        pinned_inputs=pinned_inputs,
    )
    return engine.check(max_cycles, **kwargs)
