"""Shared-cone BMC: one unrolling serving several objectives.

Algorithm 1's pseudo-critical sweep asks near-identical questions about
one register — the Eq. (3) tracking objective of every candidate shares
the critical register's fan-in logic, the valid-way conditions and the
environment constraint. Checking them with independent
:class:`~repro.bmc.engine.BmcEngine` instances re-encodes that shared
cone once per objective. :class:`MultiObjectiveBmc` instead builds a
single :class:`~repro.bmc.unroll.Unroller` over the *union* of the
objective cones and, at each bound, asks the same incremental solver
about each still-undecided objective under a one-literal assumption —
frame encoding is paid once per bound for the whole group, and learned
clauses transfer between objectives for free.

:func:`group_objectives_by_cone` decides which objectives are worth
sharing: a union-find over pairwise cone overlap, so disjoint cones keep
their own (smaller) unrollings and only genuinely overlapping objectives
are batched.

The group engine preserves the soundness rules of the single-objective
engine: an objective whose bound loop never runs (empty range, budget
gone before its first solve) reports ``unknown``, never ``proved``; a
``proved`` verdict means UNSAT at *every* bound in the requested range.
"""

from __future__ import annotations

import time

from repro.bmc.engine import (
    PROVED,
    UNKNOWN_STATUS,
    VIOLATED,
    BmcResult,
)
from repro.bmc.canonical import canonicalize_model
from repro.bmc.unroll import Unroller
from repro.bmc.witness import Witness
from repro.errors import ReproError
from repro.netlist.traversal import cone_of_influence
from repro.obs.tracer import get_tracer
from repro.sat.factory import default_solver
from repro.sat.solver import SAT, UNKNOWN


def group_objectives_by_cone(netlist, objective_nets, min_overlap=0.5):
    """Partition objectives into shared-cone groups.

    Computes each objective's cone of influence and merges objectives
    whose cones overlap by at least ``min_overlap`` (overlap coefficient:
    ``|A ∩ B| / min(|A|, |B|)``) with union-find. Returns a list of
    groups, each a list of indices into ``objective_nets``, in first-seen
    order. Objectives with no sufficiently-overlapping partner come back
    as singleton groups — callers fall back to plain :class:`BmcEngine`
    for those.
    """
    cones = [
        cone_of_influence(netlist, [net])[0] for net in objective_nets
    ]
    parent = list(range(len(objective_nets)))

    def find(i):
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(len(cones)):
        for j in range(i + 1, len(cones)):
            smaller = min(len(cones[i]), len(cones[j]))
            if smaller == 0:
                continue
            shared = len(cones[i] & cones[j])
            if shared / smaller >= min_overlap:
                parent[find(j)] = find(i)

    groups = {}
    for i in range(len(cones)):
        groups.setdefault(find(i), []).append(i)
    return [groups[root] for root in sorted(groups, key=lambda r: min(groups[r]))]


class MultiObjectiveBmc:
    """Incremental BMC over several 1-bit objectives on one unrolling.

    ``objective_nets`` are target nets in (a clone of) ``netlist`` —
    typically the sticky objectives of several monitors stacked on one
    augmented netlist via the builders' ``into=`` parameter. The unroller
    is built over the union of their cones; per-objective verdicts come
    from one-literal assumption solves, so no objective's constraint ever
    pollutes another's.
    """

    def __init__(self, netlist, objective_nets, property_names=None,
                 use_coi=True, solver=None, pinned_inputs=None):
        if not objective_nets:
            raise ReproError("MultiObjectiveBmc needs at least one objective")
        self.netlist = netlist
        self.objective_nets = list(objective_nets)
        if property_names is None:
            property_names = [""] * len(self.objective_nets)
        if len(property_names) != len(self.objective_nets):
            raise ReproError(
                "got {} property names for {} objectives".format(
                    len(property_names), len(self.objective_nets)
                )
            )
        self.property_names = list(property_names)
        self.solver = solver if solver is not None else default_solver()
        self.unroller = Unroller(
            netlist,
            self.solver,
            self.objective_nets,
            use_coi=use_coi,
            pinned_inputs=pinned_inputs,
        )

    def check_all(self, max_cycles, time_budget=None, conflict_budget=None,
                  start_cycle=1):
        """Check every objective up to its bound; returns one
        :class:`BmcResult` per objective, in input order.

        ``max_cycles`` is either one int for all objectives or a list
        with one bound per objective. The same vacuous-proof rule as the
        single engine applies per objective: an empty range, or a budget
        that dies before an objective's first solve, yields ``unknown``.

        Search statistics (``conflicts`` / ``decisions`` /
        ``propagations``) are attributed to the objective whose solve
        incurred them; ``clauses`` / ``variables`` are the *group's*
        shared-encoding growth and are identical across the returned
        results — the whole point is that the group paid for them once.
        """
        start_cycle = max(start_cycle, 1)  # cycles are 1-based
        tracer = get_tracer()
        if not tracer.enabled:
            return self._check_all(max_cycles, time_budget, conflict_budget,
                                   start_cycle, tracer)
        with tracer.span(
            "bmc.group",
            objectives=len(self.objective_nets),
            start_cycle=start_cycle,
        ) as extra:
            results = self._check_all(max_cycles, time_budget,
                                      conflict_budget, start_cycle, tracer)
            statuses = {}
            for result in results:
                statuses[result.status] = statuses.get(result.status, 0) + 1
            extra.update(**statuses)
            tracer.metrics.counter("bmc.group_checks").inc()
        return results

    def _check_all(self, max_cycles, time_budget, conflict_budget,
                   start_cycle, tracer):
        start = time.perf_counter()
        n = len(self.objective_nets)
        if isinstance(max_cycles, int):
            bounds = [max_cycles] * n
        else:
            bounds = list(max_cycles)
            if len(bounds) != n:
                raise ReproError(
                    "got {} bounds for {} objectives".format(len(bounds), n)
                )
        base_clauses = len(self.solver.clauses)
        base_vars = self.solver.num_vars

        proved_to = [0] * n
        witnesses = [None] * n
        # None = still being checked; otherwise a final status
        decided = [None] * n
        for i, limit in enumerate(bounds):
            if limit < start_cycle:
                decided[i] = UNKNOWN_STATUS
        conflicts = [0] * n
        decisions = [0] * n
        propagations = [0] * n
        per_bound = [[] for _ in range(n)]
        elapsed_solving = [0.0] * n

        deepest = max(bounds) if bounds else 0
        out_of_budget = False
        for t in range(start_cycle, deepest + 1):
            active = [
                i for i in range(n) if decided[i] is None and bounds[i] >= t
            ]
            if not active:
                break
            remaining = None
            if time_budget is not None:
                remaining = time_budget - (time.perf_counter() - start)
                if remaining <= 0:
                    out_of_budget = True
                    break
            with tracer.span("bmc.encode", t=t):
                self.unroller.extend_to(t)
            if time_budget is not None:
                # frame encoding is charged before any solve sees the
                # budget, same as the single-objective engine
                remaining = time_budget - (time.perf_counter() - start)
                if remaining <= 0:
                    out_of_budget = True
                    break
            for i in active:
                solve_start = time.perf_counter()
                if time_budget is not None:
                    remaining = time_budget - (solve_start - start)
                    if remaining <= 0:
                        out_of_budget = True
                        break
                stats = self.solver.stats
                pre_c = stats.conflicts
                pre_d = stats.decisions
                pre_p = stats.propagations
                lit = self.unroller.lit(self.objective_nets[i], t - 1)
                result = self.solver.solve(
                    assumptions=[lit],
                    conflict_budget=conflict_budget,
                    time_budget=remaining,
                )
                solve_elapsed = time.perf_counter() - solve_start
                stats = self.solver.stats
                conflicts[i] += stats.conflicts - pre_c
                decisions[i] += stats.decisions - pre_d
                propagations[i] += stats.propagations - pre_p
                per_bound[i].append(solve_elapsed)
                elapsed_solving[i] += solve_elapsed
                if result.status == SAT:
                    decided[i] = VIOLATED
                    model = canonicalize_model(
                        self.solver,
                        self.unroller,
                        [lit],
                        result.model,
                        t,
                        time_budget=(
                            None if time_budget is None else
                            time_budget - (time.perf_counter() - start)
                        ),
                    )
                    witnesses[i] = Witness(
                        inputs=self.unroller.input_assignment(model, t),
                        violation_cycle=t - 1,
                        property_name=self.property_names[i],
                    )
                    proved_to[i] = t  # bound field: frames to violation
                elif result.status == UNKNOWN:
                    decided[i] = UNKNOWN_STATUS
                else:
                    proved_to[i] = t
                    if t == bounds[i]:
                        decided[i] = PROVED
                        # F ⊨ ¬lit after an UNSAT assumption solve:
                        # promote it so sibling objectives and deeper
                        # bounds propagate it for free.
                        self.solver.add_clause([-lit])
            if out_of_budget:
                break

        clause_delta = len(self.solver.clauses) - base_clauses
        var_delta = self.solver.num_vars - base_vars
        results = []
        for i in range(n):
            status = decided[i] if decided[i] is not None else UNKNOWN_STATUS
            results.append(
                BmcResult(
                    status=status,
                    bound=proved_to[i],
                    witness=witnesses[i],
                    elapsed=elapsed_solving[i],
                    conflicts=conflicts[i],
                    decisions=decisions[i],
                    propagations=propagations[i],
                    clauses=clause_delta,
                    variables=var_delta,
                    total_clauses=(
                        len(self.solver.clauses) + len(self.solver.learnts)
                    ),
                    total_problem_clauses=len(self.solver.clauses),
                    total_learnt_clauses=len(self.solver.learnts),
                    total_variables=self.solver.num_vars,
                    cone=self.unroller.cone_size,
                    property_name=self.property_names[i],
                    per_bound_elapsed=per_bound[i],
                )
            )
        return results
