"""k-induction: unbounded proofs of the no-corruption properties.

The paper's guarantee is bounded — "the SoC integrator has to reset the
design once the number of clock cycles exceeds this value" (Section 3.2).
This module extends the flow past that limitation: if the monitor's
violation signal is 1-inductive (or k-inductive), the property holds for
*every* clock cycle and no periodic reset is needed.

Standard strengthening-free k-induction over the monitor objective:

* **base case** — BMC for ``k`` frames from the reset state (violation
  unreachable within k cycles);
* **inductive step** — from an *arbitrary* state, ``k`` violation-free
  frames imply no violation in frame ``k+1``. UNSAT proves the property
  for all time; SAT yields only a might-be-unreachable counterexample, so
  ``k`` is increased.

Simple-path constraints are omitted (they rarely pay off at these design
sizes); without them k-induction is sound but incomplete — ``unknown`` at
the depth limit falls back to the paper's bounded guarantee.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bmc.engine import BmcEngine
from repro.netlist.cells import Kind
from repro.netlist.traversal import cone_of_influence
from repro.obs.tracer import get_tracer
from repro.sat.factory import default_solver
from repro.sat.solver import UNKNOWN, UNSAT
from repro.sat.tseitin import encode_cell

PROVED_UNBOUNDED = "proved-unbounded"
VIOLATED = "violated"
UNKNOWN_STATUS = "unknown"


@dataclass
class InductionResult:
    """Outcome of a k-induction proof attempt."""

    status: str  # proved-unbounded / violated / unknown
    k: int  # the k that closed the proof (or the last one tried)
    base_bound: int = 0
    elapsed: float = 0.0
    witness: object = None
    property_name: str = ""

    @property
    def proved_forever(self):
        return self.status == PROVED_UNBOUNDED

    def summary(self):
        return "[{}] {} at k={} ({:.2f}s)".format(
            self.property_name or "k-induction", self.status, self.k,
            self.elapsed,
        )


class _FreeStateUnroller:
    """Unrolls the COI like :class:`~repro.bmc.unroll.Unroller`, but frame
    0's flops are *free variables* (arbitrary state) — the inductive-step
    formula."""

    def __init__(self, netlist, solver, target_nets, pinned_inputs=None):
        cone, cell_idxs, flop_idxs = cone_of_influence(netlist, target_nets)
        self.netlist = netlist
        self.solver = solver
        self._cells = [netlist.cells[i] for i in cell_idxs]
        self._flops = [netlist.flops[i] for i in flop_idxs]
        pinned = {}
        for name, word in (pinned_inputs or {}).items():
            for bit, net in enumerate(netlist.inputs[name]):
                pinned[net] = (word >> bit) & 1
        self._input_nets = [
            (net, pinned.get(net))
            for name, nets in netlist.inputs.items()
            for net in nets
            if net in cone
        ]
        self.frames = 0
        self._lit = {}
        self.true_lit = solver.new_var()
        solver.add_clause([self.true_lit])

    def extend_to(self, count):
        while self.frames < count:
            self._build(self.frames)
            self.frames += 1

    def _build(self, t):
        solver = self.solver
        lit = self._lit
        lit[(0, t)] = -self.true_lit
        lit[(1, t)] = self.true_lit
        for net, pinned in self._input_nets:
            if pinned is None:
                lit[(net, t)] = solver.new_var()
            else:
                lit[(net, t)] = self.true_lit if pinned else -self.true_lit
        for flop in self._flops:
            if t == 0:
                lit[(flop.q, 0)] = solver.new_var()  # arbitrary state
            else:
                lit[(flop.q, t)] = lit[(flop.d, t - 1)]
        for cell in self._cells:
            ins = [lit[(n, t)] for n in cell.inputs]
            if cell.kind is Kind.BUF:
                lit[(cell.output, t)] = ins[0]
            elif cell.kind is Kind.NOT:
                lit[(cell.output, t)] = -ins[0]
            else:
                out = solver.new_var()
                lit[(cell.output, t)] = out
                encode_cell(solver, cell.kind, out, ins)

    def lit(self, net, frame):
        return self._lit[(net, frame)]


def prove_by_induction(netlist, objective_net, max_k=8, time_budget=None,
                       pinned_inputs=None, property_name=""):
    """Try to prove ``objective_net`` never rises, for all time.

    The objective must be the *per-cycle violation* net (not the sticky
    flop): the step formula asserts it 0 in frames 0..k-1 and asks for 1 in
    frame k.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return _prove_by_induction(
            netlist, objective_net, max_k, time_budget, pinned_inputs,
            property_name, tracer,
        )
    with tracer.span(
        "induction.prove", property=property_name, max_k=max_k
    ) as extra:
        result = _prove_by_induction(
            netlist, objective_net, max_k, time_budget, pinned_inputs,
            property_name, tracer,
        )
        extra.update(status=result.status, k=result.k)
        tracer.metrics.counter("induction.attempts").inc()
        tracer.metrics.counter("induction.status." + result.status).inc()
    return result


def _prove_by_induction(netlist, objective_net, max_k, time_budget,
                        pinned_inputs, property_name, tracer):
    start = time.perf_counter()

    def remaining():
        # Returns the *real* remainder, negative included — callers bail
        # out when it is ≤ 0. (This used to clamp an exhausted budget to
        # 0.001s, which turned "out of time" into an endless sequence of
        # 1ms solver calls that each made a little progress: the loop
        # could overrun a 1s budget by orders of magnitude.)
        if time_budget is None:
            return None
        return time_budget - (time.perf_counter() - start)

    def out_of_time(left):
        return left is not None and left <= 0

    base_engine = BmcEngine(
        netlist,
        objective_net,
        property_name=property_name + ":base",
        pinned_inputs=pinned_inputs,
    )
    step_solver = default_solver()
    step = _FreeStateUnroller(
        netlist, step_solver, [objective_net], pinned_inputs=pinned_inputs
    )

    step_frames_constrained = 0
    for k in range(1, max_k + 1):
        left = remaining()
        if out_of_time(left):
            return InductionResult(
                status=UNKNOWN_STATUS, k=k,
                elapsed=time.perf_counter() - start,
                property_name=property_name,
            )
        # base: no violation within k cycles from reset
        base = base_engine.check(
            k, start_cycle=k, time_budget=left
        )
        if base.status == "violated":
            return InductionResult(
                status=VIOLATED, k=k, base_bound=base.bound,
                witness=base.witness,
                elapsed=time.perf_counter() - start,
                property_name=property_name,
            )
        if base.status == "unknown":
            return InductionResult(
                status=UNKNOWN_STATUS, k=k,
                elapsed=time.perf_counter() - start,
                property_name=property_name,
            )
        # step: k clean frames from an arbitrary state, then a violation
        with tracer.span("induction.encode", k=k):
            step.extend_to(k + 1)
        # The step solver is incremental across k: frames 0..k-2 already
        # carry their ¬violation clause from earlier iterations, so only
        # the newly uncovered frame needs one. (Re-adding all k clauses
        # each round made the problem-clause count quadratic in k and
        # skewed every clause-growth statistic derived from it.)
        for frame in range(step_frames_constrained, k):
            step_solver.add_clause([-step.lit(objective_net, frame)])
        step_frames_constrained = k
        left = remaining()
        if out_of_time(left):
            return InductionResult(
                status=UNKNOWN_STATUS, k=k,
                elapsed=time.perf_counter() - start,
                property_name=property_name,
            )
        result = step_solver.solve(
            assumptions=[step.lit(objective_net, k)],
            time_budget=left,
        )
        if result.status == UNSAT:
            return InductionResult(
                status=PROVED_UNBOUNDED, k=k, base_bound=k,
                elapsed=time.perf_counter() - start,
                property_name=property_name,
            )
        if result.status == UNKNOWN:
            return InductionResult(
                status=UNKNOWN_STATUS, k=k,
                elapsed=time.perf_counter() - start,
                property_name=property_name,
            )
        # SAT: the step fails at this k — deepen and retry
    return InductionResult(
        status=UNKNOWN_STATUS, k=max_k,
        elapsed=time.perf_counter() - start,
        property_name=property_name,
    )
