"""Persistent per-register solver sessions.

An audit asks up to three questions about one critical register
(corruption, pseudo-critical tracking, bypass), and each question is BMC
over a monitor stacked on the *same* register cone. Building a fresh
:class:`~repro.sat.solver.Solver` per question throws away everything
the previous question paid for: the cone's CNF encoding, the learnt
clauses pruning its search space, and the promoted ¬objective units from
every UNSAT bound.

:class:`SolverSession` keeps one solver + one
:class:`~repro.bmc.unroll.Unroller` alive for a register. Monitors are
stacked onto the session's netlist clone (the builders' ``into=``
support), and each check widens the unrolling to the new monitor's cone
via :meth:`Unroller.add_targets` instead of re-encoding from scratch.
The state survives across the register's properties, across bounds, and
across in-process runner retry attempts.

Soundness of the sharing: monitors only *add* logic reading existing
nets — they never constrain the original design — so clauses learnt
while checking one objective are implied by a formula the next
objective's formula strictly contains. Verdict parity with fresh
engines is then exact, and witness parity is restored by the canonical
lex-min extraction in :mod:`repro.bmc.canonical`; a session run and a
fresh-engine run serialize to byte-identical scrubbed reports.

The session also fronts BMC with a cheap k-induction attempt
(:func:`~repro.bmc.induction.prove_by_induction`, ``k=1``, small budget
slice): clean registers' no-corruption properties are typically
1-inductive, turning their whole linear bound ascent into one
sub-second unbounded proof. Only a ``proved-unbounded`` outcome is
used — it implies "proved at every bound", so the reported
:class:`~repro.bmc.engine.BmcResult` is indistinguishable from a full
ascent; anything else falls through to ordinary incremental BMC.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bmc.engine import PROVED, UNKNOWN_STATUS, BmcEngine, BmcResult
from repro.bmc.induction import prove_by_induction
from repro.bmc.unroll import Unroller
from repro.sat.factory import default_solver

#: Ceiling on the k-induction detour per objective, seconds. The point
#: of the shortcut is that 1-inductive properties close in well under a
#: second; anything slower should be spending its time in BMC instead.
INDUCTION_SLICE = 2.0

#: Fraction of an explicit check budget the shortcut may consume.
INDUCTION_FRACTION = 0.25


class SolverSession:
    """One live solver + unrolling serving all checks of one register.

    ``netlist`` is the session's private clone of the design; callers
    stack monitor circuits onto it (``into=`` builders) and then check
    the resulting objective nets here. The solver and unroller are
    created lazily on the first check and widened incrementally for
    each additional objective.
    """

    def __init__(self, netlist, pinned_inputs=None, induction_max_k=1,
                 use_induction=True):
        self.netlist = netlist
        self.pinned_inputs = dict(pinned_inputs or {})
        self.induction_max_k = induction_max_k
        self.use_induction = use_induction
        self.solver = None
        self.unroller = None
        #: objective nets already proved unbounded — retry attempts and
        #: deeper-bound re-checks of the same property short-circuit.
        self._unbounded = {}
        self.checks_served = 0
        self.induction_wins = 0

    # ------------------------------------------------------------- plumbing

    def objective(self, objective_net, violation_net=None, property_name=""):
        """Wrap an objective of this session's netlist as a handle."""
        return SessionObjective(
            session=self,
            objective_net=objective_net,
            violation_net=violation_net,
            property_name=property_name,
        )

    def _ensure_unrolled(self, objective_net):
        if self.solver is None:
            self.solver = default_solver()
            self.unroller = Unroller(
                self.netlist,
                self.solver,
                [objective_net],
                use_coi=True,
                pinned_inputs=self.pinned_inputs,
            )
        else:
            self.unroller.add_targets([objective_net])

    def engine_for(self, objective_net, property_name=""):
        """A :class:`BmcEngine` view over the shared solver state."""
        self._ensure_unrolled(objective_net)
        return BmcEngine(
            self.netlist,
            objective_net,
            property_name=property_name,
            unroller=self.unroller,
        )

    # --------------------------------------------------------------- checks

    def check(self, objective_net, max_cycles, violation_net=None,
              property_name="", time_budget=None, conflict_budget=None,
              measure_memory=False, start_cycle=1):
        """Check one objective, reusing all prior session state.

        Same contract as :meth:`BmcEngine.check`; the result is
        verdict- and witness-identical to a fresh engine on the same
        monitor (see module docstring).
        """
        start = time.perf_counter()
        self.checks_served += 1
        effective_start = max(start_cycle, 1)
        if max_cycles >= effective_start:
            unbounded = self._unbounded.get(objective_net)
            if unbounded is None and self.use_induction and \
                    violation_net is not None:
                slice_budget = INDUCTION_SLICE
                if time_budget is not None:
                    slice_budget = min(
                        slice_budget, time_budget * INDUCTION_FRACTION
                    )
                proof = prove_by_induction(
                    self.netlist,
                    violation_net,
                    max_k=self.induction_max_k,
                    time_budget=slice_budget,
                    pinned_inputs=self.pinned_inputs,
                    property_name=property_name,
                )
                if proof.proved_forever:
                    self._unbounded[objective_net] = proof
                    unbounded = proof
            if unbounded is not None:
                # Proved for all time ⇒ proved at this bound; report
                # exactly what a full UNSAT ascent would have reported
                # (witness None, bound == max_cycles) so serialized
                # reports cannot tell the two apart.
                self.induction_wins += 1
                return self._unbounded_result(
                    max_cycles, property_name, start
                )
            if time_budget is not None:
                time_budget = time_budget - (time.perf_counter() - start)
                if time_budget <= 0:
                    return BmcResult(
                        status=UNKNOWN_STATUS,
                        bound=0,
                        elapsed=time.perf_counter() - start,
                        property_name=property_name,
                    )
        # Bracket the formula-growth deltas around the unroller widening
        # *and* the engine check: registering a new objective re-encodes
        # its cone over the already-built frames, and that growth belongs
        # to the check that introduced the objective — the engine alone
        # would only see growth after its own entry point.
        pre_vars = pre_clauses = 0
        if self.solver is not None:
            pre_vars = self.solver.num_vars
            pre_clauses = len(self.solver.clauses)
        engine = self.engine_for(objective_net, property_name=property_name)
        result = engine.check(
            max_cycles,
            time_budget=time_budget,
            conflict_budget=conflict_budget,
            measure_memory=measure_memory,
            start_cycle=start_cycle,
        )
        result.variables = self.solver.num_vars - pre_vars
        result.clauses = len(self.solver.clauses) - pre_clauses
        return result

    def _unbounded_result(self, max_cycles, property_name, start):
        total_clauses = total_vars = problem = learnt = 0
        if self.solver is not None:
            problem = len(self.solver.clauses)
            learnt = len(self.solver.learnts)
            total_clauses = problem + learnt
            total_vars = self.solver.num_vars
        cone = self.unroller.cone_size if self.unroller is not None \
            else (0, 0, 0)
        return BmcResult(
            status=PROVED,
            bound=max_cycles,
            elapsed=time.perf_counter() - start,
            total_clauses=total_clauses,
            total_problem_clauses=problem,
            total_learnt_clauses=learnt,
            total_variables=total_vars,
            cone=cone,
            property_name=property_name,
        )


@dataclass
class SessionObjective:
    """Execution hint pairing a task with a live session objective.

    Attached to :class:`~repro.runner.tasks.ObjectiveTask` as a
    non-identity field: it changes *where* a check runs (the session's
    stacked clone and warm solver), never *what* is checked — the task's
    standalone monitor netlist still defines the cache fingerprint, and
    the session netlist is fingerprint-identical to it by construction
    (monitor name prefixes are excluded from hashes). The handle never
    survives pickling, so tasks shipped to worker processes silently
    fall back to fresh engines.
    """

    session: SolverSession
    objective_net: int
    violation_net: int | None = None
    property_name: str = ""

    def check(self, max_cycles, time_budget=None, conflict_budget=None,
              measure_memory=False, start_cycle=1):
        # Mirrors BmcEngine.check's signature exactly so the backend
        # layer's kwarg validation treats session and fresh engines
        # the same.
        return self.session.check(
            self.objective_net,
            max_cycles,
            violation_net=self.violation_net,
            property_name=self.property_name,
            time_budget=time_budget,
            conflict_budget=conflict_budget,
            measure_memory=measure_memory,
            start_cycle=start_cycle,
        )
