"""Time-frame expansion of a sequential netlist into CNF.

The unroller encodes frames ``0..T-1`` of the design's transition relation
into an incremental SAT solver. Two space optimizations keep pure-Python BMC
viable:

* **Cone of influence** — only the cells/flops/inputs that can affect the
  target nets are unrolled (the paper's AES key-register checks are cheap
  precisely because the key cone excludes the round datapath).
* **Literal aliasing** — NOT/BUF outputs reuse (negated) input literals,
  and a flop's Q at frame ``t`` *is* its D literal from frame ``t-1``;
  frame 0 Qs are the reset constants. Only gate outputs and per-frame
  inputs allocate variables.

The paper notes BMC "makes multiple copies of the design for the number of
clock cycles unrolled" and burns GBs; this class is that copying machinery,
with its growth measurable per frame (see :attr:`vars_per_frame`).
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.netlist.cells import Kind
from repro.netlist.traversal import cone_of_influence, topological_cells
from repro.sat.tseitin import encode_cell


class Unroller:
    """Incrementally unrolls a netlist's COI into a :class:`Solver`."""

    def __init__(self, netlist, solver, target_nets, use_coi=True,
                 pinned_inputs=None):
        self.netlist = netlist
        self.solver = solver
        self.use_coi = use_coi
        self.targets = list(target_nets)
        # port name -> pinned constant word (e.g. {"reset": 0}: the initial
        # state already models reset, so the run holds it inactive)
        self.pinned_inputs = dict(pinned_inputs or {})
        if use_coi:
            cone, cell_idxs, flop_idxs = cone_of_influence(netlist, target_nets)
            self.cone = cone
        else:
            cell_idxs = topological_cells(netlist)
            flop_idxs = list(range(len(netlist.flops)))
            self.cone = None  # everything
        self._cell_idxs = list(cell_idxs)
        self._flop_idxs = list(flop_idxs)
        self._cells = [netlist.cells[i] for i in cell_idxs]
        self._flops = [netlist.flops[i] for i in flop_idxs]
        self._input_nets = self._cone_inputs()
        self.frames = 0
        self._lit = {}
        self.true_lit = solver.new_var()
        solver.add_clause([self.true_lit])
        self.vars_per_frame = []

    def _cone_inputs(self):
        inputs = []
        for name, nets in self.netlist.inputs.items():
            for bit, net in enumerate(nets):
                if self.cone is None or net in self.cone:
                    inputs.append((name, bit, net))
        return inputs

    # ------------------------------------------------------------ expansion

    def extend_to(self, frame_count):
        """Ensure frames ``0..frame_count-1`` are encoded."""
        while self.frames < frame_count:
            self._build_frame(self.frames)
            self.frames += 1

    def add_targets(self, target_nets):
        """Widen the cone to cover additional target nets.

        Newly reachable inputs, flops and cells are encoded into every
        already-built frame, so literals for the new targets exist at all
        current frames and future :meth:`extend_to` calls cover the
        union cone. Logic already encoded is untouched — existing
        literals, and any solver state derived from them, stay valid
        (the new cone only ever *adds* constraints over fresh
        variables). This is what lets one session's unrolling serve a
        register's properties one monitor at a time.
        """
        fresh = [net for net in target_nets if net not in self.targets]
        if not fresh:
            return
        self.targets.extend(fresh)
        if self.cone is None:
            return  # use_coi=False: everything is already encoded
        cone, cell_idxs, flop_idxs = cone_of_influence(
            self.netlist, self.targets
        )
        old_cells = set(self._cell_idxs)
        old_flops = set(self._flop_idxs)
        new_cells = [
            self.netlist.cells[i] for i in cell_idxs if i not in old_cells
        ]
        new_flops = [
            self.netlist.flops[i] for i in flop_idxs if i not in old_flops
        ]
        old_input_nets = {net for _, _, net in self._input_nets}
        self.cone = cone
        self._cell_idxs = list(cell_idxs)
        self._flop_idxs = list(flop_idxs)
        self._cells = [self.netlist.cells[i] for i in cell_idxs]
        self._flops = [self.netlist.flops[i] for i in flop_idxs]
        self._input_nets = self._cone_inputs()
        new_inputs = [
            entry for entry in self._input_nets
            if entry[2] not in old_input_nets
        ]
        if not (new_cells or new_flops or new_inputs):
            return
        for t in range(self.frames):
            vars_before = self.solver.num_vars
            self._encode_members(t, new_inputs, new_flops, new_cells)
            self.vars_per_frame[t] += self.solver.num_vars - vars_before

    def _build_frame(self, t):
        solver = self.solver
        vars_before = solver.num_vars
        self._lit[(0, t)] = -self.true_lit
        self._lit[(1, t)] = self.true_lit
        self._encode_members(
            t, self._input_nets, self._flops, self._cells
        )
        self.vars_per_frame.append(solver.num_vars - vars_before)

    def _encode_members(self, t, input_nets, flops, cells):
        """Encode a (sub)set of the cone's members at frame ``t``.

        ``cells`` must be in topological order and closed under fan-in
        relative to what is already encoded at this frame — true both
        for a full frame build and for the new-members slice
        :meth:`add_targets` computes (a cone is fan-in closed, so a new
        cell only reads new nets or nets the old cone already encoded).
        """
        solver = self.solver
        lit = self._lit
        for name, bit, net in input_nets:
            pinned = self.pinned_inputs.get(name)
            if pinned is not None:
                lit[(net, t)] = (
                    self.true_lit if (pinned >> bit) & 1 else -self.true_lit
                )
            else:
                lit[(net, t)] = solver.new_var()
        for flop in flops:
            if t == 0:
                lit[(flop.q, 0)] = (
                    self.true_lit if flop.init else -self.true_lit
                )
            else:
                lit[(flop.q, t)] = lit[(flop.d, t - 1)]
        for cell in cells:
            ins = [lit[(net, t)] for net in cell.inputs]
            if cell.kind is Kind.BUF:
                lit[(cell.output, t)] = ins[0]
            elif cell.kind is Kind.NOT:
                lit[(cell.output, t)] = -ins[0]
            else:
                out = solver.new_var()
                lit[(cell.output, t)] = out
                encode_cell(solver, cell.kind, out, ins)

    # --------------------------------------------------------------- access

    def lit(self, net, frame):
        """SAT literal of ``net`` at ``frame`` (must be in the cone)."""
        try:
            return self._lit[(net, frame)]
        except KeyError:
            raise EncodingError(
                "net {} at frame {} not unrolled (cone miss or frame "
                "not built)".format(net, frame)
            ) from None

    def has_lit(self, net, frame):
        return (net, frame) in self._lit

    def input_assignment(self, model, frames=None):
        """Decode a model into per-frame input words.

        Returns a list (one dict per frame) mapping port name -> integer.
        Input bits outside the cone default to 0.
        """
        if frames is None:
            frames = self.frames
        sequence = []
        for t in range(frames):
            words = {name: 0 for name in self.netlist.inputs}
            for name, bit, net in self._input_nets:
                literal = self._lit[(net, t)]
                value = model[abs(literal)]
                if literal < 0:
                    value = not value
                if value:
                    words[name] |= 1 << bit
            sequence.append(words)
        return sequence

    @property
    def cone_size(self):
        """(cells, flops, input bits) counts of the unrolled cone."""
        return (len(self._cells), len(self._flops), len(self._input_nets))
