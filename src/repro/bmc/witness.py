"""Counterexample witnesses and their replay validation.

A :class:`Witness` is the "set of input sequences" the paper's Algorithm 1
prints when a register can be corrupted: one dict of input-port words per
clock cycle. Witnesses are replayed on the logic simulator so detection
results never rest on the solver alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.sequential import SequentialSimulator


@dataclass
class Witness:
    """An input sequence that violates a property at ``violation_cycle``."""

    inputs: list  # one {port: word} dict per cycle
    violation_cycle: int
    property_name: str = ""
    notes: dict = field(default_factory=dict)

    def __len__(self):
        return len(self.inputs)

    def to_dict(self):
        """JSON-serializable form (checkpoints, the outcome cache)."""
        return {
            "inputs": [dict(words) for words in self.inputs],
            "violation_cycle": self.violation_cycle,
            "property_name": self.property_name,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            inputs=[dict(words) for words in data["inputs"]],
            violation_cycle=data["violation_cycle"],
            property_name=data.get("property_name", ""),
        )

    def format(self, netlist=None, max_cycles=40):
        """Human-readable dump of the stimulus, one line per cycle."""
        lines = [
            "witness for {!r}: {} cycles, violation at cycle {}".format(
                self.property_name, len(self.inputs), self.violation_cycle
            )
        ]
        for t, words in enumerate(self.inputs[:max_cycles]):
            parts = []
            for name, word in sorted(words.items()):
                width = (
                    len(netlist.inputs[name]) if netlist is not None else None
                )
                if width:
                    parts.append("{}={:0{}x}".format(name, word, (width + 3) // 4))
                else:
                    parts.append("{}={:x}".format(name, word))
            lines.append("  cycle {:>3}: {}".format(t, " ".join(parts)))
        if len(self.inputs) > max_cycles:
            lines.append("  ... ({} more cycles)".format(len(self.inputs) - max_cycles))
        return "\n".join(lines)


def replay(netlist, witness, observe_registers=(), observe_outputs=(), net_probe=None):
    """Replay a witness on the simulator.

    Returns a :class:`~repro.sim.sequential.Trace` over the requested
    registers/outputs; with ``net_probe`` (a net id) also returns the
    per-cycle value of that net, as ``(trace, probe_values)``.
    """
    sim = SequentialSimulator(netlist)
    probe_values = []
    trace = None
    if net_probe is None:
        trace = sim.run(
            witness.inputs,
            observe_registers=observe_registers,
            observe_outputs=observe_outputs,
        )
        return trace
    from repro.sim.sequential import Trace

    trace = Trace(
        registers={name: [] for name in observe_registers},
        outputs={name: [] for name in observe_outputs},
    )
    for words in witness.inputs:
        for name, word in words.items():
            sim.set_input(name, word)
        sim.propagate()
        probe_values.append(sim.net_value(net_probe))
        for name in observe_outputs:
            trace.outputs[name].append(sim.output_value(name))
        sim.clock()
        for name in observe_registers:
            trace.registers[name].append(sim.register_value(name))
    return trace, probe_values


def witness_to_vcd(netlist, witness, path, registers=None, outputs=None):
    """Replay a witness and dump the trace as a VCD waveform file.

    Inputs, the requested registers (default: all) and outputs (default:
    all) appear as signals, so a counterexample can be inspected in any
    waveform viewer. Returns the written path.
    """
    from repro.sim.vcd import VcdWriter

    if registers is None:
        registers = list(netlist.registers)
    if outputs is None:
        outputs = list(netlist.outputs)
    trace = replay(
        netlist, witness, observe_registers=registers,
        observe_outputs=outputs,
    )
    writer = VcdWriter(netlist.name)
    for name in netlist.inputs:
        writer.add_signal(
            "in_" + name,
            len(netlist.inputs[name]),
            [words.get(name, 0) for words in witness.inputs],
        )
    widths = {name: netlist.register_width(name) for name in registers}
    widths.update({name: len(netlist.outputs[name]) for name in outputs})
    writer.add_trace(trace, widths)
    writer.write(path)
    return path


def confirms_violation(netlist, witness, violation_net):
    """True iff replaying the witness drives ``violation_net`` to 1.

    ``violation_net`` is the monitor's combinational violation signal; it
    must be 1 during the witness's violation cycle.
    """
    _trace, probe = replay(netlist, witness, net_probe=violation_net)
    return any(probe)
