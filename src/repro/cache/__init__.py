"""Content-addressed cache of formal check outcomes.

Algorithm 1 re-asks the same (design, register, property) questions over
and over — across the three per-register properties, across retry and
bound-halving attempts, across checkpoint resumes, and across every
bench sweep. This package remembers the answers:

* :mod:`~repro.cache.keys` — canonical fingerprints: a check is named by
  the structural hash of its monitor netlist, its objective/pinned
  inputs, the engine family and the engine configuration.
* :mod:`~repro.cache.store` — a persistent, corruption-tolerant store of
  verdict records under ``--cache-dir``: deepest proved bound, earliest
  violation bound + serialized witness.

Consulting happens in :class:`~repro.runner.supervisor.CheckRunner`
before any worker is spawned; write-back happens inside the worker
(:class:`~repro.runner.tasks.ObjectiveTask`). A hit with a proved bound
covering the request skips the solve entirely; a cached violation
replays its stored witness; a partial hit (proved to ``b < T``) resumes
the engine at ``start_cycle = b + 1`` — sound because the monitors are
sticky and because an engine whose bound loop never runs reports
``unknown``, never a vacuous ``proved``.
"""

from repro.cache.backend import (
    CacheBackend,
    FallbackBackend,
    LocalBackend,
    MemoryBackend,
    NullBackend,
    backend_for,
)
from repro.cache.claims import ClaimRegistry
from repro.cache.keys import CheckKey, check_key
from repro.cache.store import (
    FILENAME,
    SCHEMA_VERSION,
    CacheEntry,
    OutcomeCache,
)

__all__ = [
    "backend_for",
    "CacheBackend",
    "CacheEntry",
    "CheckKey",
    "ClaimRegistry",
    "check_key",
    "FallbackBackend",
    "FILENAME",
    "LocalBackend",
    "MemoryBackend",
    "NullBackend",
    "OutcomeCache",
    "SCHEMA_VERSION",
]
