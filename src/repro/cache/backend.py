"""Pluggable cache backends: one interface over local and shared stores.

PR 3's outcome store and PR 5's claim registry are both *local-directory*
constructs: an append-only JSONL file and ``O_CREAT|O_EXCL`` claim files
under one ``--cache-dir``. The ROADMAP's multi-host direction (many audit
hosts sharing one verdict store, HWLoopSe-style) needs those two concerns
behind a single seam so a network store can slot in without touching the
supervisor or the scheduler. That seam is :class:`CacheBackend`:

``get(key)``
    Merged :class:`~repro.cache.store.CacheEntry` for a fingerprint, or
    ``None`` (a miss).
``put(key, **fields)``
    Append one verdict record (deepest proved bound / earliest violation
    + witness).
``claim(key)`` / ``release(key)``
    Advisory exactly-one-solver coordination (see
    :mod:`repro.cache.claims`); ``claim`` returns ``True`` when this
    backend's owner should solve the fingerprint.

Two invariants every backend must keep, because audits *trust* them:

1. **Cache trouble is never fatal.** A backend may lose records, return
   stale entries, or refuse claims — each costs duplicate solve time,
   never a wrong verdict (cached violations are replay-validated, proofs
   are prefix-closed; see DESIGN.md decision 9). A backend must therefore
   prefer degrading to raising.
2. **Cache calls never stall an audit.** A slow or unreachable shared
   backend must fail fast. :class:`FallbackBackend` enforces this around
   any wrapped backend with per-call deadlines and a circuit breaker,
   degrading to a local backend (or a null one) while the shared side is
   sick, and probing it again after a cooldown.

:class:`LocalBackend` is the default and the reference implementation:
it delegates to the existing :class:`~repro.cache.store.OutcomeCache`
and :class:`~repro.cache.claims.ClaimRegistry`, so single-host behaviour
is unchanged. :class:`MemoryBackend` is a process-local dict — the
simplest "remote" stand-in for tests and fault injection.
"""

from __future__ import annotations

import time

from repro.cache.claims import ClaimRegistry
from repro.cache.store import CacheEntry, OutcomeCache
from repro.errors import CacheBackendError
from repro.obs.tracer import get_tracer


def _digest(key):
    return key if isinstance(key, str) else key.digest


class CacheBackend:
    """Abstract verdict store + claim coordinator (see module docstring).

    Subclasses implement :meth:`get`, :meth:`put`, :meth:`claim` and
    :meth:`release`. The base class provides the session counters and the
    :class:`~repro.runner.execution.CheckExecution`-facing conveniences
    (``lookup`` / ``record_result``) so any backend drops into the places
    an :class:`OutcomeCache` used to go.
    """

    name = "abstract"

    def __init__(self):
        self.counters = {
            "hits": 0,
            "partial_hits": 0,
            "misses": 0,
            "stores": 0,
        }

    # ------------------------------------------------------- abstract ops

    def get(self, key):
        """Merged :class:`CacheEntry` for ``key``, or ``None``."""
        raise NotImplementedError

    def put(self, key, engine="", proved_bound=0, violation_bound=None,
            witness=None, elapsed=0.0):
        """Append one verdict record for ``key``."""
        raise NotImplementedError

    def claim(self, key):
        """Advisory claim: ``True`` when the caller should solve ``key``."""
        raise NotImplementedError

    def release(self, key):
        """Drop a claim this backend's owner holds (no-op otherwise)."""
        raise NotImplementedError

    # ----------------------------------------------------- shared surface

    def lookup(self, key):
        """Alias for :meth:`get` (the :class:`OutcomeCache` spelling)."""
        return self.get(key)

    def record_result(self, key, result, engine="", certified_base=0):
        """Absorb an engine result (same contract as the store's method)."""
        status = getattr(result, "status", None)
        bound = getattr(result, "bound", 0)
        if status == "proved":
            proved, violation = max(bound, certified_base), None
        elif status == "violated":
            proved, violation = certified_base, bound
        elif status == "unknown" and max(bound, certified_base) > 0:
            proved, violation = max(bound, certified_base), None
        else:
            return False
        witness = getattr(result, "witness", None)
        self.put(
            key,
            engine=engine,
            proved_bound=proved,
            violation_bound=violation,
            witness=witness.to_dict() if witness is not None else None,
            elapsed=getattr(result, "elapsed", 0.0),
        )
        return True

    def release_all(self):
        """Release every claim still held (shutdown hook)."""

    def close(self):
        """Release resources; the default just drops claims."""
        self.release_all()


class LocalBackend(CacheBackend):
    """The default backend: one local cache directory.

    Verdicts live in the directory's :class:`OutcomeCache`; claims in its
    :class:`ClaimRegistry`. This is exactly the pre-backend behaviour,
    re-expressed through the interface.
    """

    name = "local"

    def __init__(self, cache_dir, claim_ttl=None):
        super().__init__()
        self.cache_dir = str(cache_dir)
        self.store = OutcomeCache(cache_dir)
        kwargs = {} if claim_ttl is None else {"ttl": claim_ttl}
        self.claims = ClaimRegistry(cache_dir, **kwargs)
        # one counters dict: execution bumps ours, store bumps its own on
        # record(); mirror the store's so `stores` stays accurate
        self.counters = self.store.counters

    def get(self, key):
        return self.store.lookup(key)

    def put(self, key, **fields):
        self.store.record(key, **fields)

    def claim(self, key):
        return self.claims.acquire(key)

    def release(self, key):
        self.claims.release(key)

    def release_all(self):
        self.claims.release_all()


class MemoryBackend(CacheBackend):
    """Dict-backed backend: the minimal shared-store stand-in.

    Used by tests (and the fault injector) as the "remote" side of a
    :class:`FallbackBackend`; also handy as an ephemeral cache for runs
    that want claim coordination without touching disk.
    """

    name = "memory"

    def __init__(self):
        super().__init__()
        self.entries = {}  # digest -> CacheEntry
        self.claimed = set()
        self._owned = set()

    def get(self, key):
        return self.entries.get(_digest(key))

    def put(self, key, engine="", proved_bound=0, violation_bound=None,
            witness=None, elapsed=0.0):
        digest = _digest(key)
        entry = self.entries.get(digest)
        if entry is None:
            entry = self.entries[digest] = CacheEntry(key=digest)
        entry.absorb({
            "engine": engine,
            "proved": proved_bound,
            "vbound": violation_bound,
            "witness": witness,
            "elapsed": elapsed,
        })
        self.counters["stores"] += 1

    def claim(self, key):
        digest = _digest(key)
        if digest in self.claimed:
            return False
        self.claimed.add(digest)
        self._owned.add(digest)
        return True

    def release(self, key):
        digest = _digest(key)
        if digest in self._owned:
            self._owned.discard(digest)
            self.claimed.discard(digest)

    def release_all(self):
        for digest in list(self._owned):
            self.release(digest)


class NullBackend(CacheBackend):
    """Remembers nothing, claims everything: the degraded floor.

    A :class:`FallbackBackend` without a local side degrades to this —
    every lookup misses (duplicate solves possible), every claim is
    granted (the audit proceeds), nothing stalls.
    """

    name = "null"

    def get(self, key):
        return None

    def put(self, key, **fields):
        pass

    def claim(self, key):
        return True

    def release(self, key):
        pass


class FallbackBackend(CacheBackend):
    """Deadline + circuit breaker + degradation around any backend.

    Wraps a ``primary`` backend (typically shared/remote) so that cache
    trouble costs duplicate solves, never a stalled or failed audit:

    * every primary call is timed; a raise *or* a completion slower than
      ``slow_seconds`` counts as a failure;
    * ``failures`` consecutive failures open the circuit: calls go
      straight to ``local`` (no primary attempt) until ``cooldown``
      seconds pass, then one probe call decides whether to close it;
    * a degraded call is answered by the ``local`` backend (default:
      :class:`NullBackend`), and a telemetry point
      (``cache.backend.degraded``) records the switch.

    Verdicts written while degraded go to the local side only — when the
    primary recovers it simply re-solves or re-learns those fingerprints,
    which is safe because the store is append-only and proofs are
    prefix-closed. ``claim``/``release`` degrade to the local registry:
    cross-host dedup is lost while the shared side is down, same-host
    dedup survives.
    """

    name = "fallback"

    def __init__(self, primary, local=None, slow_seconds=0.5, failures=3,
                 cooldown=30.0, clock=time.monotonic):
        super().__init__()
        self.primary = primary
        self.local = local if local is not None else NullBackend()
        self.slow_seconds = slow_seconds
        self.failure_threshold = failures
        self.cooldown = cooldown
        self.clock = clock
        self._consecutive_failures = 0
        self._open_until = None  # clock value; None = circuit closed
        self.stats = {"primary_calls": 0, "primary_failures": 0,
                      "degraded_calls": 0, "breaker_opens": 0,
                      "breaker_closes": 0}

    # ----------------------------------------------------------- breaker

    @property
    def degraded(self):
        """True while calls are being served by the local side."""
        return self._open_until is not None and (
            self.clock() < self._open_until
        )

    def _record_failure(self, op, exc=None):
        self.stats["primary_failures"] += 1
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold and (
            self._open_until is None or self.clock() >= self._open_until
        ):
            self._open_until = self.clock() + self.cooldown
            self.stats["breaker_opens"] += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.point(
                    "cache.backend.degraded",
                    backend=self.primary.name, op=op,
                    error=None if exc is None else str(exc),
                    cooldown=self.cooldown,
                )
                tracer.metrics.counter("cache.backend.degraded").inc()

    def _record_success(self):
        self._consecutive_failures = 0
        if self._open_until is not None:
            self._open_until = None
            self.stats["breaker_closes"] += 1

    def _call(self, op, args, local_op=None, default=None):
        """Try the primary under the breaker; degrade to local on trouble."""
        if self._open_until is not None and self.clock() < self._open_until:
            self.stats["degraded_calls"] += 1
            return self._local_call(local_op or op, args, default)
        started = self.clock()
        try:
            result = getattr(self.primary, op)(*args)
        except Exception as exc:  # noqa: BLE001 - any backend fault degrades
            self._record_failure(op, exc)
            self.stats["degraded_calls"] += 1
            return self._local_call(local_op or op, args, default)
        if self.clock() - started > self.slow_seconds:
            # answered, but too slowly to lean on: count toward the
            # breaker while still using the (valid) answer
            self._record_failure(op)
        else:
            self._record_success()
        self.stats["primary_calls"] += 1
        return result

    def _local_call(self, op, args, default):
        try:
            return getattr(self.local, op)(*args)
        except Exception:  # noqa: BLE001 - the floor never raises
            return default

    # ---------------------------------------------------------------- ops

    def get(self, key):
        return self._call("get", (key,), default=None)

    def put(self, key, **fields):
        # mirror every write locally so degraded-window lookups still see
        # this process's own verdicts
        try:
            self.local.put(key, **fields)
        except Exception:  # noqa: BLE001
            pass
        if not (self._open_until is not None
                and self.clock() < self._open_until):
            started = self.clock()
            try:
                self.primary.put(key, **fields)
            except Exception as exc:  # noqa: BLE001
                self._record_failure("put", exc)
                return
            if self.clock() - started > self.slow_seconds:
                self._record_failure("put")
            else:
                self._record_success()
                self.stats["primary_calls"] += 1

    def claim(self, key):
        return self._call("claim", (key,), default=True)

    def release(self, key):
        # release on both sides: whichever granted the claim forgets it,
        # the other treats it as a foreign-claim no-op
        try:
            self.local.release(key)
        except Exception:  # noqa: BLE001
            pass
        if self._open_until is None or self.clock() >= self._open_until:
            try:
                self.primary.release(key)
            except Exception as exc:  # noqa: BLE001
                self._record_failure("release", exc)

    def release_all(self):
        for side in (self.local, self.primary):
            try:
                side.release_all()
            except Exception:  # noqa: BLE001
                pass


def backend_for(cache_dir):
    """The default backend for a ``--cache-dir`` (``None`` stays ``None``)."""
    if cache_dir is None:
        return None
    if isinstance(cache_dir, CacheBackend):
        return cache_dir
    return LocalBackend(cache_dir)


__all__ = [
    "CacheBackend",
    "CacheBackendError",
    "FallbackBackend",
    "LocalBackend",
    "MemoryBackend",
    "NullBackend",
    "backend_for",
]
