"""Cross-process solve claims: two workers never solve one fingerprint.

The outcome store (:mod:`repro.cache.store`) is already safe for
concurrent *writers* — sub-``PIPE_BUF`` ``O_APPEND`` lines never tear.
What it cannot prevent on its own is two pools (or two workers of one
pool) both *missing* on the same fingerprint and solving it twice: the
second solve is pure waste, and on a shared cache directory serving many
audit processes the waste multiplies.

:class:`ClaimRegistry` adds an advisory claim per fingerprint. A claim
is one file, ``<cache_dir>/claims/<digest>.claim``, created with
``O_CREAT | O_EXCL`` — the POSIX-atomic "exactly one winner" primitive
on a local filesystem (no flock ordering games, no lock server). The
file body records the claimant (pid, wall-clock timestamp, and a host
identity — hostname plus the kernel boot nonce) so other processes can
*break* a claim whose owner died mid-solve. Liveness is checked with
``kill(pid, 0)`` **only for claims written on this same host in this
same boot**: a pid is a host-local name, so for a claim from another
host (a shared NFS cache dir) or from a previous boot the age TTL is
the only breaker — ``kill`` would be interrogating an unrelated local
process that happens to share the number.

Protocol (the scheduler side lives in :mod:`repro.sched.scheduler`):

1. cache lookup misses  →  ``acquire(key)``;
2. acquire *succeeded*  →  re-check the cache (the previous owner may
   have stored and released between our miss and our claim), then solve,
   store, ``release(key)`` — store-before-release is what lets waiters
   trust that a released claim means a readable verdict or a real
   failure;
3. acquire *failed*     →  someone else is solving it: defer the task
   and re-consult the cache before trying again.

Claims are advisory and crash-tolerant by construction: a process that
never releases only costs other processes a TTL/liveness check, never a
wrong verdict, and a deleted ``claims/`` directory merely re-admits the
duplicate work the registry exists to avoid.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from pathlib import Path

DIRNAME = "claims"
SUFFIX = ".claim"

#: Age after which a claim may be broken even if a process with the
#: recorded pid is alive (pid reuse / NFS view of a dead remote host).
DEFAULT_TTL = 6 * 3600.0


def _boot_nonce():
    """A string that changes across reboots of this host (or "")."""
    try:
        with open("/proc/sys/kernel/random/boot_id") as handle:
            return handle.read().strip()
    except OSError:
        return ""


def host_identity():
    """``hostname/boot-nonce`` naming this host *in this boot*.

    Two claims share an identity exactly when their writers' pid
    namespaces are comparable: same machine, same boot. Hostname alone
    is not enough — pids restart from scratch after a reboot, so a
    pre-reboot claim's pid must not be probed with ``kill`` even on the
    "same" host.
    """
    try:
        name = socket.gethostname()
    except OSError:
        name = "?"
    return "{}/{}".format(name, _boot_nonce())


HOST_IDENTITY = host_identity()


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (OSError, OverflowError, TypeError, ValueError):
        return True  # no permission / odd pid: assume alive, TTL decides
    return True


class ClaimRegistry:
    """Advisory per-fingerprint solve claims for one cache directory."""

    def __init__(self, cache_dir, ttl=DEFAULT_TTL):
        self.dir = Path(cache_dir) / DIRNAME
        self.ttl = ttl
        self.counters = {"acquired": 0, "busy": 0, "broken": 0,
                         "released": 0}
        self._owned = set()  # digests this registry holds

    # ------------------------------------------------------------- helpers

    def _path(self, key):
        digest = key if isinstance(key, str) else key.digest
        return self.dir / (digest + SUFFIX), digest

    def _try_create(self, path):
        # The record body is written to a private temp file first and
        # hard-linked into place: link(2) is atomic and fails with
        # EEXIST when the claim is held, so a visible claim file always
        # carries a complete record. Creating the file O_EXCL and
        # writing the body afterwards had a torn window where a
        # contender read an empty record, judged the live claim
        # unreadable-therefore-stale, and broke it — two pools then
        # solved the same fingerprint.
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.dir), suffix=SUFFIX + ".tmp"
            )
        except FileNotFoundError:
            try:
                self.dir.mkdir(parents=True, exist_ok=True)
            except OSError:
                return True  # claims unavailable: solve anyway
            return self._try_create(path)
        except OSError:
            # read-only dir, exotic filesystem: a claim is an
            # optimization, never a correctness gate — proceed to solve,
            # accepting a possible duplicate, rather than stall the audit
            return True
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump({
                    "pid": os.getpid(),
                    "ts": time.time(),
                    "host": HOST_IDENTITY,
                }, handle)
            try:
                os.link(tmp_name, str(path))
            except FileExistsError:
                return False
            except OSError:
                return True  # no hard links here: claims stay advisory
            return True
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    def holder(self, key):
        """The claim record dict for ``key``, or ``None`` when unclaimed
        (or unreadable — an unreadable claim is treated as breakable)."""
        path, _digest = self._path(key)
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def _stale(self, record):
        if record is None:
            return True  # unreadable or vanished: contend for it
        age = time.time() - record.get("ts", 0)
        if self.ttl is not None and age > self.ttl:
            return True
        host = record.get("host")
        if host is not None and host != HOST_IDENTITY:
            # foreign host or pre-reboot claim: its pid means nothing
            # here, so only the TTL above may break it
            return False
        return not _pid_alive(record.get("pid"))

    # ----------------------------------------------------------------- API

    def acquire(self, key):
        """Claim ``key`` for this process; ``True`` on success.

        ``False`` means another live process is (apparently) solving the
        fingerprint right now — defer and re-consult the cache. A stale
        claim (dead pid, or older than the TTL) is broken and contended
        for; losing that race also returns ``False``.
        """
        path, digest = self._path(key)
        if digest in self._owned:
            return False  # we already hold it (duplicate in-flight task)
        if self._try_create(path):
            self._owned.add(digest)
            self.counters["acquired"] += 1
            return True
        if self._stale(self.holder(key)):
            try:
                path.unlink()
            except OSError:
                pass  # another breaker got there first
            self.counters["broken"] += 1
            if self._try_create(path):
                self._owned.add(digest)
                self.counters["acquired"] += 1
                return True
        self.counters["busy"] += 1
        return False

    def release(self, key):
        """Drop a claim this registry holds (no-op for foreign claims)."""
        path, digest = self._path(key)
        if digest not in self._owned:
            return
        self._owned.discard(digest)
        self.counters["released"] += 1
        try:
            path.unlink()
        except OSError:
            pass

    def release_all(self):
        """Release every claim this registry still holds (shutdown)."""
        for digest in list(self._owned):
            self.release(digest)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.release_all()
