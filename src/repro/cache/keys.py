"""Cache keys: from (design, objective, engine, config) to one digest.

A key names one *semantic question*: "can this objective net of this
exact design be driven to 1, under these pinned inputs, as answered by
this engine family?" Everything that can change the answer is part of
the key; nothing else is. Budgets, retry policies, isolation modes and
bound requests are **not** keyed — a ``proved``/``violated`` verdict is
valid at any budget, and the requested bound is compared against the
cached bounds at lookup time (that comparison is what enables partial
resume).

``engine`` is keyed because the engines are different decision
procedures: sharing verdicts *across* engines would be sound (they
answer the same question) but would make a cache-poisoning bug in one
engine silently contaminate the others' results, and would hide
engine-comparison regressions in the bench tables. Conservative beats
clever here.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.netlist.fingerprint import (
    config_fingerprint,
    netlist_fingerprint,
    objective_fingerprint,
)


@dataclass(frozen=True)
class CheckKey:
    """The four fingerprints naming one cacheable check."""

    design_fp: str
    objective_fp: str
    engine: str
    config_fp: str

    @property
    def digest(self):
        h = hashlib.sha256()
        for part in (
            self.design_fp, self.objective_fp, self.engine, self.config_fp
        ):
            h.update(part.encode("utf-8"))
            h.update(b"\x1f")
        return h.hexdigest()


def check_key(netlist, objective_net, engine, pinned_inputs=None,
              use_coi=True):
    """Build the :class:`CheckKey` for one bounded objective check."""
    return CheckKey(
        design_fp=netlist_fingerprint(netlist),
        objective_fp=objective_fingerprint(objective_net, pinned_inputs),
        engine=engine,
        config_fp=config_fingerprint(engine, use_coi=use_coi),
    )
