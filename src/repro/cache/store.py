"""Persistent content-addressed store of check outcomes.

One cache directory holds one append-only JSON-lines file,
``outcomes.jsonl``. Each line is a *record*: one verdict fragment for
one :class:`~repro.cache.keys.CheckKey` digest — a deepest proved bound,
or a violation bound with its serialized witness. Records accumulate
(the same key may be proved deeper and deeper across runs); readers
merge them into one :class:`CacheEntry` per key:

* ``proved_bound`` — the max over all proved records (a proof to bound
  ``b`` subsumes every shallower proof: sticky monitors make "UNSAT at
  frame b" cover all earlier cycles);
* ``violation_bound`` / ``witness`` — the *earliest* recorded violation
  (the most useful counterexample: it satisfies every request whose
  bound reaches it).

Append-only JSON lines were chosen over sqlite deliberately: worker
processes write back concurrently, and a single sub-PIPE_BUF ``O_APPEND``
write per record is atomic on POSIX without any locking. Torn or
corrupt lines (power loss, version skew, hand edits) are *skipped and
counted*, never fatal — a damaged cache degrades to a miss, it does not
crash an audit. ``gc()`` compacts the log back to one merged record per
key and drops unreadable lines.

The file carries a schema version per record; records from a different
schema are ignored (again: a miss, not an error).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.obs.tracer import get_tracer

SCHEMA_VERSION = 1
FILENAME = "outcomes.jsonl"


@dataclass
class CacheEntry:
    """Merged view of every record for one key."""

    key: str
    engine: str = ""
    proved_bound: int = 0
    violation_bound: int | None = None
    witness: dict | None = None  # serialized Witness (see Witness.to_dict)
    records: int = 0
    elapsed: float = 0.0  # total solve seconds the records represent

    @property
    def has_violation(self):
        return self.violation_bound is not None

    def absorb(self, record):
        """Fold one raw record dict into this entry."""
        self.records += 1
        self.engine = record.get("engine", self.engine)
        self.elapsed += record.get("elapsed", 0.0) or 0.0
        self.proved_bound = max(
            self.proved_bound, int(record.get("proved", 0) or 0)
        )
        vbound = record.get("vbound")
        if vbound is not None and (
            self.violation_bound is None or vbound < self.violation_bound
        ):
            self.violation_bound = int(vbound)
            self.witness = record.get("witness")


def _key_digest(key):
    """Accept a CheckKey or a raw hex digest string."""
    return key if isinstance(key, str) else key.digest


class OutcomeCache:
    """Reader/writer for one cache directory.

    Reads are lazy and refresh automatically when the underlying file
    changes (worker processes append concurrently); writes never require
    a read. Session counters (``hits`` / ``partial_hits`` / ``misses`` /
    ``stores``) are maintained by the callers that consult the cache —
    see :class:`~repro.runner.supervisor.CheckRunner`.
    """

    def __init__(self, cache_dir):
        self.dir = Path(cache_dir)
        self.path = self.dir / FILENAME
        self._entries = None  # key digest -> CacheEntry
        self._skipped = 0
        self._loaded_stat = None
        self.counters = {
            "hits": 0,
            "partial_hits": 0,
            "misses": 0,
            "stores": 0,
        }

    # ---------------------------------------------------------------- read

    def _file_stat(self):
        try:
            st = self.path.stat()
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def _load(self):
        stat = self._file_stat()
        if self._entries is not None and stat == self._loaded_stat:
            return
        entries = {}
        skipped = 0
        if stat is not None:
            try:
                raw = self.path.read_bytes()
            except OSError:
                raw = b""
            # decode per line, not whole-file: a writer killed mid-append
            # can tear the tail inside a multi-byte UTF-8 sequence, and a
            # whole-file decode would throw away every intact record
            # before it
            for raw_line in raw.splitlines():
                if not raw_line.strip():
                    continue
                try:
                    record = json.loads(raw_line.decode("utf-8").strip())
                except (UnicodeDecodeError, ValueError):
                    skipped += 1
                    continue
                if (
                    not isinstance(record, dict)
                    or record.get("v") != SCHEMA_VERSION
                    or not isinstance(record.get("key"), str)
                ):
                    skipped += 1
                    continue
                key = record["key"]
                entry = entries.get(key)
                if entry is None:
                    entry = entries[key] = CacheEntry(key=key)
                try:
                    entry.absorb(record)
                except (TypeError, ValueError):
                    skipped += 1
        self._entries = entries
        self._skipped = skipped
        self._loaded_stat = stat

    def lookup(self, key):
        """Merged :class:`CacheEntry` for a key, or ``None`` (a miss)."""
        self._load()
        return self._entries.get(_key_digest(key))

    def __len__(self):
        self._load()
        return len(self._entries)

    # --------------------------------------------------------------- write

    def record(self, key, engine="", proved_bound=0, violation_bound=None,
               witness=None, elapsed=0.0, stats=None):
        """Append one verdict record (atomic single-line append)."""
        record = {
            "v": SCHEMA_VERSION,
            "key": _key_digest(key),
            "engine": engine,
            "proved": int(proved_bound),
            "vbound": None if violation_bound is None else int(violation_bound),
            "witness": witness,
            "elapsed": float(elapsed),
            "ts": time.time(),
        }
        if stats:
            record["stats"] = stats
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self.dir.mkdir(parents=True, exist_ok=True)
        # one write(2) per line; O_APPEND keeps concurrent workers' lines
        # from interleaving as long as each line stays under PIPE_BUF
        with open(self.path, "a") as handle:
            handle.write(line)
        self.counters["stores"] += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.point(
                "cache.store",
                key=record["key"][:12],
                engine=engine,
                proved=record["proved"],
                vbound=record["vbound"],
            )
            tracer.metrics.counter("cache.stores").inc()
        if self._entries is not None:
            entry = self._entries.setdefault(
                record["key"], CacheEntry(key=record["key"])
            )
            entry.absorb(record)
            self._loaded_stat = self._file_stat()

    def record_result(self, key, result, engine="", certified_base=0):
        """Absorb an engine result object into the store.

        ``certified_base`` is the proved bound already certified *below*
        the result's start cycle (the cached bound a resumed check
        continued from); it is what makes a resumed run's deepest bound
        a sound absolute claim. Only conclusive facts are stored:

        * ``proved``  -> proved bound (covers all shallower bounds);
        * ``violated`` -> violation bound + witness (no proof claim —
          a portfolio engine may jump straight to a deep frame);
        * ``unknown`` -> the partially proved prefix, if any.
        """
        status = getattr(result, "status", None)
        bound = getattr(result, "bound", 0)
        if status == "proved":
            proved = max(bound, certified_base)
            violation = None
        elif status == "violated":
            proved = certified_base
            violation = bound
        elif status == "unknown" and max(bound, certified_base) > 0:
            proved = max(bound, certified_base)
            violation = None
        else:
            return False
        witness = getattr(result, "witness", None)
        self.record(
            key,
            engine=engine,
            proved_bound=proved,
            violation_bound=violation,
            witness=witness.to_dict() if witness is not None else None,
            elapsed=getattr(result, "elapsed", 0.0),
        )
        return True

    # ----------------------------------------------------------- lifecycle

    def stats(self):
        """Store-level statistics (for ``repro cache stats``)."""
        self._load()
        proved = sum(
            1 for e in self._entries.values() if e.proved_bound > 0
        )
        violated = sum(
            1 for e in self._entries.values() if e.has_violation
        )
        engines = {}
        for entry in self._entries.values():
            engines[entry.engine] = engines.get(entry.engine, 0) + 1
        stat = self._file_stat()
        return {
            "path": str(self.path),
            "entries": len(self._entries),
            "records": sum(e.records for e in self._entries.values()),
            "proved_entries": proved,
            "violation_entries": violated,
            "engines": engines,
            "deepest_proved": max(
                (e.proved_bound for e in self._entries.values()), default=0
            ),
            "skipped_records": self._skipped,
            "file_bytes": stat[1] if stat else 0,
            "solve_seconds_recorded": sum(
                e.elapsed for e in self._entries.values()
            ),
            "session": dict(self.counters),
        }

    def gc(self):
        """Compact: one merged record per key, bad lines dropped.

        Returns ``(records_before, records_after, skipped)``.
        """
        self._load()
        before = sum(e.records for e in self._entries.values())
        skipped = self._skipped
        if self._file_stat() is None:
            return (0, 0, 0)
        lines = []
        for entry in self._entries.values():
            lines.append(json.dumps({
                "v": SCHEMA_VERSION,
                "key": entry.key,
                "engine": entry.engine,
                "proved": entry.proved_bound,
                "vbound": entry.violation_bound,
                "witness": entry.witness,
                "elapsed": entry.elapsed,
                "ts": time.time(),
            }, separators=(",", ":")))
        self.dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.dir), prefix=FILENAME, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write("".join(line + "\n" for line in lines))
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._entries = None  # force reload on next read
        self._load()
        after = sum(e.records for e in self._entries.values())
        return (before, after, skipped)

    def clear(self):
        """Delete the store file; returns the number of entries dropped."""
        self._load()
        dropped = len(self._entries)
        try:
            self.path.unlink()
        except OSError:
            pass
        self._entries = None
        self._loaded_stat = None
        return dropped
