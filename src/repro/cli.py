"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``audit``
    Run Algorithm 1 on a bundled benchmark design::

        python -m repro audit --design mc8051-t800 --engine bmc
        python -m repro audit --design risc-t100 --engine atpg \\
            --max-cycles 24 --budget 120 --check-bypass

    Resource supervision (see README "Resource limits & graceful
    degradation"): ``--workers 1`` isolates each check in a worker
    process, ``--check-timeout`` hard-kills hung checks, ``--retries``
    re-runs crashed/exhausted checks, and ``--resume ckpt.json``
    checkpoints completed registers so an interrupted audit picks up
    where it left off::

        python -m repro audit --design aes-t1200 --workers 1 \\
            --check-timeout 30 --retries 2 --resume aes_audit.json

    ``--jobs N`` runs the audit's independent property checks on a
    persistent pool of N worker processes (see README "Parallel
    audits"); the report is byte-identical to the serial one::

        python -m repro audit --design mc8051-t800 --jobs 4

``bench``
    Audit many designs on **one** scheduler pool and score every
    verdict against the bundled ground truth (exit 1 on any
    mismatch)::

        python -m repro bench --jobs 4
        python -m repro bench --design risc-t100 --design mc8051-t800 \\
            --jobs 4 --max-cycles 12

    ``--jobs``, ``--cache-dir`` and ``--trace`` are spelled the same
    on ``audit``, ``bench`` and ``lint`` (one shared parent parser).

``lint``
    Run the static lint pre-pass (see README "Static lint pre-pass")::

        python -m repro lint --design mc8051-t800
        python -m repro lint --design aes --json report.json \\
            --sarif report.sarif --disable unread-net

    Exits 1 when any finding reaches ``--fail-on`` (default
    ``suspicious``) — same convention as ``audit``, so a Trojan-shaped
    structure is a nonzero exit. ``--lint-prioritize`` on ``audit``
    runs this pass first and audits flagged registers before clean
    ones, attaching the static evidence to each finding.

``ift``
    Run the static information-flow taint screen (see README
    "Information-flow screening")::

        python -m repro ift --design mc8051-t800
        python -m repro ift --sarif all.sarif --json -

    Zero solver calls: taint sources are the write-port nets a
    register's ValidWays spec does not document, and findings mean
    taint reached the critical register, a primary output, or another
    register's write enable. ``--sarif`` writes one merged multi-run
    SARIF document holding the lint *and* IFT runs of the selected
    designs (``--no-lint`` for IFT runs only). ``--ift`` on ``audit``
    fuses the screen into Algorithm 1: flagged registers are audited
    first, taint findings attach as ``ift_evidence``, and an IFT hit
    the dynamic checks cannot reproduce becomes a ``leakage_suspect``
    status.

``diff``
    Run the golden-model differential screen (see README "Differential
    screening")::

        python -m repro diff --design risc-t100
        python -m repro diff --sarif all.sarif --json -

    Zero solver calls: each critical register's ValidWays spec is
    compiled into an executable reference next-state function, the
    implementation is driven with seeded lane-parallel stimulus, and a
    finding means the register departed from *every* documented way's
    prediction on some cycle (with a replayable VCD witness attached).
    ``--sarif`` writes one merged multi-run SARIF document holding the
    lint, IFT *and* diff runs of the selected designs (``--no-lint`` /
    ``--no-ift`` to drop the companion passes). ``--diff`` on ``audit``
    fuses the screen into Algorithm 1: divergence findings attach as
    ``diff_evidence``, flagged registers are audited first, and a
    divergence the dynamic checks cannot corroborate becomes a
    ``differential_suspect`` status.

``cache``
    Inspect or maintain a check-outcome cache directory (see README
    "Outcome cache")::

        python -m repro audit --design aes-t1200 --cache-dir .repro-cache
        python -m repro cache stats --cache-dir .repro-cache
        python -m repro cache gc --cache-dir .repro-cache

``trace``
    Summarize a structured-telemetry trace written by
    ``audit --trace`` (see README "Telemetry & tracing")::

        python -m repro audit --design mc8051-t800 --trace audit.jsonl
        python -m repro trace summarize audit.jsonl

    ``summarize`` prints the per-phase wall-clock tree, the slowest
    checks, and the cache/retry/kill tallies. ``audit --profile``
    additionally wraps every check attempt in ``cProfile`` and drops
    pstats files next to the trace.

``serve`` / ``submit`` / ``jobs``
    Run audits as a crash-tolerant service (see README "Audit
    service"): ``serve`` starts an HTTP front end over a durable job
    queue with a pool of lease-holding worker threads; ``submit``
    enqueues an audit and optionally waits for the verdict; ``jobs``
    lists jobs or streams one job's progress events::

        python -m repro serve --queue-dir ./queue --port 8630
        python -m repro submit --design mc8051-t800 --wait
        python -m repro jobs --job job-0001 --events

    Jobs survive worker crashes and service restarts: the queue
    journals every transition, leases expire by TTL, and a job that
    keeps killing its workers is dead-lettered with its partial
    findings attached.

``list`` / ``list-designs``
    Show every resolvable design with its provenance. Every
    ``--design`` flag in this CLI goes through
    :func:`repro.frontend.load_design`, so any command also accepts a
    ``*.design.json`` bundle or a ``*.v`` Verilog file (with its
    ``<stem>.spec.json`` sidecar) in place of a built-in name::

        python -m repro list-designs
        python -m repro audit --design out/risc.v
        python -m repro lint --design corpus/risc-comb-trigger-00000.design.json

``corpus``
    Generate and screen seeded Trojan-mutant corpora (see README
    "Design ingestion & corpus fuzzing"). ``generate`` derives mutants
    from the base designs — Trojan injections with in-band ground
    truth, DeTrust-style restructurings, and clean structural growth —
    as ``*.design.json`` bundles; ``run`` fans them through the
    lint+IFT+diff portfolio and scores per-mutator recall against the
    carried ground truth (exit 1 on any trojaned miss or clean false
    positive)::

        python -m repro corpus generate --seed 7 -n 40 --out corpus/
        python -m repro corpus run corpus/ --jobs 4 --json report.json
        python -m repro corpus stats corpus/

``export``
    Write a design's structural Verilog (with ``// repro:`` structural
    pragmas), its ValidWays spec sidecar and its assertion file —
    ``--bundle`` adds the ``*.design.json`` form. The ``.v`` +
    ``.spec.json`` pair re-imports fingerprint-identically::

        python -m repro export --design risc --out out_dir/ --bundle

``stats``
    Print netlist statistics for a design.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import AuditConfig, TrojanDetector
from repro.frontend import design_names, load_design


def _load(source):
    """Resolve any design source through the frontend, or exit.

    Accepts everything :func:`repro.frontend.load_design` does — a
    built-in name, a ``*.design.json`` bundle, or a ``*.v`` file — and
    converts the structured :class:`~repro.errors.FrontendError` (with
    its candidate list) into the CLI's exit-with-message convention.
    """
    from repro.errors import FrontendError

    try:
        return load_design(source)
    except FrontendError as exc:
        raise SystemExit(str(exc))


def cmd_list(args, out=sys.stdout):
    from repro.frontend import list_designs

    for name, origin, info in list_designs():
        print("{:18s} {:8s} {}".format(name, origin, info), file=out)
    for source in getattr(args, "design", None) or ():
        loaded = _load(source)
        spec = loaded.spec
        if spec.trojan is None:
            info = "clean ({} critical registers)".format(
                len(spec.critical)
            )
        else:
            info = "{} — {}".format(spec.trojan.name, spec.trojan.payload)
        print("{:18s} {:8s} {}".format(source, loaded.origin, info),
              file=out)
    return 0


def cmd_stats(args, out=sys.stdout):
    from repro.netlist import stats

    netlist, _spec = _load(args.design)
    print(stats(netlist), file=out)
    return 0


def _lint_config_from_args(args):
    from repro.lint import LintConfig

    suppressions = []
    for entry in args.suppress or []:
        rule_glob, sep, subject_glob = entry.partition(":")
        if not sep:
            raise SystemExit(
                "--suppress takes RULE_GLOB:SUBJECT_GLOB, got {!r}".format(
                    entry
                )
            )
        suppressions.append((rule_glob, subject_glob))
    return LintConfig(
        wide_comparator_width=args.wide_comparator_width,
        counter_influence_limit=args.counter_influence_limit,
        max_depth=args.max_depth_lint,
        disabled=args.disable or [],
        suppressions=suppressions,
    )


def _lint_one(design, config):
    """Lint one bundled design; returns plain data (fork-Pool friendly)."""
    from repro.lint import Linter

    netlist, spec = _load(design)
    report = Linter(config=config).run(netlist, spec, design=design)
    return {
        "design": design,
        "summary": report.summary(),
        "json": report.to_json(),
        "severities": [f.severity for f in report.findings],
        "findings": len(report.findings),
        "elapsed": report.elapsed,
        "report": report,
    }


def cmd_lint(args, out=sys.stdout):
    from repro.lint import LintConfigError, severity_rank, write_sarif

    designs = args.design
    if args.cache_dir:
        raise SystemExit(
            "lint runs no property checks, so it has no outcome cache; "
            "--cache-dir applies to audit/bench"
        )
    try:
        config = _lint_config_from_args(args)
    except LintConfigError as exc:
        raise SystemExit(str(exc))
    if args.sarif and len(designs) > 1:
        raise SystemExit("--sarif writes one log; pass a single --design")
    jobs = args.jobs or 1
    try:
        if jobs > 1 and len(designs) > 1:
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(min(jobs, len(designs))) as pool:
                results = pool.starmap(
                    _lint_one, [(d, config) for d in designs]
                )
        else:
            results = [_lint_one(d, config) for d in designs]
    except LintConfigError as exc:
        raise SystemExit(str(exc))
    if args.trace:
        from repro.obs.tracer import Tracer

        tracer = Tracer(args.trace)
        try:
            for res in results:
                tracer.end(tracer.begin(
                    "lint", design=res["design"],
                    findings=res["findings"], elapsed=res["elapsed"],
                ))
        finally:
            tracer.close()
    if args.json:
        if len(designs) == 1:
            payload = results[0]["json"]
        else:
            import json as json_mod

            payload = json_mod.dumps(
                {r["design"]: json_mod.loads(r["json"]) for r in results},
                indent=2,
            )
        if args.json == "-":
            print(payload, file=out)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload)
                handle.write("\n")
            print("wrote", args.json, file=out)
    if args.sarif:
        write_sarif(args.sarif, results[0]["report"])
        print("wrote", args.sarif, file=out)
    if not args.json or args.json != "-":
        for res in results:
            print(res["summary"], file=out)
    floor = severity_rank(args.fail_on)
    failing = [
        sev
        for res in results
        for sev in res["severities"]
        if severity_rank(sev) >= floor
    ]
    return 1 if failing else 0


def _ift_one(design, with_lint):
    """IFT-screen one bundled design; returns plain data (fork-Pool
    friendly). With ``with_lint``, the default-config lint pass runs too
    so the SARIF export can merge both modalities' runs."""
    from repro.ift import analyze_design

    netlist, spec = _load(design)
    lint_report = None
    if with_lint:
        from repro.lint import lint_design

        lint_report = lint_design(netlist, spec, design=design)
    report = analyze_design(netlist, spec, design=design)
    return {
        "design": design,
        "summary": report.summary(),
        "json": report.to_json(),
        "severities": [f.severity for f in report.findings],
        "findings": len(report.findings),
        "elapsed": report.elapsed,
        "report": report,
        "lint_report": lint_report,
    }


def cmd_ift(args, out=sys.stdout):
    from repro.lint import severity_rank

    designs = args.design or design_names()
    if args.cache_dir:
        raise SystemExit(
            "ift runs no property checks, so it has no outcome cache; "
            "--cache-dir applies to audit/bench"
        )
    with_lint = bool(args.sarif) and not args.no_lint
    jobs = args.jobs or 1
    if jobs > 1 and len(designs) > 1:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(min(jobs, len(designs))) as pool:
            results = pool.starmap(
                _ift_one, [(d, with_lint) for d in designs]
            )
    elif args.trace:
        # serial + traced: install a real tracer so the screen's own
        # ift / ift.register spans land in the trace tree
        from repro.obs.tracer import Tracer, tracing

        tracer = Tracer(args.trace)
        try:
            with tracing(tracer):
                results = [_ift_one(d, with_lint) for d in designs]
        finally:
            tracer.close()
    else:
        results = [_ift_one(d, with_lint) for d in designs]
    if args.trace and jobs > 1 and len(designs) > 1:
        from repro.obs.tracer import Tracer

        tracer = Tracer(args.trace)
        try:
            for res in results:
                tracer.end(tracer.begin(
                    "ift", design=res["design"],
                    findings=res["findings"], elapsed=res["elapsed"],
                ))
        finally:
            tracer.close()
    if args.json:
        if len(designs) == 1:
            payload = results[0]["json"]
        else:
            import json as json_mod

            payload = json_mod.dumps(
                {r["design"]: json_mod.loads(r["json"]) for r in results},
                indent=2,
            )
        if args.json == "-":
            print(payload, file=out)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload)
                handle.write("\n")
            print("wrote", args.json, file=out)
    if args.sarif:
        from repro.ift.sarif import merged_sarif
        from repro.report.sarif import write_log

        lint_reports = [
            r["lint_report"] for r in results if r["lint_report"] is not None
        ]
        write_log(
            args.sarif,
            merged_sarif([r["report"] for r in results], lint_reports),
        )
        print("wrote", args.sarif, file=out)
    if not args.json or args.json != "-":
        for res in results:
            print(res["summary"], file=out)
    floor = severity_rank(args.fail_on)
    failing = [
        sev
        for res in results
        for sev in res["severities"]
        if severity_rank(sev) >= floor
    ]
    return 1 if failing else 0


def _diff_one(design, with_lint, with_ift):
    """Diff-screen one bundled design; returns plain data (fork-Pool
    friendly). With ``with_lint``/``with_ift``, the companion screens
    run too so the SARIF export can merge all three modalities' runs."""
    from repro.diff import analyze_design

    netlist, spec = _load(design)
    lint_report = None
    if with_lint:
        from repro.lint import lint_design

        lint_report = lint_design(netlist, spec, design=design)
    ift_report = None
    if with_ift:
        from repro.ift import analyze_design as ift_analyze

        ift_report = ift_analyze(netlist, spec, design=design)
    report = analyze_design(netlist, spec, design=design)
    return {
        "design": design,
        "summary": report.summary(),
        "json": report.to_json(),
        "severities": [f.severity for f in report.findings],
        "findings": len(report.findings),
        "elapsed": report.elapsed,
        "report": report,
        "lint_report": lint_report,
        "ift_report": ift_report,
    }


def cmd_diff(args, out=sys.stdout):
    from repro.lint import severity_rank

    designs = args.design or design_names()
    if args.cache_dir:
        raise SystemExit(
            "diff runs no property checks, so it has no outcome cache; "
            "--cache-dir applies to audit/bench"
        )
    with_lint = bool(args.sarif) and not args.no_lint
    with_ift = bool(args.sarif) and not args.no_ift
    jobs = args.jobs or 1
    if jobs > 1 and len(designs) > 1:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(min(jobs, len(designs))) as pool:
            results = pool.starmap(
                _diff_one, [(d, with_lint, with_ift) for d in designs]
            )
    elif args.trace:
        # serial + traced: install a real tracer so the screen's own
        # diff / diff.phase spans land in the trace tree
        from repro.obs.tracer import Tracer, tracing

        tracer = Tracer(args.trace)
        try:
            with tracing(tracer):
                results = [
                    _diff_one(d, with_lint, with_ift) for d in designs
                ]
        finally:
            tracer.close()
    else:
        results = [_diff_one(d, with_lint, with_ift) for d in designs]
    if args.trace and jobs > 1 and len(designs) > 1:
        from repro.obs.tracer import Tracer

        tracer = Tracer(args.trace)
        try:
            for res in results:
                tracer.end(tracer.begin(
                    "diff", design=res["design"],
                    findings=res["findings"], elapsed=res["elapsed"],
                ))
        finally:
            tracer.close()
    if args.json:
        if len(designs) == 1:
            payload = results[0]["json"]
        else:
            import json as json_mod

            payload = json_mod.dumps(
                {r["design"]: json_mod.loads(r["json"]) for r in results},
                indent=2,
            )
        if args.json == "-":
            print(payload, file=out)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload)
                handle.write("\n")
            print("wrote", args.json, file=out)
    if args.sarif:
        from repro.diff.sarif import merged_sarif
        from repro.report.sarif import write_log

        lint_reports = [
            r["lint_report"] for r in results if r["lint_report"] is not None
        ]
        ift_reports = [
            r["ift_report"] for r in results if r["ift_report"] is not None
        ]
        write_log(
            args.sarif,
            merged_sarif(
                [r["report"] for r in results],
                ift_reports=ift_reports,
                lint_reports=lint_reports,
            ),
        )
        print("wrote", args.sarif, file=out)
    if not args.json or args.json != "-":
        for res in results:
            print(res["summary"], file=out)
    floor = severity_rank(args.fail_on)
    failing = [
        sev
        for res in results
        for sev in res["severities"]
        if severity_rank(sev) >= floor
    ]
    return 1 if failing else 0


def cmd_audit(args, out=sys.stdout):
    from repro.errors import CheckpointError
    from repro.runner import CheckRunner

    netlist, spec = _load(args.design)
    registers = args.register or None
    if args.workers < 0:
        raise SystemExit("--workers must be >= 0")
    if args.jobs is not None and args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.retries < 0:
        raise SystemExit("--retries must be >= 0")
    if args.check_timeout is not None and args.check_timeout <= 0:
        raise SystemExit("--check-timeout must be positive")
    if args.profile and not args.trace:
        raise SystemExit("--profile needs --trace (dumps live next to it)")
    profile_dir = "{}.profiles".format(args.trace) if args.profile else None
    runner = CheckRunner.configure(
        workers=args.workers,
        check_timeout=args.check_timeout,
        retries=args.retries,
        profile_dir=profile_dir,
    )
    lint_report = None
    if args.lint_prioritize:
        from repro.lint import lint_design

        lint_report = lint_design(netlist, spec, design=args.design)
        print(
            "lint pre-pass: {} finding{} in {:.2f}s; priority: {}".format(
                len(lint_report.findings),
                "" if len(lint_report.findings) == 1 else "s",
                lint_report.elapsed,
                ", ".join(
                    lint_report.prioritize(registers or list(spec.critical))
                ),
            ),
            file=out,
        )
    ift_report = None
    if args.ift:
        from repro.ift import analyze_design

        ift_report = analyze_design(netlist, spec, design=args.design)
        flagged = ift_report.tainted_registers
        print(
            "ift pre-pass: {} taint finding{} in {:.2f}s{}".format(
                len(ift_report.findings),
                "" if len(ift_report.findings) == 1 else "s",
                ift_report.elapsed,
                "; flagged: {}".format(", ".join(flagged))
                if flagged
                else "",
            ),
            file=out,
        )
    diff_report = None
    if args.diff:
        from repro.diff import analyze_design as diff_analyze

        diff_report = diff_analyze(netlist, spec, design=args.design)
        divergent = diff_report.divergent_registers
        print(
            "diff pre-pass: {} divergence finding{} in {:.2f}s{}".format(
                len(diff_report.findings),
                "" if len(diff_report.findings) == 1 else "s",
                diff_report.elapsed,
                "; divergent: {}".format(", ".join(divergent))
                if divergent
                else "",
            ),
            file=out,
        )
    cache_dir = None if args.no_cache else args.cache_dir
    config = AuditConfig(
        max_cycles=args.max_cycles,
        engine=args.engine,
        functional=not args.no_functional,
        check_pseudo_critical=args.check_pseudo_critical,
        check_bypass=args.check_bypass,
        time_budget=args.budget,
        lint_report=lint_report,
        ift_report=ift_report,
        diff_report=diff_report,
        cache_dir=cache_dir,
        share_cones=args.share_cones,
        trace=args.trace,
        jobs=args.jobs,
    )
    detector = TrojanDetector(netlist, spec, config=config, runner=runner)
    try:
        report = detector.run(registers=registers, checkpoint=args.resume)
    except CheckpointError as exc:
        raise SystemExit("cannot resume: {}".format(exc))
    print(report.summary(), file=out)
    if args.trace:
        print("trace written to {}".format(args.trace), file=out)
        if profile_dir:
            print("profiles written to {}/".format(profile_dir), file=out)
    if cache_dir is not None:
        counters = runner.cache_counters
        print(
            "cache: {hits} hit(s), {partial_hits} partial, "
            "{misses} miss(es)".format(**counters),
            file=out,
        )
    if args.witness:
        for finding in report.findings.values():
            if finding.corrupted:
                print(finding.corruption.witness.format(netlist), file=out)
    return 1 if report.trojan_found else 0


def cmd_bench(args, out=sys.stdout):
    import time as time_mod

    from repro.bench.harness import audit_sweep
    from repro.runner import CheckRunner

    if args.jobs is not None and args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    names = args.design or design_names()
    designs = []
    for name in names:
        netlist, spec = _load(name)
        designs.append((name, netlist, spec))
    runner = CheckRunner.configure(
        check_timeout=args.check_timeout, retries=args.retries
    )
    import contextlib

    start = time_mod.perf_counter()
    with contextlib.ExitStack() as stack:
        if args.trace:
            from repro.obs.tracer import Tracer, tracing

            tracer = Tracer(args.trace)
            stack.callback(tracer.close)
            stack.enter_context(tracing(tracer))
        rows = audit_sweep(
            designs,
            jobs=args.jobs,
            max_cycles=args.max_cycles,
            engine=args.engine,
            time_budget=args.budget,
            check_pseudo_critical=args.check_pseudo_critical,
            check_bypass=args.check_bypass,
            cache_dir=args.cache_dir,
            runner=runner,
            ift=args.ift,
            diff=args.diff,
        )
    wall = time_mod.perf_counter() - start
    if args.json:
        import json as json_mod

        print(json_mod.dumps({
            "jobs": args.jobs,
            "wall_seconds": wall,
            "rows": [
                {
                    "design": row.label,
                    "trojan_found": row.trojan_found,
                    "expected": row.expected,
                    "match": row.match,
                    "status": row.status,
                    "elapsed": row.elapsed,
                    "registers": row.registers,
                    "ift": {
                        "elapsed": row.ift.elapsed,
                        "findings": row.ift.findings,
                        "suspicious": row.ift.suspicious,
                        "tainted_registers": row.ift.tainted_registers,
                        "max_rounds": row.ift.max_rounds,
                        "solver_calls": row.ift.solver_calls,
                    } if row.ift is not None else None,
                    "diff": {
                        "elapsed": row.diff.elapsed,
                        "findings": row.diff.findings,
                        "suspicious": row.diff.suspicious,
                        "divergent_registers": row.diff.divergent_registers,
                        "cycles": row.diff.cycles,
                        "lanes": row.diff.lanes,
                        "solver_calls": row.diff.solver_calls,
                    } if row.diff is not None else None,
                }
                for row in rows
            ],
        }, indent=2), file=out)
    else:
        for row in rows:
            verdict = "TROJAN" if row.trojan_found else "clean"
            expected = "TROJAN" if row.expected else "clean"
            marker = "ok" if row.match else "MISMATCH"
            ift_extra = ""
            if row.ift is not None:
                ift_extra = (
                    " ift[{} finding(s), {:.3f}s, {} solver call(s)]"
                ).format(
                    row.ift.findings, row.ift.elapsed,
                    row.ift.solver_calls,
                )
            diff_extra = ""
            if row.diff is not None:
                diff_extra = (
                    " diff[{} finding(s), {:.3f}s, {} divergent "
                    "register(s)]"
                ).format(
                    row.diff.findings, row.diff.elapsed,
                    len(row.diff.divergent_registers),
                )
            print(
                "{:18s} {:7s} (expected {:7s}) {:9s} {:8.2f}s "
                "{:2d} register(s) [{}]{}{}".format(
                    row.label, verdict, expected, marker, row.elapsed,
                    row.registers, row.status, ift_extra, diff_extra,
                ),
                file=out,
            )
        print(
            "{} design(s) in {:.2f}s wall ({} mismatch(es), jobs={})".format(
                len(rows), wall, sum(1 for r in rows if not r.match),
                args.jobs or "serial",
            ),
            file=out,
        )
    if args.trace:
        print("trace written to {}".format(args.trace), file=out)
    return 1 if any(not row.match for row in rows) else 0


def cmd_trace(args, out=sys.stdout):
    from repro.obs.summary import render, summarize

    if args.trace_command == "summarize":
        try:
            summary = summarize(args.trace_file, top=args.top)
        except OSError as exc:
            raise SystemExit("cannot read trace: {}".format(exc))
        if args.json:
            import json

            print(
                json.dumps(summary, indent=2, sort_keys=True, default=str),
                file=out,
            )
        else:
            render(summary, out)
        return 0
    raise SystemExit("unknown trace command {!r}".format(args.trace_command))


def cmd_cache(args, out=sys.stdout):
    from repro.cache import OutcomeCache

    cache = OutcomeCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        if args.json:
            import json

            print(json.dumps(stats, indent=2, sort_keys=True), file=out)
        else:
            print(
                "{} entr{} ({} violated), deepest proved bound {}, "
                "{:.2f}s of solve time banked, {} bytes".format(
                    stats["entries"],
                    "y" if stats["entries"] == 1 else "ies",
                    stats["violation_entries"],
                    stats["deepest_proved"],
                    stats["solve_seconds_recorded"],
                    stats["file_bytes"],
                ),
                file=out,
            )
        return 0
    if args.cache_command == "gc":
        before, after, skipped = cache.gc()
        print(
            "compacted {} record(s) to {} entr{} ({} unreadable "
            "line(s) dropped)".format(
                before, after, "y" if after == 1 else "ies", skipped
            ),
            file=out,
        )
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        print("removed {} entr{}".format(
            removed, "y" if removed == 1 else "ies"), file=out)
        return 0
    raise SystemExit("unknown cache command {!r}".format(args.cache_command))


def cmd_serve(args, out=sys.stdout):
    from repro.runner.faultinject import ServiceFaultPlan
    from repro.serve import AuditService, run_server

    plan = None
    if args.inject:
        try:
            plan = ServiceFaultPlan.parse(args.inject)
        except ValueError as exc:
            raise SystemExit(str(exc))

    def ready(address):
        print("serving on http://{}:{} (queue: {})".format(
            address[0], address[1], args.queue_dir), file=out)
        out.flush()

    service = AuditService(
        args.queue_dir,
        workers=args.workers or 2,
        lease_ttl=args.lease_ttl,
        max_leases=args.max_leases,
        fault_plan=plan,
    )
    return run_server(service, host=args.host, port=args.port, ready=ready)


def cmd_submit(args, out=sys.stdout):
    from repro.errors import ServiceError
    from repro.serve import ServiceClient

    options = {}
    if args.engine:
        options["engine"] = args.engine
    if args.max_cycles is not None:
        options["max_cycles"] = args.max_cycles
    if args.budget is not None:
        options["time_budget"] = args.budget
    if args.check_bypass:
        options["check_bypass"] = True
    if args.check_pseudo_critical:
        options["check_pseudo_critical"] = True
    client = ServiceClient(args.url)
    try:
        job_id = client.submit(args.design, options)
        print(job_id, file=out)
        if args.wait:
            job = client.wait(job_id, timeout=args.timeout)
            result = job.get("result") or {}
            print("{}: {} ({})".format(
                job_id,
                "TROJAN" if result.get("trojan_found") else "clean",
                job["state"]), file=out)
            return 0 if job["state"] == "done" else 1
    except ServiceError as exc:
        raise SystemExit(str(exc))
    return 0


def cmd_jobs(args, out=sys.stdout):
    import json as json_mod

    from repro.errors import ServiceError
    from repro.serve import ServiceClient

    client = ServiceClient(args.url)
    try:
        if args.job and args.events:
            events, _cursor = client.events(args.job, after=args.after)
            for event in events:
                print(json_mod.dumps(event, default=str), file=out)
        elif args.job:
            print(json_mod.dumps(client.job(args.job), indent=2,
                                 default=str), file=out)
        else:
            for row in client.jobs():
                print("{:10s} {:8s} {} attempt(s)".format(
                    row["id"], row["state"], row["attempts"]), file=out)
    except ServiceError as exc:
        raise SystemExit(str(exc))
    return 0


def _export_stem(source):
    """A filesystem-friendly stem for an export: built-in names pass
    through; path sources drop directories and known suffixes."""
    import os

    stem = os.path.basename(str(source))
    for suffix in (".design.json", ".spec.json", ".v", ".sv"):
        if stem.endswith(suffix):
            return stem[: -len(suffix)]
    return stem


def cmd_export(args, out=sys.stdout):
    from pathlib import Path

    from repro.frontend import save_spec_sidecar, spec_sidecar_path
    from repro.hdl import write_verilog
    from repro.properties import render_spec

    loaded = _load(args.design)
    netlist, spec = loaded
    target = Path(args.out)
    target.mkdir(parents=True, exist_ok=True)
    stem = _export_stem(args.design)
    verilog_path = target / "{}.v".format(stem)
    verilog_path.write_text(write_verilog(netlist))
    print("wrote", verilog_path, file=out)
    # the sidecar makes the .v re-loadable with its ValidWays spec:
    # `repro audit --design out/<stem>.v` resolves both files
    sidecar = spec_sidecar_path(str(verilog_path))
    save_spec_sidecar(sidecar, spec)
    print("wrote", sidecar, file=out)
    blocks = [render_spec(s) for s in spec.critical.values()]
    props_path = target / "{}_props.sv".format(stem)
    props_path.write_text("\n".join(blocks))
    print("wrote", props_path, file=out)
    if args.bundle:
        from repro.corpus import save_bundle

        bundle_path = target / "{}.design.json".format(stem)
        save_bundle(
            str(bundle_path), netlist, spec,
            provenance={"origin": loaded.origin, "source": str(args.design)},
        )
        print("wrote", bundle_path, file=out)
    return 0


def cmd_corpus(args, out=sys.stdout):
    from repro.errors import CorpusError

    try:
        if args.corpus_command == "generate":
            return _corpus_generate(args, out)
        if args.corpus_command == "run":
            return _corpus_run(args, out)
        if args.corpus_command == "stats":
            return _corpus_stats(args, out)
    except CorpusError as exc:
        raise SystemExit(str(exc))
    raise SystemExit(
        "unknown corpus command {!r}".format(args.corpus_command)
    )


def _corpus_generate(args, out):
    from repro.corpus import CorpusConfig, generate_corpus

    defaults = CorpusConfig()
    config = CorpusConfig(
        seed=args.seed,
        count=args.count,
        bases=tuple(args.base) if args.base else defaults.bases,
        mutators=tuple(args.mutator) if args.mutator else defaults.mutators,
    )
    manifest = generate_corpus(config, args.out)
    trojaned = sum(1 for e in manifest["mutants"] if e["trojaned"])
    print(
        "wrote {} bundle(s) to {} (seed {}, {} trojaned / {} clean)".format(
            len(manifest["mutants"]), args.out, config.seed,
            trojaned, len(manifest["mutants"]) - trojaned,
        ),
        file=out,
    )
    return 0


def _corpus_run(args, out):
    from repro.corpus import (
        RunConfig,
        detection_gate,
        dumps_report,
        run_corpus,
        score_results,
    )

    modalities = tuple(
        m for m in ("lint", "ift", "diff")
        if not getattr(args, "no_{}".format(m))
    )
    if not modalities and not args.audit:
        raise SystemExit("every screening modality is disabled")
    config = RunConfig(
        jobs=args.jobs or 1,
        fail_on=args.fail_on,
        modalities=modalities,
        audit=args.audit,
        audit_max_cycles=args.audit_max_cycles,
    )
    rows = run_corpus(args.corpus_dir, config)
    report = score_results(rows, config)
    payload = dumps_report(report)
    summary = out
    if args.json:
        if args.json == "-":
            out.write(payload)
            # keep stdout machine-parsable; summary moves to stderr
            summary = sys.stderr
        else:
            with open(args.json, "w", encoding="ascii") as handle:
                handle.write(payload)
            print("wrote", args.json, file=out)
    totals = report["totals"]
    print(
        "{} mutant(s): {}/{} trojaned detected (recall {}), "
        "{} false positive(s) over {} clean (fp rate {})".format(
            totals["mutants"], totals["detected"], totals["trojaned"],
            totals["recall"], totals["false_positives"], totals["clean"],
            totals["fp_rate"],
        ),
        file=summary,
    )
    for name in report["missed"]:
        print("MISSED  {}".format(name), file=summary)
    for name in report["false_positives"]:
        print("FALSE+  {}".format(name), file=summary)
    if args.no_enforce:
        return 0
    return detection_gate(report)


def _corpus_stats(args, out):
    import json as json_mod
    import os

    from repro.corpus.mutate import MANIFEST_NAME
    from repro.errors import CorpusError

    manifest_path = os.path.join(args.corpus_dir, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="ascii") as handle:
            manifest = json_mod.load(handle)
    except (OSError, ValueError) as exc:
        raise CorpusError(
            "unreadable corpus manifest {}: {}".format(manifest_path, exc)
        )
    entries = manifest.get("mutants", [])
    config = manifest.get("config", {})
    per_mutator = {}
    for entry in entries:
        per_mutator.setdefault(entry["mutator"], []).append(entry)
    print(
        "corpus of {} mutant(s), seed {}, bases: {}".format(
            len(entries), config.get("seed"),
            ", ".join(config.get("bases", [])),
        ),
        file=out,
    )
    for mutator in sorted(per_mutator):
        group = per_mutator[mutator]
        trojaned = sum(1 for e in group if e["trojaned"])
        print(
            "  {:16s} {:3d} mutant(s) ({} trojaned, {} clean)".format(
                mutator, len(group), trojaned, len(group) - trojaned
            ),
            file=out,
        )
    return 0


def _shared_parent():
    """Flags spelled identically on every command that supports them.

    ``audit``, ``bench`` and ``lint`` all accept ``--jobs``,
    ``--cache-dir`` and ``--trace`` with the same spelling and meaning —
    one parent parser, not three hand-copied declarations that drift.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("shared options")
    group.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="run work on N parallel workers (audit/bench: "
                            "one persistent check-worker pool; lint: one "
                            "process per design)")
    group.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="consult and populate a content-addressed "
                            "check-outcome cache in DIR: re-audits of an "
                            "unchanged design skip solved checks, deeper "
                            "re-audits resume from the cached bound")
    group.add_argument("--trace", metavar="FILE.jsonl", default=None,
                       help="write a structured JSONL telemetry trace "
                            "here (see 'repro trace summarize')")
    return parent


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Formal detection of data-corrupting hardware Trojans "
                    "(DAC'15 reproduction)",
    )
    shared = _shared_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list", aliases=["list-designs"],
        help="list resolvable designs with provenance",
    )
    p_list.add_argument("--design", action="append", metavar="SOURCE",
                        help="also resolve and describe this external "
                             "source — a *.design.json bundle or a "
                             "*.v file (repeatable)")

    p_stats = sub.add_parser("stats", help="netlist statistics")
    p_stats.add_argument("--design", required=True)

    p_audit = sub.add_parser("audit", help="run Algorithm 1",
                             parents=[shared])
    p_audit.add_argument("--design", required=True)
    p_audit.add_argument("--engine", default="bmc",
                         choices=["bmc", "atpg", "atpg-backward",
                                  "atpg-podem"])
    p_audit.add_argument("--max-cycles", type=int, default=16)
    p_audit.add_argument("--budget", type=float, default=120.0,
                         help="seconds per property check")
    p_audit.add_argument("--register", action="append",
                         help="audit only this register (repeatable)")
    p_audit.add_argument("--check-pseudo-critical", action="store_true")
    p_audit.add_argument("--check-bypass", action="store_true")
    p_audit.add_argument("--no-functional", action="store_true",
                         help="authorization-only Eq.(2), skip value checks")
    p_audit.add_argument("--witness", action="store_true",
                         help="print counterexample input sequences")
    p_audit.add_argument("--workers", type=int, default=0,
                         help="run each property check in an isolated "
                              "worker process (0 = in-process)")
    p_audit.add_argument("--check-timeout", type=float, default=None,
                         help="hard wall-clock seconds per check attempt; "
                              "a hung engine is killed, not waited on "
                              "(needs --workers)")
    p_audit.add_argument("--retries", type=int, default=0,
                         help="re-run a crashed/exhausted check up to N "
                              "extra times")
    p_audit.add_argument("--resume", metavar="CHECKPOINT.json", default=None,
                         help="persist completed register findings here and "
                              "resume from them if the file exists")
    p_audit.add_argument("--lint-prioritize", action="store_true",
                         help="run the static lint pre-pass first, audit "
                              "flagged registers before clean-looking ones "
                              "and attach lint evidence to findings")
    p_audit.add_argument("--ift", action="store_true",
                         help="run the static information-flow screen "
                              "first: taint evidence attaches to findings, "
                              "flagged registers are audited earlier, and "
                              "an IFT hit the dynamic checks cannot "
                              "reproduce is reported as leakage_suspect")
    p_audit.add_argument("--diff", action="store_true",
                         help="run the golden-model differential screen "
                              "first: divergence evidence attaches to "
                              "findings, flagged registers are audited "
                              "earlier, and a divergence the dynamic "
                              "checks cannot corroborate is reported as "
                              "differential_suspect")
    p_audit.add_argument("--no-cache", action="store_true",
                         help="ignore --cache-dir (one-off override)")
    p_audit.add_argument("--share-cones", action="store_true",
                         help="batch each register's pseudo-critical "
                              "tracking checks onto one shared unrolling "
                              "(BMC only, runs inline)")
    p_audit.add_argument("--profile", action="store_true",
                         help="wrap every check attempt in cProfile and "
                              "store pstats dumps next to the trace "
                              "(needs --trace; slows the engines)")

    p_bench = sub.add_parser(
        "bench", parents=[shared],
        help="audit many designs on one scheduler, scored vs ground truth",
    )
    p_bench.add_argument("--design", action="append",
                         help="audit this design (repeatable; default: "
                              "every bundled design)")
    p_bench.add_argument("--engine", default="bmc",
                         choices=["bmc", "atpg", "atpg-backward",
                                  "atpg-podem"])
    p_bench.add_argument("--max-cycles", type=int, default=16)
    p_bench.add_argument("--budget", type=float, default=120.0,
                         help="seconds per property check")
    p_bench.add_argument("--check-pseudo-critical", action="store_true")
    p_bench.add_argument("--check-bypass", action="store_true")
    p_bench.add_argument("--check-timeout", type=float, default=None,
                         help="hard wall-clock seconds per check attempt")
    p_bench.add_argument("--retries", type=int, default=0,
                         help="re-run a crashed/exhausted check up to N "
                              "extra times")
    p_bench.add_argument("--json", action="store_true",
                         help="machine-readable output")
    p_bench.add_argument("--ift", action="store_true",
                         help="run the static IFT screen per design, fuse "
                              "it into each audit and add its timing/"
                              "verdict figures to every row")
    p_bench.add_argument("--diff", action="store_true",
                         help="run the golden-model differential screen "
                              "per design, fuse it into each audit and "
                              "add its timing/verdict figures to every "
                              "row")

    p_lint = sub.add_parser("lint", parents=[shared],
                            help="static structural lint pre-pass")
    p_lint.add_argument("--design", required=True, action="append",
                        help="lint this design (repeatable)")
    p_lint.add_argument("--json", metavar="PATH",
                        help="write the JSON report here ('-' for stdout)")
    p_lint.add_argument("--sarif", metavar="PATH",
                        help="write a SARIF 2.1.0 log here")
    p_lint.add_argument("--disable", action="append", metavar="RULE",
                        help="disable a rule by name (repeatable)")
    p_lint.add_argument("--suppress", action="append",
                        metavar="RULE_GLOB:SUBJECT_GLOB",
                        help="suppress findings whose rule and subject "
                             "match the globs (repeatable)")
    p_lint.add_argument("--fail-on", default="suspicious",
                        choices=["info", "warn", "suspicious", "error"],
                        help="exit 1 when any finding is at least this "
                             "severe (default: suspicious)")
    p_lint.add_argument("--wide-comparator-width", type=int, default=16,
                        help="wide-comparator rule threshold")
    p_lint.add_argument("--counter-influence-limit", type=int, default=4,
                        help="counter-feeds-payload-mux breadth limit")
    p_lint.add_argument("--max-depth-lint", type=int, default=48,
                        metavar="DEPTH",
                        help="excessive-depth rule ceiling")

    p_ift = sub.add_parser(
        "ift", parents=[shared],
        help="static information-flow taint screen (no solver)",
    )
    p_ift.add_argument("--design", action="append",
                       help="screen this design (repeatable; default: "
                            "every bundled design)")
    p_ift.add_argument("--json", metavar="PATH",
                       help="write the JSON report here ('-' for stdout)")
    p_ift.add_argument("--sarif", metavar="PATH",
                       help="write a SARIF 2.1.0 log here — one merged "
                            "multi-run document with the lint runs of the "
                            "same designs unless --no-lint")
    p_ift.add_argument("--no-lint", action="store_true",
                       help="with --sarif: emit only the IFT runs, skip "
                            "the lint pass")
    p_ift.add_argument("--fail-on", default="suspicious",
                       choices=["info", "warn", "suspicious", "error"],
                       help="exit 1 when any taint finding is at least "
                            "this severe (default: suspicious)")

    p_diff = sub.add_parser(
        "diff", parents=[shared],
        help="golden-model differential screen (no solver)",
    )
    p_diff.add_argument("--design", action="append",
                        help="screen this design (repeatable; default: "
                             "every bundled design)")
    p_diff.add_argument("--json", metavar="PATH",
                        help="write the JSON report here ('-' for stdout)")
    p_diff.add_argument("--sarif", metavar="PATH",
                        help="write a SARIF 2.1.0 log here — one merged "
                             "multi-run document with the lint and IFT "
                             "runs of the same designs unless --no-lint/"
                             "--no-ift")
    p_diff.add_argument("--no-lint", action="store_true",
                        help="with --sarif: skip the lint pass")
    p_diff.add_argument("--no-ift", action="store_true",
                        help="with --sarif: skip the IFT pass")
    p_diff.add_argument("--fail-on", default="suspicious",
                        choices=["info", "warn", "suspicious", "error"],
                        help="exit 1 when any divergence finding is at "
                             "least this severe (default: suspicious)")

    p_cache = sub.add_parser(
        "cache", help="inspect or maintain a check-outcome cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    c_stats = cache_sub.add_parser("stats", help="entry counts and totals")
    c_stats.add_argument("--cache-dir", required=True, metavar="DIR")
    c_stats.add_argument("--json", action="store_true",
                         help="machine-readable output")
    c_gc = cache_sub.add_parser(
        "gc", help="compact superseded and unreadable records"
    )
    c_gc.add_argument("--cache-dir", required=True, metavar="DIR")
    c_clear = cache_sub.add_parser("clear", help="drop all cached outcomes")
    c_clear.add_argument("--cache-dir", required=True, metavar="DIR")

    p_trace = sub.add_parser(
        "trace", help="inspect structured telemetry traces"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    t_sum = trace_sub.add_parser(
        "summarize",
        help="per-phase wall-clock tree, slowest checks, cache/retry "
             "tallies",
    )
    t_sum.add_argument("trace_file", metavar="FILE.jsonl")
    t_sum.add_argument("--top", type=int, default=10,
                       help="how many slowest checks to list (default 10)")
    t_sum.add_argument("--json", action="store_true",
                       help="machine-readable output")

    p_serve = sub.add_parser(
        "serve",
        help="run the crash-tolerant audit service (durable job queue "
             "+ JSON API; see README 'Audit service')",
    )
    p_serve.add_argument("--queue-dir", required=True, metavar="DIR",
                         help="journal + snapshot + per-job trace files "
                              "live here; restarting with the same DIR "
                              "resumes unfinished jobs")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8630,
                         help="0 picks an ephemeral port (printed on "
                              "startup)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="concurrent audit worker threads")
    p_serve.add_argument("--lease-ttl", type=float, default=30.0,
                         help="seconds a job lease survives without a "
                              "heartbeat before it is reclaimed")
    p_serve.add_argument("--max-leases", type=int, default=3,
                         help="attempts before a job is dead-lettered")
    p_serve.add_argument("--inject", action="append", metavar="FAULT",
                         help="deterministic service fault "
                              "KIND[:MATCH[:TIMES]], e.g. "
                              "kill-lease-holder:*@mid (repeatable; "
                              "for chaos testing)")

    p_submit = sub.add_parser("submit",
                              help="submit an audit job to a running "
                                   "service")
    p_submit.add_argument("--url", default="http://127.0.0.1:8630")
    p_submit.add_argument("--design", required=True)
    p_submit.add_argument("--engine", default=None,
                          choices=["bmc", "atpg", "atpg-backward",
                                   "atpg-podem"])
    p_submit.add_argument("--max-cycles", type=int, default=None)
    p_submit.add_argument("--budget", type=float, default=None)
    p_submit.add_argument("--check-bypass", action="store_true")
    p_submit.add_argument("--check-pseudo-critical", action="store_true")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until the job is terminal; exit 1 "
                               "if it dead-letters")
    p_submit.add_argument("--timeout", type=float, default=300.0,
                          help="--wait deadline in seconds")

    p_jobs = sub.add_parser("jobs", help="inspect a running service")
    p_jobs.add_argument("--url", default="http://127.0.0.1:8630")
    p_jobs.add_argument("--job", default=None, metavar="JOB_ID",
                        help="show one job in full instead of the list")
    p_jobs.add_argument("--events", action="store_true",
                        help="with --job: stream its trace events")
    p_jobs.add_argument("--after", type=int, default=0,
                        help="with --events: skip the first N events")

    p_export = sub.add_parser("export", help="write Verilog + assertions")
    p_export.add_argument("--design", required=True)
    p_export.add_argument("--out", default="export")
    p_export.add_argument("--bundle", action="store_true",
                          help="also write the design as a "
                               "*.design.json bundle")

    p_corpus = sub.add_parser(
        "corpus",
        help="generate and screen seeded Trojan-mutant corpora",
    )
    corpus_sub = p_corpus.add_subparsers(dest="corpus_command",
                                         required=True)
    cg = corpus_sub.add_parser(
        "generate", help="write a seeded mutant corpus of bundles"
    )
    cg.add_argument("--seed", type=int, default=0,
                    help="corpus seed; same seed, same bytes")
    cg.add_argument("-n", "--count", type=int, default=40,
                    help="number of mutants (default 40)")
    cg.add_argument("--out", default="corpus", metavar="DIR",
                    help="output directory (default ./corpus)")
    cg.add_argument("--base", action="append", metavar="DESIGN",
                    help="mutate this base design (repeatable; any "
                         "load_design source; default: risc, mc8051, "
                         "router)")
    cg.add_argument("--mutator", action="append", metavar="NAME",
                    help="use this mutator (repeatable; default: the "
                         "non-evasive set)")
    cr = corpus_sub.add_parser(
        "run",
        help="screen a corpus through lint+IFT+diff and score recall",
    )
    cr.add_argument("corpus_dir", metavar="DIR")
    cr.add_argument("--jobs", type=int, default=None, metavar="N",
                    help="screen N mutants in parallel worker processes")
    cr.add_argument("--fail-on", default="suspicious",
                    choices=["info", "warn", "suspicious", "error"],
                    help="a finding at least this severe flags the "
                         "mutant (default: suspicious)")
    cr.add_argument("--no-lint", action="store_true",
                    help="skip the lint modality")
    cr.add_argument("--no-ift", action="store_true",
                    help="skip the IFT modality")
    cr.add_argument("--no-diff", action="store_true",
                    help="skip the differential modality")
    cr.add_argument("--audit", action="store_true",
                    help="also run Algorithm 1 per mutant on one "
                         "scheduler pool (catches the evasive mutators "
                         "the static screens may miss)")
    cr.add_argument("--audit-max-cycles", type=int, default=12)
    cr.add_argument("--json", metavar="PATH",
                    help="write the detection-rate report here "
                         "('-' for stdout); byte-identical across "
                         "reruns of the same corpus")
    cr.add_argument("--no-enforce", action="store_true",
                    help="exit 0 even on trojaned misses or clean "
                         "false positives (exploratory runs with "
                         "evasive mutators)")
    cs = corpus_sub.add_parser(
        "stats", help="summarize a corpus manifest"
    )
    cs.add_argument("corpus_dir", metavar="DIR")
    return parser


def main(argv=None, out=sys.stdout):
    args = build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "list-designs": cmd_list,
        "corpus": cmd_corpus,
        "stats": cmd_stats,
        "audit": cmd_audit,
        "bench": cmd_bench,
        "cache": cmd_cache,
        "trace": cmd_trace,
        "export": cmd_export,
        "lint": cmd_lint,
        "ift": cmd_ift,
        "diff": cmd_diff,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "jobs": cmd_jobs,
    }[args.command]
    return handler(args, out=out)


if __name__ == "__main__":
    sys.exit(main())
