"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``audit``
    Run Algorithm 1 on a bundled benchmark design::

        python -m repro audit --design mc8051-t800 --engine bmc
        python -m repro audit --design risc-t100 --engine atpg \\
            --max-cycles 24 --budget 120 --check-bypass

``list``
    Show the bundled designs and their ground-truth Trojans.

``export``
    Write a design's structural Verilog and its assertion file::

        python -m repro export --design risc --out out_dir/

``stats``
    Print netlist statistics for a design.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import TrojanDetector
from repro.designs import build_aes, build_mc8051, build_risc
from repro.designs.router import build_router, router_redirect_trojan
from repro.designs.trojans import (
    aes_t700,
    aes_t800,
    aes_t1200,
    mc8051_t400,
    mc8051_t700,
    mc8051_t800,
    risc_figure1,
    risc_t100,
    risc_t300,
    risc_t400,
)

DESIGNS = {
    "risc": build_risc,
    "mc8051": build_mc8051,
    "aes": build_aes,
    "router": build_router,
    "risc-t100": risc_t100,
    "risc-t300": risc_t300,
    "risc-t400": risc_t400,
    "risc-fig1": risc_figure1,
    "mc8051-t400": mc8051_t400,
    "mc8051-t700": mc8051_t700,
    "mc8051-t800": mc8051_t800,
    "aes-t700": aes_t700,
    "aes-t800": aes_t800,
    "aes-t1200": aes_t1200,
    "router-redirect": router_redirect_trojan,
}


def build_design(name):
    try:
        factory = DESIGNS[name]
    except KeyError:
        raise SystemExit(
            "unknown design {!r}; try: {}".format(
                name, ", ".join(sorted(DESIGNS))
            )
        )
    return factory()


def cmd_list(_args, out=sys.stdout):
    for name in sorted(DESIGNS):
        _netlist, spec = build_design(name)
        if spec.trojan is None:
            print("{:18s} clean ({} critical registers)".format(
                name, len(spec.critical)), file=out)
        else:
            print("{:18s} {} — {}".format(
                name, spec.trojan.name, spec.trojan.payload), file=out)
    return 0


def cmd_stats(args, out=sys.stdout):
    from repro.netlist import stats

    netlist, _spec = build_design(args.design)
    print(stats(netlist), file=out)
    return 0


def cmd_audit(args, out=sys.stdout):
    netlist, spec = build_design(args.design)
    registers = args.register or None
    detector = TrojanDetector(
        netlist,
        spec,
        max_cycles=args.max_cycles,
        engine=args.engine,
        functional=not args.no_functional,
        check_pseudo_critical=args.check_pseudo_critical,
        check_bypass=args.check_bypass,
        time_budget=args.budget,
    )
    report = detector.run(registers=registers)
    print(report.summary(), file=out)
    if args.witness:
        for finding in report.findings.values():
            if finding.corrupted:
                print(finding.corruption.witness.format(netlist), file=out)
    return 1 if report.trojan_found else 0


def cmd_export(args, out=sys.stdout):
    from pathlib import Path

    from repro.hdl import write_verilog
    from repro.properties import render_spec

    netlist, spec = build_design(args.design)
    target = Path(args.out)
    target.mkdir(parents=True, exist_ok=True)
    verilog_path = target / "{}.v".format(args.design)
    verilog_path.write_text(write_verilog(netlist))
    print("wrote", verilog_path, file=out)
    blocks = [render_spec(s) for s in spec.critical.values()]
    props_path = target / "{}_props.sv".format(args.design)
    props_path.write_text("\n".join(blocks))
    print("wrote", props_path, file=out)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Formal detection of data-corrupting hardware Trojans "
                    "(DAC'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list bundled designs")

    p_stats = sub.add_parser("stats", help="netlist statistics")
    p_stats.add_argument("--design", required=True)

    p_audit = sub.add_parser("audit", help="run Algorithm 1")
    p_audit.add_argument("--design", required=True)
    p_audit.add_argument("--engine", default="bmc",
                         choices=["bmc", "atpg", "atpg-backward",
                                  "atpg-podem"])
    p_audit.add_argument("--max-cycles", type=int, default=16)
    p_audit.add_argument("--budget", type=float, default=120.0,
                         help="seconds per property check")
    p_audit.add_argument("--register", action="append",
                         help="audit only this register (repeatable)")
    p_audit.add_argument("--check-pseudo-critical", action="store_true")
    p_audit.add_argument("--check-bypass", action="store_true")
    p_audit.add_argument("--no-functional", action="store_true",
                         help="authorization-only Eq.(2), skip value checks")
    p_audit.add_argument("--witness", action="store_true",
                         help="print counterexample input sequences")

    p_export = sub.add_parser("export", help="write Verilog + assertions")
    p_export.add_argument("--design", required=True)
    p_export.add_argument("--out", default="export")
    return parser


def main(argv=None, out=sys.stdout):
    args = build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "stats": cmd_stats,
        "audit": cmd_audit,
        "export": cmd_export,
    }[args.command]
    return handler(args, out=out)


if __name__ == "__main__":
    sys.exit(main())
