"""Algorithm 1: the Trojan detector and its backends."""

from repro.core.backends import ENGINES, make_engine, run_objective
from repro.core.detector import AuditConfig, TrojanDetector
from repro.core.registers import all_registers, pseudo_critical_candidates
from repro.core.report import (
    DetectionReport,
    RegisterFinding,
    scrub_volatile,
)

__all__ = [
    "ENGINES",
    "make_engine",
    "run_objective",
    "AuditConfig",
    "TrojanDetector",
    "all_registers",
    "pseudo_critical_candidates",
    "DetectionReport",
    "RegisterFinding",
    "scrub_volatile",
]
