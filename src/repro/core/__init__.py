"""Algorithm 1: the Trojan detector and its backends."""

from repro.core.backends import ENGINES, make_engine, run_objective
from repro.core.detector import TrojanDetector
from repro.core.registers import all_registers, pseudo_critical_candidates
from repro.core.report import DetectionReport, RegisterFinding

__all__ = [
    "ENGINES",
    "make_engine",
    "run_objective",
    "TrojanDetector",
    "all_registers",
    "pseudo_critical_candidates",
    "DetectionReport",
    "RegisterFinding",
]
