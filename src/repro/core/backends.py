"""Uniform interface over the formal engines.

Algorithm 1 and the benchmark harness run the same monitor circuits
through either engine:

* ``"bmc"``  — the incremental CDCL-based bounded model checker
  (:class:`~repro.bmc.engine.BmcEngine`), the paper's Cadence-SMV role.
* ``"atpg"`` — the staged portfolio (backward justification + PODEM,
  :class:`~repro.atpg.portfolio.PortfolioJustifier`), the
  paper's TetraMAX full-sequential role.
* ``"atpg-backward"`` — the backward line-justification engine
  (:class:`~repro.atpg.sequential.SequentialJustifier`), kept as an
  ablation of the implication machinery.

All three consume a 1-bit sticky objective net and return result objects
sharing the ``status`` / ``bound`` / ``witness`` / ``detected`` /
``elapsed`` / ``peak_memory`` shape.
"""

from __future__ import annotations

import inspect

from repro.atpg.podem_seq import PodemJustifier
from repro.atpg.portfolio import PortfolioJustifier
from repro.atpg.sequential import SequentialJustifier
from repro.bmc.engine import BmcEngine
from repro.errors import EngineArgumentError, ReproError

ENGINES = ("bmc", "atpg", "atpg-podem", "atpg-backward")


def validate_check_kwargs(name, engine, check_kwargs):
    """Reject check kwargs the engine's ``check`` does not accept.

    Engines differ in their knobs (``conflict_budget`` is BMC-only,
    ``backtrack_budget`` is ATPG-only); without validation a misspelled
    or misrouted kwarg surfaces as a ``TypeError`` from deep inside the
    engine — or vanishes entirely behind a ``**kwargs`` signature.
    """
    signature = inspect.signature(engine.check)
    accepts_var_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in signature.parameters.values()
    )
    if accepts_var_kwargs:
        return
    accepted = {
        p.name
        for p in signature.parameters.values()
        if p.kind
        in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
        and p.name != "self"
    }
    unknown = sorted(set(check_kwargs) - accepted)
    if unknown:
        raise EngineArgumentError(
            "engine {!r} does not accept check argument{} {}; accepted "
            "arguments: {}".format(
                name,
                "" if len(unknown) == 1 else "s",
                ", ".join(repr(k) for k in unknown),
                ", ".join(sorted(accepted - {"max_cycles"})),
            )
        )


def make_engine(name, netlist, objective_net, property_name="",
                pinned_inputs=None, use_coi=True, session=None):
    """Instantiate a formal engine by name.

    ``session`` is a :class:`~repro.bmc.session.SessionObjective`
    execution hint. It only applies to the BMC engine — the other
    engines keep no reusable solver state worth sharing — and it
    redirects the check onto the session's warm solver and stacked
    netlist clone. Verdicts and witnesses are identical either way;
    the hint trades encoding/search time, not meaning.
    """
    if name == "bmc":
        if session is not None:
            return session
        return BmcEngine(
            netlist,
            objective_net,
            property_name=property_name,
            pinned_inputs=pinned_inputs,
            use_coi=use_coi,
        )
    if name == "atpg":
        return PortfolioJustifier(
            netlist,
            objective_net,
            property_name=property_name,
            pinned_inputs=pinned_inputs,
            use_coi=use_coi,
        )
    if name == "atpg-podem":
        return PodemJustifier(
            netlist,
            objective_net,
            property_name=property_name,
            pinned_inputs=pinned_inputs,
            use_coi=use_coi,
        )
    if name == "atpg-backward":
        return SequentialJustifier(
            netlist,
            objective_net,
            property_name=property_name,
            pinned_inputs=pinned_inputs,
            use_coi=use_coi,
        )
    raise ReproError(
        "unknown engine {!r}; pick one of {}".format(name, ENGINES)
    )


def run_objective(name, netlist, objective_net, max_cycles, property_name="",
                  pinned_inputs=None, use_coi=True, session=None,
                  **check_kwargs):
    """One-shot: build the named engine and run its bounded check.

    When ``session`` is given (BMC only) the check runs on the
    session's persistent solver instead of a cold engine; ``netlist``
    and ``objective_net`` still describe the standalone monitor build
    and keep defining the check's identity (cache fingerprints).
    """
    engine = make_engine(
        name,
        netlist,
        objective_net,
        property_name=property_name,
        pinned_inputs=pinned_inputs,
        use_coi=use_coi,
        session=session,
    )
    validate_check_kwargs(name, engine, check_kwargs)
    return engine.check(max_cycles, **check_kwargs)
