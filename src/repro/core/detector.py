"""Algorithm 1: detecting data corruption, pseudo-critical and bypass
registers.

The paper's complete flow (Section 4.3)::

    for each critical register R:
        for each register P in the design:
            if CheckPseudoCritical(D, R, P, V, T): promote P to critical
        if CheckForCorruption(D, R, V, T):  -> "R is corrupted", witness
        if CheckBypass(D, R, V, T):         -> "R is bypassed", witness
    "No data-corruption Trojan found for T clock cycles"

:class:`TrojanDetector` implements exactly that, on either formal backend.
Every counterexample is replayed on the logic simulator before it is
reported (the ``witness_confirmed`` flag), so a detection never rests on
the solver alone.

Every property check is routed through a supervised
:class:`~repro.runner.supervisor.CheckRunner`: a solver blow-up, an
engine crash or a :class:`~repro.errors.ResourceBudgetExceeded` becomes
a structured partial verdict on the finding (the paper's "largest bound
reached" degradation, Sections 3.2-3.3) instead of aborting the audit,
and multi-register audits can checkpoint completed findings to disk and
resume after an interruption.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, fields, replace

from repro.bmc.witness import confirms_violation
from repro.core.registers import pseudo_critical_candidates
from repro.errors import CheckpointWriteError, ReproError
from repro.obs.tracer import Tracer, get_tracer, tracing
from repro.core.report import DetectionReport, RegisterFinding
from repro.properties.monitors import (
    build_corruption_monitor,
    build_tracking_monitor,
)
from repro.properties.valid_ways import RegisterSpec
from repro.runner import (
    AuditCheckpoint,
    BypassTask,
    CheckOutcome,
    CheckRunner,
    ObjectiveTask,
)
from repro.runner.checkpoint import (
    warn_checkpoint_lost as _warn_checkpoint_lost,
)


@dataclass(frozen=True)
class AuditConfig:
    """Everything that shapes one Algorithm 1 audit, in one object.

    :class:`TrojanDetector` grew a dozen keyword arguments one PR at a
    time; this dataclass is their consolidated home —
    ``TrojanDetector(netlist, spec, config=AuditConfig(...))``. The old
    per-argument spellings still work (they build or override an
    ``AuditConfig`` under the hood) but emit a ``DeprecationWarning``.

    Fields mirror the historical arguments exactly; see
    :class:`TrojanDetector` for their semantics. The one new field is
    ``jobs``: ``None`` (default) keeps the serial in-process audit loop,
    while any integer ``N >= 1`` routes the audit through
    :class:`~repro.sched.AuditScheduler` on a persistent pool of ``N``
    worker processes (``jobs=1`` is the serial *schedule* on pool
    infrastructure — useful for byte-comparing parallel runs against a
    one-worker baseline, since both execute checks in worker
    processes).
    """

    max_cycles: int = 40
    engine: str = "bmc"
    functional: bool = True
    check_pseudo_critical: bool = False
    check_bypass: bool = False
    time_budget: float | None = None
    pseudo_critical_cycles: int | None = None
    stop_on_first: bool = True
    lint_report: object = None
    ift_report: object = None
    diff_report: object = None
    cache_dir: str | None = None
    share_cones: bool = False
    trace: object = None
    jobs: int | None = None
    #: Keep one solver+unrolling alive per critical register across its
    #: corruption / tracking / bypass-adjacent checks (serial BMC only;
    #: worker pools cannot share a live solver across processes).
    #: Verdicts, witnesses and cache fingerprints are identical with or
    #: without sessions — this trades repeated cone re-encoding for
    #: incremental solver reuse, nothing more.
    sessions: bool = True

    def __post_init__(self):
        if self.jobs is not None and self.jobs < 1:
            raise ReproError(
                "jobs must be None (serial) or >= 1, got {}".format(
                    self.jobs
                )
            )


_CONFIG_FIELDS = tuple(f.name for f in fields(AuditConfig))


def fused_register_scores(lint_report=None, ift_report=None,
                          diff_report=None):
    """Combined screen priority scores from lint, IFT and diff.

    Per-register scores from the modalities simply add: each report
    already weighs its findings on the shared severity ladder
    (:data:`~repro.lint.findings.SEVERITY_WEIGHT`), so a register
    implicated by several screens outranks one implicated by fewer.
    """
    scores = {}
    for report in (lint_report, ift_report, diff_report):
        if report is None:
            continue
        for name, score in report.register_scores().items():
            scores[name] = scores.get(name, 0) + score
    return scores


def prioritize_registers(names, lint_report=None, ift_report=None,
                         diff_report=None):
    """Order ``names`` most-suspicious-first (stable ties).

    The fused generalization of ``LintReport.prioritize``: with only a
    lint report it reduces to exactly that ordering; IFT and diff
    reports promote their flagged registers the same way. Used
    identically by the serial detector loop and the parallel scheduler
    so both audit registers in the same order.
    """
    if lint_report is None and ift_report is None and diff_report is None:
        return list(names)
    scores = fused_register_scores(lint_report, ift_report, diff_report)
    order = {name: index for index, name in enumerate(names)}
    return sorted(
        names, key=lambda name: (-scores.get(name, 0), order[name])
    )


def grouped_check_outcome(name, result):
    """Synthesize the :class:`CheckOutcome` for one member of a
    shared-cone tracking group (grouped checks bypass the supervised
    runner, so their outcomes are reconstructed from the engine result).
    Used identically by the serial grouped path and the scheduler."""
    outcome = CheckOutcome(
        name=name,
        status=(
            "ok" if result.status in ("violated", "proved")
            else "exhausted"
        ),
        result=result,
        bound_reached=result.bound,
        elapsed=result.elapsed,
    )
    if outcome.status != "ok":
        outcome.error = "engine returned {!r} at bound {}".format(
            result.status, result.bound
        )
    return outcome


class TrojanDetector:
    """Runs Algorithm 1 over a design and its valid-way spec.

    Preferred construction::

        TrojanDetector(netlist, spec, config=AuditConfig(...), runner=...)

    The historical per-argument keywords (``max_cycles=``, ``engine=``,
    ...) still work but are deprecated; they override the matching
    :class:`AuditConfig` field and warn.

    Parameters
    ----------
    netlist, spec:
        The design under audit and its :class:`DesignSpec`.
    config:
        An :class:`AuditConfig`. Its fields carry the semantics
        documented below under their historical argument names; its
        ``jobs`` field selects parallel scheduling (see
        :mod:`repro.sched`).
    max_cycles:
        T — the bound the trustworthiness guarantee covers; the paper
        resets the design every T cycles (Section 3.2).
    engine:
        ``"bmc"``, ``"atpg"`` or ``"atpg-backward"``.
    functional:
        Check the documented update *values*, not just update
        authorization. This is what catches Trojans like RISC-T100 whose
        payload fires inside an authorized update slot (the PC increments
        by two instead of one).
    check_pseudo_critical / check_bypass:
        Enable the Section 4 attacks' defenses (Eq. 3 / Eq. 4).
    time_budget:
        Wall-clock budget per individual property check, in seconds
        (the engines' cooperative budget).
    runner:
        A :class:`~repro.runner.supervisor.CheckRunner` controlling
        isolation, hard limits and retries. The default runs checks
        in-process with a single attempt — the pre-supervision
        behaviour, minus the crashes.
    lint_report:
        A :class:`~repro.lint.findings.LintReport` from the static
        pre-pass. When given, Algorithm 1's outer loop is reordered so
        lint-flagged registers are audited first (the supervised
        runner's budget reaches the likeliest suspects before the
        clean-looking majority), and each register's lint findings are
        attached to its :class:`RegisterFinding` as ``lint_evidence``.
    ift_report:
        An :class:`~repro.ift.findings.IftReport` from the static
        information-flow screen. Fused exactly like ``lint_report``:
        its register scores add to lint's for Algorithm 1's audit
        order, and each register's taint findings are attached as
        ``ift_evidence``. A register the IFT screen flagged but every
        dynamic check passed is reported with the distinct
        ``leakage_suspect`` status (see
        :attr:`RegisterFinding.leakage_suspect`).
    diff_report:
        A :class:`~repro.diff.findings.DiffReport` from the golden-model
        differential screen. Fused exactly like ``ift_report``: its
        register scores add into Algorithm 1's audit order, and each
        register's divergence findings are attached as
        ``diff_evidence``. A register the diff screen flagged but every
        dynamic check passed is reported with the distinct
        ``differential_suspect`` status (see
        :attr:`RegisterFinding.differential_suspect`).
    cache_dir:
        Directory of the content-addressed outcome cache
        (:mod:`repro.cache`). When set, every Eq. (2)/(3) objective
        check consults the cache before solving and writes its verdict
        back; re-audits of an unchanged design become cache hits, and
        deeper re-audits resume from the cached proved bound.
    share_cones:
        Batch the Eq. (3) tracking checks of each critical register into
        shared-cone groups (BMC only): the candidates' monitors are
        stacked on one clone and served by one unrolling per group
        (:class:`~repro.bmc.group.MultiObjectiveBmc`). Grouped checks
        run inline — they bypass the supervised runner's process
        isolation and the outcome cache, trading fault isolation for
        not re-encoding the shared cone once per candidate.
    trace:
        Structured-telemetry sink for the audit: a path (a JSONL
        :class:`~repro.obs.tracer.Tracer` is created there and closed
        when ``run()`` returns) or an existing tracer object. Installed
        as the process-global tracer for the duration of ``run()``, so
        every layer underneath — runner, cache, engines, SAT core —
        emits into one trace tree rooted at the ``audit`` span.
    """

    def __init__(self, netlist, spec, config=None, runner=None, **legacy):
        if config is not None and not isinstance(config, AuditConfig):
            # the historical third positional argument was max_cycles
            warnings.warn(
                "passing max_cycles positionally is deprecated; pass "
                "config=AuditConfig(max_cycles=...)",
                DeprecationWarning, stacklevel=2,
            )
            legacy.setdefault("max_cycles", config)
            config = None
        if legacy:
            unknown = sorted(set(legacy) - set(_CONFIG_FIELDS))
            if unknown:
                raise TypeError(
                    "TrojanDetector got unexpected keyword argument(s) "
                    "{}".format(", ".join(unknown))
                )
            warnings.warn(
                "TrojanDetector keyword argument(s) {} are deprecated; "
                "pass config=AuditConfig(...) instead".format(
                    ", ".join(sorted(legacy))
                ),
                DeprecationWarning, stacklevel=2,
            )
            config = (
                AuditConfig(**legacy) if config is None
                else replace(config, **legacy)
            )
        if config is None:
            config = AuditConfig()
        self.config = config
        self.netlist = netlist
        self.spec = spec
        self.max_cycles = config.max_cycles
        self.engine = config.engine
        self.functional = config.functional
        self.check_pseudo_critical = config.check_pseudo_critical
        self.check_bypass = config.check_bypass
        self.time_budget = config.time_budget
        self.pseudo_critical_cycles = (
            config.pseudo_critical_cycles
            if config.pseudo_critical_cycles is not None
            else max(4, config.max_cycles // 2)
        )
        self.stop_on_first = config.stop_on_first
        self.runner = runner if runner is not None else CheckRunner()
        self.lint_report = config.lint_report
        self.ift_report = config.ift_report
        self.diff_report = config.diff_report
        self.cache_dir = config.cache_dir
        self.share_cones = config.share_cones
        self.trace = config.trace
        self.jobs = config.jobs
        self.sessions = config.sessions

    # ------------------------------------------------------------------ API

    @property
    def scheduler_jobs(self):
        """Worker-pool size for this audit, or ``None`` for the serial
        loop. ``config.jobs`` wins; otherwise a pool-backed runner
        (``configure(workers=N)``, ``N >= 2``) implies its own size."""
        if self.jobs is not None:
            return self.jobs
        if self.runner.jobs > 1:
            return self.runner.jobs
        return None

    def run(self, registers=None, checkpoint=None):
        """Run Algorithm 1; returns a :class:`DetectionReport`.

        With ``checkpoint`` (a path or :class:`AuditCheckpoint`),
        completed register findings are persisted as soon as each
        register's audit finishes, and a pre-existing checkpoint for the
        same design/engine/bound restores its findings instead of
        re-running them.
        """
        if self.trace is None:
            return self._run(registers, checkpoint, get_tracer())
        owned = not hasattr(self.trace, "span")
        tracer = Tracer(self.trace) if owned else self.trace
        try:
            with tracing(tracer):
                return self._run(registers, checkpoint, tracer)
        finally:
            if owned:
                tracer.close()

    def _run(self, registers, checkpoint, tracer):
        jobs = self.scheduler_jobs
        if jobs:
            # imported lazily: repro.sched imports this module for the
            # shared task builders
            from repro.sched.scheduler import AuditRequest, AuditScheduler

            scheduler = AuditScheduler(
                [AuditRequest(self, registers=registers,
                              checkpoint=checkpoint)],
                jobs=jobs,
            )
            return scheduler.run()[0]
        start = time.perf_counter()
        report = DetectionReport(
            design=self.netlist.name,
            engine=self.engine,
            max_cycles=self.max_cycles,
            trojan_info=self.spec.trojan,
        )
        audit_span = None
        if tracer.enabled:
            audit_span = tracer.begin(
                "audit",
                design=self.netlist.name,
                engine=self.engine,
                max_cycles=self.max_cycles,
            )
        try:
            names = registers or list(self.spec.critical)
            names = prioritize_registers(
                names, self.lint_report, self.ift_report,
                self.diff_report,
            )
            store = None
            if checkpoint is not None:
                store = (
                    checkpoint
                    if isinstance(checkpoint, AuditCheckpoint)
                    else AuditCheckpoint(checkpoint)
                )
                restored = store.begin(
                    self.netlist.name, self.engine, self.max_cycles
                )
                for register in names:
                    if register in restored:
                        report.findings[register] = restored[register]
            for register in names:
                if register in report.findings:
                    continue  # restored from the checkpoint
                if self.stop_on_first and report.trojan_found:
                    break
                with tracer.span(
                    "audit.register", register=register
                ) as reg_extra:
                    finding = self._audit_register(register)
                    reg_extra.update(trojan_found=finding.trojan_found)
                report.findings[register] = finding
                if store is not None:
                    try:
                        store.save_finding(register, finding)
                    except CheckpointWriteError as exc:
                        # a full disk must not kill a half-done audit:
                        # drop checkpointing, keep the verdicts coming
                        store = None
                        _warn_checkpoint_lost(exc, tracer)
                if self.stop_on_first and finding.trojan_found:
                    break
            report.elapsed = time.perf_counter() - start
            return report
        finally:
            if audit_span is not None:
                tracer.end(
                    audit_span,
                    trojan_found=report.trojan_found,
                    registers=len(report.findings),
                )

    # ------------------------------------------------------------ internals

    def _register_session(self):
        """A per-register :class:`SolverSession`, or ``None``.

        Sessions only pay off where a live solver can actually be
        reused: the serial in-process loop with the BMC engine and an
        inline runner. Everywhere else (worker pools, process-isolated
        runners, other engines) the hint would be dropped at the
        process boundary anyway, so no session is built.
        """
        if (
            not self.sessions
            or self.engine != "bmc"
            or self.scheduler_jobs is not None
            or getattr(self.runner, "isolation", "inline") != "inline"
        ):
            return None
        from repro.bmc.session import SolverSession

        return SolverSession(
            self.netlist.clone(), pinned_inputs=self.spec.pinned_inputs
        )

    def _audit_register(self, register):
        reg_start = time.perf_counter()
        spec = self.spec.spec_for(register)
        session = self._register_session()
        finding = RegisterFinding(register=register)
        if self.lint_report is not None:
            finding.lint_evidence = [
                f.to_dict() for f in self.lint_report.findings_for(register)
            ]
        if self.ift_report is not None:
            finding.ift_evidence = [
                f.to_dict() for f in self.ift_report.findings_for(register)
            ]
        if self.diff_report is not None:
            finding.diff_evidence = [
                f.to_dict() for f in self.diff_report.findings_for(register)
            ]

        if self.check_pseudo_critical:
            finding.pseudo_criticals = self._find_pseudo_criticals(
                spec, finding, session=session
            )

        finding.corruption = self._corruption_check(
            spec, finding=finding, session=session
        )
        if finding.corruption.detected:
            monitor = self._monitor_for(spec)
            finding.witness_confirmed = confirms_violation(
                monitor.netlist,
                finding.corruption.witness,
                monitor.violation_net,
            )

        # Corruption checks on promoted pseudo-critical registers: their
        # update authorization mirrors the critical register's, but the
        # documented *values* do not transfer (a tracking register may hold
        # the bitwise complement), so these run non-functionally — and the
        # valid-way window shifts by the copy's delay relative to the
        # critical register (way_delay 2 for "after" copies, 0 for
        # "before" ones).
        if not (self.stop_on_first and finding.corruption.detected):
            for name, direction in finding.pseudo_criticals:
                # the shadow register's cone overlaps the critical
                # register's heavily, so its checks ride the same session
                result = self._corruption_check(
                    self.shadow_spec(spec, name, direction),
                    functional=False,
                    way_delay=2 if direction == "after" else 0,
                    finding=finding,
                    session=session,
                )
                finding.pseudo_corruptions[name] = result
                if self.stop_on_first and result.detected:
                    break

        if self.check_bypass and not (
            self.stop_on_first and finding.trojan_found
        ):
            finding.bypass = self._bypass_check(spec, finding=finding)

        finding.elapsed = time.perf_counter() - reg_start
        return finding

    def _monitor_for(self, spec, functional=None, way_delay=1):
        if functional is None:
            functional = self.functional
        return build_corruption_monitor(
            self.netlist, spec, functional=functional, way_delay=way_delay
        )

    def shadow_spec(self, spec, name, direction):
        """The :class:`RegisterSpec` a promoted pseudo-critical register
        is audited under (mirrors the critical register's ways)."""
        return RegisterSpec(
            register=name,
            ways=spec.ways,
            description="pseudo-critical shadow of {} ({})".format(
                spec.register, direction
            ),
            observe_latency=spec.observe_latency,
        )

    def _supervised(self, task, name, finding=None):
        """Run one check under supervision, recording its outcome."""
        outcome = self.runner.run(task, name=name)
        if finding is not None:
            finding.check_outcomes[name] = outcome
        return outcome

    # Task builders: the serial loop and the parallel scheduler build
    # checks through the same code paths, so a check's content — and
    # therefore its cache fingerprint — cannot depend on who ran it.

    def corruption_task(self, spec, functional=None, way_delay=1,
                        session=None):
        """``(task, check name)`` for Eq. (2) on one register spec.

        The standalone monitor build always comes first and alone
        defines the task (and its cache fingerprint). A ``session``
        additionally stacks the *same* monitor onto the session's
        netlist clone and attaches the resulting objective as an
        execution hint — fingerprints ignore net names, so the two
        builds hash identically.
        """
        if functional is None:
            functional = self.functional
        monitor = self._monitor_for(spec, functional, way_delay)
        live = None
        if session is not None and self.engine == "bmc":
            stacked = build_corruption_monitor(
                self.netlist, spec, functional=functional,
                way_delay=way_delay, into=session.netlist,
            )
            live = session.objective(
                stacked.objective_net,
                violation_net=stacked.violation_net,
                property_name=stacked.property_name,
            )
        task = ObjectiveTask(
            engine=self.engine,
            netlist=monitor.netlist,
            objective_net=monitor.objective_net,
            max_cycles=self.max_cycles,
            property_name=monitor.property_name,
            pinned_inputs=self.spec.pinned_inputs,
            check_kwargs={"time_budget": self.time_budget},
            cache_dir=self.cache_dir,
            session=live,
        )
        return task, "corruption({})".format(spec.register)

    def tracking_task(self, spec, candidate, direction, session=None):
        """``(task, check name)`` for Eq. (3) on one candidate/direction."""
        monitor = build_tracking_monitor(
            self.netlist, spec, candidate, direction=direction
        )
        live = None
        if session is not None and self.engine == "bmc":
            stacked = build_tracking_monitor(
                self.netlist, spec, candidate, direction=direction,
                into=session.netlist,
            )
            live = session.objective(
                stacked.objective_net,
                violation_net=stacked.violation_net,
                property_name=stacked.property_name,
            )
        task = ObjectiveTask(
            engine=self.engine,
            netlist=monitor.netlist,
            objective_net=monitor.objective_net,
            max_cycles=self.pseudo_critical_cycles,
            property_name=monitor.property_name,
            pinned_inputs=self.spec.pinned_inputs,
            check_kwargs={"time_budget": self.time_budget},
            cache_dir=self.cache_dir,
            session=live,
        )
        name = "tracking({}->{},{})".format(
            spec.register, candidate, direction
        )
        return task, name

    def bypass_task(self, spec):
        """``(task, check name)`` for Eq. (4) CEGIS on one register."""
        task = BypassTask(
            netlist=self.netlist,
            spec=spec,
            max_cycles=self.max_cycles,
            time_budget=self.time_budget,
        )
        return task, "bypass({})".format(spec.register)

    def tracking_group_builds(self, spec, candidates):
        """``(base, builds)`` for the shared-cone Eq. (3) sweep: one
        clone of the design carrying every candidate/direction tracking
        monitor, and the builds in serial order."""
        base = self.netlist.clone()
        builds = []  # (candidate, direction, MonitorBuild)
        for candidate in candidates:
            for direction in ("after", "before"):
                builds.append((candidate, direction, build_tracking_monitor(
                    self.netlist, spec, candidate, direction=direction,
                    into=base,
                )))
        return base, builds

    def _corruption_check(self, spec, functional=None, way_delay=1,
                          finding=None, session=None):
        """Eq. (2) on one register spec; returns an engine-shaped result."""
        task, name = self.corruption_task(
            spec, functional, way_delay, session=session
        )
        return self._supervised(task, name, finding=finding).verdict

    def check_corruption(self, spec, functional=None, way_delay=1):
        """Eq. (2) on one register spec; returns the engine result."""
        return self._corruption_check(spec, functional, way_delay)

    def check_tracking(self, spec, candidate, direction, finding=None,
                       session=None):
        """Eq. (3) for one candidate/direction; returns the engine result."""
        task, name = self.tracking_task(
            spec, candidate, direction, session=session
        )
        return self._supervised(task, name, finding=finding).verdict

    def _find_pseudo_criticals(self, spec, finding=None, session=None):
        candidates = list(
            pseudo_critical_candidates(self.netlist, self.spec, spec.register)
        )
        if self.share_cones and self.engine == "bmc" and candidates:
            return self._find_pseudo_criticals_grouped(
                spec, candidates, finding=finding
            )
        found = []
        for candidate in candidates:
            for direction in ("after", "before"):
                result = self.check_tracking(
                    spec, candidate, direction, finding=finding,
                    session=session,
                )
                # "proved" = no valid sequence makes the candidate diverge
                # from the critical register: it tracks, hence is
                # pseudo-critical (for the checked bound).
                if result.status == "proved":
                    found.append((candidate, direction))
                    break
        return found

    def _find_pseudo_criticals_grouped(self, spec, candidates, finding=None):
        """Shared-cone variant of the Eq. (3) sweep (BMC only).

        All candidate/direction tracking monitors for this critical
        register are stacked on *one* clone of the design; objectives
        whose cones overlap are served by a single
        :class:`~repro.bmc.group.MultiObjectiveBmc` unrolling each. The
        verdict semantics match the sequential path exactly — ``proved``
        promotes, and ``"after"`` wins over ``"before"`` for the same
        candidate. ``time_budget`` covers each *group*, not each
        objective, and the grouped solves run inline (no process
        isolation, no outcome cache).
        """
        from repro.bmc.group import MultiObjectiveBmc, group_objectives_by_cone

        base, builds = self.tracking_group_builds(spec, candidates)
        nets = [b.objective_net for _, _, b in builds]
        names = [b.property_name for _, _, b in builds]
        results = [None] * len(builds)
        for group in group_objectives_by_cone(base, nets):
            multi = MultiObjectiveBmc(
                base,
                [nets[i] for i in group],
                property_names=[names[i] for i in group],
                pinned_inputs=self.spec.pinned_inputs,
            )
            group_results = multi.check_all(
                self.pseudo_critical_cycles, time_budget=self.time_budget
            )
            for i, result in zip(group, group_results):
                results[i] = result
        found = []
        promoted = set()
        for (candidate, direction, _build), result in zip(builds, results):
            name = "tracking({}->{},{})".format(
                spec.register, candidate, direction
            )
            if finding is not None:
                finding.check_outcomes[name] = grouped_check_outcome(
                    name, result
                )
            if result.status == "proved" and candidate not in promoted:
                promoted.add(candidate)
                found.append((candidate, direction))
        return found

    def _bypass_check(self, spec, finding=None):
        task, name = self.bypass_task(spec)
        return self._supervised(task, name, finding=finding).verdict

    def check_bypass_register(self, spec):
        """Eq. (4) via CEGIS; returns a BypassResult."""
        return self._bypass_check(spec)
