"""Register discovery for Algorithm 1.

"A defender can obtain the list of registers by parsing the netlist" — the
netlist IR already groups flops into named registers, so discovery here
means enumerating candidates for the pseudo-critical search: every
same-width register that is not the critical register itself, not monitor
bookkeeping, and not excluded by the spec.
"""

from __future__ import annotations

MONITOR_PREFIX = "__mon"


def all_registers(netlist):
    """Names of every register in the design (monitor registers excluded)."""
    return [
        name
        for name in netlist.registers
        if not name.startswith(MONITOR_PREFIX)
    ]


def pseudo_critical_candidates(netlist, spec, critical_register):
    """Candidate registers for the Eq. (3) tracking check.

    Only same-width registers can be bitwise copies of the critical
    register (Section 4.1's x / not-x argument is per-bit on an equal-width
    register). The spec may whitelist candidates explicitly
    (``candidate_registers``) or blacklist some (``exclude_registers``).
    """
    width = netlist.register_width(critical_register)
    exclude = set(spec.exclude_registers) | {critical_register}
    names = spec.candidate_registers or all_registers(netlist)
    return [
        name
        for name in names
        if name not in exclude
        and not name.startswith(MONITOR_PREFIX)
        and netlist.register_width(name) == width
    ]
