"""Detection reports for Algorithm 1 runs."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RegisterFinding:
    """Everything Algorithm 1 learned about one critical register."""

    register: str
    pseudo_criticals: list = field(default_factory=list)  # (name, direction)
    corruption: object = None  # engine result for Eq. (2)
    bypass: object = None  # BypassResult for Eq. (4)
    pseudo_corruptions: dict = field(default_factory=dict)  # name -> result
    witness_confirmed: bool | None = None
    elapsed: float = 0.0

    @property
    def corrupted(self):
        return self.corruption is not None and self.corruption.detected

    @property
    def bypassed(self):
        return self.bypass is not None and self.bypass.detected

    @property
    def pseudo_corrupted(self):
        return any(r.detected for r in self.pseudo_corruptions.values())

    @property
    def trojan_found(self):
        return self.corrupted or self.bypassed or self.pseudo_corrupted


@dataclass
class DetectionReport:
    """Outcome of a full Algorithm 1 run over a design."""

    design: str
    engine: str
    max_cycles: int
    findings: dict = field(default_factory=dict)  # register -> RegisterFinding
    elapsed: float = 0.0
    trojan_info: object = None

    @property
    def trojan_found(self):
        return any(f.trojan_found for f in self.findings.values())

    def trusted_for(self):
        """Cycles the design is certified trustworthy for (min over checks),
        or 0 if a Trojan was found."""
        if self.trojan_found:
            return 0
        bounds = []
        for finding in self.findings.values():
            if finding.corruption is not None:
                bounds.append(finding.corruption.bound)
            if finding.bypass is not None:
                bounds.append(finding.bypass.bound)
        return min(bounds) if bounds else 0

    def summary(self):
        lines = [
            "Algorithm 1 on {!r} via {} (bound {} cycles): {}".format(
                self.design,
                self.engine,
                self.max_cycles,
                "TROJAN FOUND" if self.trojan_found else
                "no data-corruption Trojan found for {} clock cycles".format(
                    self.trusted_for()
                ),
            )
        ]
        for register, finding in self.findings.items():
            parts = []
            if finding.pseudo_criticals:
                parts.append(
                    "pseudo-critical: {}".format(
                        ", ".join(
                            "{} ({})".format(n, d)
                            for n, d in finding.pseudo_criticals
                        )
                    )
                )
            if finding.corrupted:
                parts.append(
                    "CORRUPTED at cycle {} (witness {}confirmed)".format(
                        finding.corruption.bound,
                        "" if finding.witness_confirmed else "NOT ",
                    )
                )
            for name, result in finding.pseudo_corruptions.items():
                if result.detected:
                    parts.append(
                        "pseudo-critical {} CORRUPTED at cycle {}".format(
                            name, result.bound
                        )
                    )
            if finding.bypassed:
                parts.append(
                    "BYPASSED (p={:#x}, q={:#x}) after prefix of {} "
                    "cycles".format(
                        finding.bypass.p_value,
                        finding.bypass.q_value,
                        finding.bypass.bound,
                    )
                )
            if not parts:
                parts.append("clean within bound")
            lines.append("  {}: {}".format(register, "; ".join(parts)))
        if self.trojan_info is not None:
            lines.append(
                "  [ground truth: {} — {}]".format(
                    self.trojan_info.name, self.trojan_info.payload
                )
            )
        return "\n".join(lines)
