"""Detection reports for Algorithm 1 runs."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: keys whose values vary run-to-run (wall clock, RSS, cache bookkeeping);
#: :func:`scrub_volatile` strips them so two audits of the same design can
#: be compared byte-for-byte — the basis of the ``--jobs N`` determinism
#: guarantee and of any golden-file test.
VOLATILE_KEYS = frozenset({"elapsed", "peak_memory", "saved_elapsed", "ts"})


def scrub_volatile(obj, keys=VOLATILE_KEYS):
    """Recursively drop run-varying keys from a report/finding dict."""
    if isinstance(obj, dict):
        return {
            k: scrub_volatile(v, keys) for k, v in obj.items()
            if k not in keys
        }
    if isinstance(obj, list):
        return [scrub_volatile(v, keys) for v in obj]
    return obj


@dataclass
class RegisterFinding:
    """Everything Algorithm 1 learned about one critical register."""

    register: str
    pseudo_criticals: list = field(default_factory=list)  # (name, direction)
    corruption: object = None  # engine result for Eq. (2)
    bypass: object = None  # BypassResult for Eq. (4)
    pseudo_corruptions: dict = field(default_factory=dict)  # name -> result
    witness_confirmed: bool | None = None
    elapsed: float = 0.0
    # per-check resource outcomes (check name -> runner.CheckOutcome):
    # how each property check ended under supervision — completed, budget
    # exhausted, hard timeout, or crashed — with attempts and bounds.
    check_outcomes: dict = field(default_factory=dict)
    restored: bool = False  # finding came from a resume checkpoint
    # static lint findings implicating this register (LintFinding dicts,
    # attached when the detector runs with a lint report); persisted in
    # checkpoints so a resumed audit keeps its static evidence
    lint_evidence: list = field(default_factory=list)
    # static information-flow findings implicating this register
    # (IftFinding dicts, attached under --ift); persisted like
    # lint_evidence so resumed audits keep the taint verdict
    ift_evidence: list = field(default_factory=list)
    # golden-model differential findings implicating this register
    # (DiffFinding dicts, attached under --diff); persisted like the
    # other evidence lists so resumed audits keep the divergence verdict
    diff_evidence: list = field(default_factory=list)

    @property
    def corrupted(self):
        return self.corruption is not None and self.corruption.detected

    @property
    def bypassed(self):
        return self.bypass is not None and self.bypass.detected

    @property
    def pseudo_corrupted(self):
        return any(r.detected for r in self.pseudo_corruptions.values())

    @property
    def trojan_found(self):
        return self.corrupted or self.bypassed or self.pseudo_corrupted

    @property
    def lint_flagged(self):
        """True when the static lint pre-pass implicated this register."""
        return bool(self.lint_evidence)

    @property
    def ift_flagged(self):
        """True when the static IFT screen implicated this register."""
        return bool(self.ift_evidence)

    @property
    def diff_flagged(self):
        """True when the differential screen implicated this register."""
        return bool(self.diff_evidence)

    @property
    def degraded_checks(self):
        """Check outcomes that did not complete (name -> CheckOutcome)."""
        return {
            name: outcome
            for name, outcome in self.check_outcomes.items()
            if not getattr(outcome, "ok", True)
        }

    @property
    def leakage_suspect(self):
        """IFT sees undocumented information flow but the dynamic checks
        came back clean and complete.

        This is the fused verdict the ISSUE calls out: the bounded
        corruption property (Eq. 2) can pass while a leakage-style
        payload still routes undocumented data through the register —
        taint evidence without corruption evidence is its signature.
        A register whose checks found the Trojan, or whose checks never
        concluded, is reported as ``trojan_found``/``degraded`` instead.
        """
        return (
            self.ift_flagged
            and not self.trojan_found
            and not self.degraded_checks
        )

    @property
    def differential_suspect(self):
        """The differential screen saw the register depart from every
        documented way, but the dynamic checks came back clean and
        complete.

        A simulated divergence is a concrete trace the bounded Eq. 2
        property may have missed (a corruption past the unroll bound,
        or one only reachable from forced undocumented state) — so it
        outranks the structural ``leakage_suspect`` in the ladder.
        """
        return (
            self.diff_flagged
            and not self.trojan_found
            and not self.degraded_checks
        )

    @property
    def status(self):
        """Fused per-register verdict.

        ``"degraded"`` when a supervised check did not conclude;
        ``"differential_suspect"`` when the golden-model diff saw a
        divergence the (complete) dynamic checks did not corroborate;
        ``"leakage_suspect"`` when static IFT flagged the register but
        nothing dynamic fired; ``"ok"`` otherwise. Without screen
        evidence this reduces to the historical ok/degraded split.
        """
        if self.degraded_checks:
            return "degraded"
        if self.differential_suspect:
            return "differential_suspect"
        if self.leakage_suspect:
            return "leakage_suspect"
        return "ok"

    @property
    def attempts(self):
        """Total check attempts spent on this register (0 if unsupervised)."""
        return sum(
            getattr(outcome, "num_attempts", 0)
            for outcome in self.check_outcomes.values()
        )

    @property
    def peak_memory(self):
        """Largest per-check peak RSS observed, in bytes (0 if unmeasured)."""
        peaks = [
            getattr(outcome, "peak_memory", 0)
            for outcome in self.check_outcomes.values()
        ]
        return max(peaks, default=0)

    @property
    def bound_reached(self):
        """Smallest bound actually certified across this register's checks.

        Equals ``max_cycles`` for a fully completed clean register; less
        when some check degraded — the honest figure for the paper's
        "no Trojan found for T clock cycles" statement.
        """
        bounds = []
        if self.corruption is not None:
            bounds.append(self.corruption.bound)
        if self.bypass is not None:
            bounds.append(self.bypass.bound)
        return min(bounds) if bounds else 0


@dataclass
class DetectionReport:
    """Outcome of a full Algorithm 1 run over a design."""

    design: str
    engine: str
    max_cycles: int
    findings: dict = field(default_factory=dict)  # register -> RegisterFinding
    elapsed: float = 0.0
    trojan_info: object = None

    @property
    def trojan_found(self):
        return any(f.trojan_found for f in self.findings.values())

    @property
    def degraded(self):
        """True when any register's checks hit a resource limit or crash."""
        return any(f.status == "degraded" for f in self.findings.values())

    @property
    def leakage_suspects(self):
        """Registers flagged by IFT that every dynamic check passed."""
        return [
            name
            for name, finding in self.findings.items()
            if getattr(finding, "leakage_suspect", False)
        ]

    @property
    def differential_suspects(self):
        """Registers the diff screen flagged that every check passed."""
        return [
            name
            for name, finding in self.findings.items()
            if getattr(finding, "differential_suspect", False)
        ]

    @property
    def resumed_registers(self):
        """Registers restored from a checkpoint rather than re-audited."""
        return [
            name
            for name, finding in self.findings.items()
            if getattr(finding, "restored", False)
        ]

    def trusted_for(self):
        """Cycles the design is certified trustworthy for (min over checks),
        or 0 if a Trojan was found."""
        if self.trojan_found:
            return 0
        bounds = []
        for finding in self.findings.values():
            if finding.corruption is not None:
                bounds.append(finding.corruption.bound)
            if finding.bypass is not None:
                bounds.append(finding.bypass.bound)
        return min(bounds) if bounds else 0

    def to_dict(self, scrub=False):
        """JSON-ready dict of the whole report.

        Findings serialize through the same codec the resume checkpoint
        uses (:func:`repro.runner.checkpoint.finding_to_dict`), so a
        report dict and a checkpoint entry agree field-for-field. With
        ``scrub=True``, run-varying keys (:data:`VOLATILE_KEYS`) are
        dropped — two audits of the same design then compare equal
        regardless of wall clock or worker count.
        """
        from repro.runner.checkpoint import finding_to_dict

        data = {
            "design": self.design,
            "engine": self.engine,
            "max_cycles": self.max_cycles,
            "trojan_found": self.trojan_found,
            "degraded": self.degraded,
            "leakage_suspects": self.leakage_suspects,
            "differential_suspects": self.differential_suspects,
            "trusted_for": self.trusted_for(),
            "elapsed": self.elapsed,
            "findings": {
                register: finding_to_dict(finding)
                for register, finding in self.findings.items()
            },
        }
        return scrub_volatile(data) if scrub else data

    def to_json(self, scrub=False, indent=2):
        """The report as a JSON string (see :meth:`to_dict`)."""
        return json.dumps(
            self.to_dict(scrub=scrub), indent=indent, sort_keys=False,
            default=str,
        )

    def summary(self):
        verdict = (
            "TROJAN FOUND" if self.trojan_found else
            "no data-corruption Trojan found for {} clock cycles".format(
                self.trusted_for()
            )
        )
        if self.degraded and not self.trojan_found:
            verdict += " [degraded: some checks hit resource limits]"
        diff_suspects = self.differential_suspects
        if diff_suspects and not self.trojan_found:
            verdict += " [differential suspect: {}]".format(
                ", ".join(diff_suspects)
            )
        suspects = self.leakage_suspects
        if suspects and not self.trojan_found:
            verdict += " [leakage suspect: {}]".format(", ".join(suspects))
        lines = [
            "Algorithm 1 on {!r} via {} (bound {} cycles): {}".format(
                self.design, self.engine, self.max_cycles, verdict,
            )
        ]
        for register, finding in self.findings.items():
            parts = []
            if finding.pseudo_criticals:
                parts.append(
                    "pseudo-critical: {}".format(
                        ", ".join(
                            "{} ({})".format(n, d)
                            for n, d in finding.pseudo_criticals
                        )
                    )
                )
            if finding.corrupted:
                parts.append(
                    "CORRUPTED at cycle {} (witness {}confirmed)".format(
                        finding.corruption.bound,
                        "" if finding.witness_confirmed else "NOT ",
                    )
                )
            for name, result in finding.pseudo_corruptions.items():
                if result.detected:
                    parts.append(
                        "pseudo-critical {} CORRUPTED at cycle {}".format(
                            name, result.bound
                        )
                    )
            if finding.bypassed:
                parts.append(
                    "BYPASSED (p={:#x}, q={:#x}) after prefix of {} "
                    "cycles".format(
                        finding.bypass.p_value,
                        finding.bypass.q_value,
                        finding.bypass.bound,
                    )
                )
            for name, outcome in finding.degraded_checks.items():
                parts.append("{} {}".format(name, outcome.describe()))
            if not parts:
                parts.append("clean within bound")
            if getattr(finding, "lint_evidence", None):
                parts.append(
                    "lint: {} static finding{} ({})".format(
                        len(finding.lint_evidence),
                        "" if len(finding.lint_evidence) == 1 else "s",
                        ", ".join(
                            sorted(
                                {e["rule"] for e in finding.lint_evidence}
                            )
                        ),
                    )
                )
            if getattr(finding, "ift_evidence", None):
                parts.append(
                    "ift: {} taint finding{} ({}){}".format(
                        len(finding.ift_evidence),
                        "" if len(finding.ift_evidence) == 1 else "s",
                        ", ".join(
                            sorted(
                                {e["rule"] for e in finding.ift_evidence}
                            )
                        ),
                        " — LEAKAGE SUSPECT"
                        if finding.leakage_suspect
                        else "",
                    )
                )
            if getattr(finding, "diff_evidence", None):
                parts.append(
                    "diff: {} divergence finding{} ({}){}".format(
                        len(finding.diff_evidence),
                        "" if len(finding.diff_evidence) == 1 else "s",
                        ", ".join(
                            sorted(
                                {e["rule"] for e in finding.diff_evidence}
                            )
                        ),
                        " — DIFFERENTIAL SUSPECT"
                        if finding.differential_suspect
                        else "",
                    )
                )
            if getattr(finding, "restored", False):
                parts.append("restored from checkpoint")
            lines.append("  {}: {}".format(register, "; ".join(parts)))
        if self.trojan_info is not None:
            lines.append(
                "  [ground truth: {} — {}]".format(
                    self.trojan_info.name, self.trojan_info.payload
                )
            )
        return "\n".join(lines)
