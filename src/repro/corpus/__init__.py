"""Design bundles and the seeded Trojan-corpus fuzzer (ROADMAP item 3).

The 15 built-in designs are hand-built Python constructors; everything
else the portfolio will ever audit arrives from outside. This package
makes designs *data*:

``repro.corpus.bundle``
    The ``*.design.json`` interchange format — an ACFLS-style netlist
    section (signals/cells/flops with explicit net ids) plus the
    ValidWays spec serialized through the expression-way DSL
    (:mod:`repro.properties.spec_dsl`) and optional mutant provenance.
    ``load_bundle(save_bundle(design))`` reproduces the netlist to
    structural-fingerprint identity and the spec to monitor-circuit
    identity.

``repro.corpus.mutate``
    The seeded mutation engine: Trojan-injection mutators (trigger
    width/depth, counter vs. combinational triggers, payload placement)
    and DeTrust-style restructuring mutators, each mutant carrying
    in-band ground truth (target register, mutator chain, seed).

``repro.corpus.runner``
    Fans mutant bundles through the lint+IFT+diff portfolio (optionally
    the full audit scheduler) and scores detections against the carried
    ground truth into a per-mutator detection-rate table.
"""

from repro.corpus.bundle import (
    BUNDLE_FORMAT,
    BUNDLE_VERSION,
    Bundle,
    bundle_to_design,
    design_to_bundle,
    dumps_bundle,
    load_bundle,
    save_bundle,
    spec_from_dict,
    spec_to_dict,
)
from repro.corpus.mutate import (
    MUTATORS,
    CorpusConfig,
    MutantPlan,
    build_mutant,
    generate_corpus,
    mutant_plans,
)
from repro.corpus.runner import (
    RunConfig,
    detection_gate,
    dumps_report,
    run_corpus,
    score_results,
    screen_bundle,
)

__all__ = [
    "BUNDLE_FORMAT",
    "BUNDLE_VERSION",
    "Bundle",
    "CorpusConfig",
    "MUTATORS",
    "MutantPlan",
    "RunConfig",
    "build_mutant",
    "bundle_to_design",
    "design_to_bundle",
    "detection_gate",
    "dumps_bundle",
    "dumps_report",
    "generate_corpus",
    "load_bundle",
    "mutant_plans",
    "run_corpus",
    "save_bundle",
    "score_results",
    "screen_bundle",
    "spec_from_dict",
    "spec_to_dict",
]
