"""The ``*.design.json`` bundle format.

One file carries everything an audit needs: the flat gate-level netlist
(ACFLS-style — a signals table plus cells/flops with *explicit* net
ids), the ValidWays spec serialized through the expression-way DSL, and
optional provenance for fuzzer-generated mutants.

Two properties the rest of the corpus machinery leans on:

* **Bit-exact round-trip.** Net ids, cell order, flop order, and port
  declaration order are stored explicitly, so
  ``bundle_to_design(design_to_bundle(netlist, spec))`` reproduces the
  netlist to :func:`~repro.netlist.fingerprint.netlist_fingerprint`
  identity and the spec rebuilds bit-identical monitor circuits.

* **Canonical bytes.** :func:`dumps_bundle` emits sorted-key,
  fixed-separator JSON with every ordered collection stored as a JSON
  array (JSON objects would be re-ordered by key sorting), so the same
  design always serializes to the same bytes — corpus determinism is a
  byte comparison.
"""

from __future__ import annotations

import json
import os

from repro.errors import CorpusError
from repro.netlist.cells import Kind
from repro.netlist.netlist import Netlist
from repro.properties.spec_dsl import (
    register_spec_from_dict,
    register_spec_to_dict,
)
from repro.properties.valid_ways import DesignSpec, TrojanInfo

BUNDLE_FORMAT = "repro-design-bundle"
BUNDLE_VERSION = 1


class Bundle:
    """A loaded ``*.design.json``: design + spec + optional provenance."""

    __slots__ = ("netlist", "spec", "provenance", "path")

    def __init__(self, netlist, spec, provenance=None, path=None):
        self.netlist = netlist
        self.spec = spec
        self.provenance = provenance
        self.path = path

    def __iter__(self):
        # supports the ubiquitous ``netlist, spec = ...`` unpacking
        return iter((self.netlist, self.spec))

    def __repr__(self):
        return "Bundle({!r}, provenance={!r})".format(
            self.spec.name, None if self.provenance is None else
            self.provenance.get("mutator")
        )


# -------------------------------------------------------------- serialize


def design_to_bundle(netlist, spec, provenance=None):
    """Build the JSON-ready bundle payload for a (netlist, spec) pair."""
    return {
        "format": BUNDLE_FORMAT,
        "version": BUNDLE_VERSION,
        "netlist": _netlist_to_dict(netlist),
        "spec": spec_to_dict(spec),
        "provenance": provenance,
    }


def _netlist_to_dict(netlist):
    return {
        "module": netlist.name,
        "num_nets": netlist.num_nets,
        # ACFLS-style signals table: ports/registers/probes with their
        # net (or flop) bindings, arrays so declaration order survives
        # key-sorted serialization
        "inputs": [
            {"name": name, "nets": list(nets)}
            for name, nets in netlist.inputs.items()
        ],
        "outputs": [
            {"name": name, "nets": list(nets)}
            for name, nets in netlist.outputs.items()
        ],
        "registers": [
            {"name": name, "flops": list(idxs)}
            for name, idxs in netlist.registers.items()
        ],
        "probes": [
            {"name": name, "nets": list(nets)}
            for name, nets in netlist.probes.items()
        ],
        # compact row-per-gate arrays: 12k-cell designs stay manageable
        "cells": [
            [cell.kind.value, list(cell.inputs), cell.output]
            for cell in netlist.cells
        ],
        "flops": [
            [flop.d, flop.q, flop.init] for flop in netlist.flops
        ],
        "net_names": [
            [net, name]
            for net, name in sorted(netlist._net_names.items())
            if net > 1  # 0/1 are always the constants
        ],
    }


def spec_to_dict(spec):
    trojan = None
    if spec.trojan is not None:
        trojan = {
            "name": spec.trojan.name,
            "trigger": spec.trojan.trigger,
            "payload": spec.trojan.payload,
            "target_register": spec.trojan.target_register,
            "trigger_cycles": spec.trojan.trigger_cycles,
            "trojan_nets": sorted(spec.trojan.trojan_nets),
        }
    return {
        "name": spec.name,
        "notes": spec.notes,
        "critical": [
            register_spec_to_dict(reg_spec)
            for reg_spec in spec.critical.values()
        ],
        "candidate_registers": list(spec.candidate_registers),
        "exclude_registers": list(spec.exclude_registers),
        "pinned_inputs": [
            [name, value] for name, value in spec.pinned_inputs.items()
        ],
        "trojan": trojan,
    }


def dumps_bundle(payload):
    """Canonical bundle text: same design, same bytes, every time."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ) + "\n"


def save_bundle(path, netlist, spec, provenance=None):
    """Write a ``*.design.json`` bundle; returns the payload written."""
    payload = design_to_bundle(netlist, spec, provenance=provenance)
    tmp = "{}.tmp.{}".format(path, os.getpid())
    with open(tmp, "w", encoding="ascii") as handle:
        handle.write(dumps_bundle(payload))
    os.replace(tmp, path)
    return payload


# ------------------------------------------------------------ deserialize


def bundle_to_design(payload, path=None):
    """Rebuild a :class:`Bundle` from a parsed payload dict."""
    if not isinstance(payload, dict):
        raise CorpusError("design bundle must be a JSON object")
    if payload.get("format") != BUNDLE_FORMAT:
        raise CorpusError(
            "not a design bundle (format={!r}, expected {!r})".format(
                payload.get("format"), BUNDLE_FORMAT
            )
        )
    if payload.get("version") != BUNDLE_VERSION:
        raise CorpusError(
            "unsupported bundle version {!r} (this build reads "
            "version {})".format(payload.get("version"), BUNDLE_VERSION)
        )
    try:
        netlist = _netlist_from_dict(payload["netlist"])
        spec = spec_from_dict(payload["spec"])
    except CorpusError:
        raise
    except Exception as exc:
        raise CorpusError(
            "malformed design bundle: {}".format(exc)
        ) from exc
    provenance = payload.get("provenance")
    if provenance is not None and not isinstance(provenance, dict):
        raise CorpusError("bundle provenance must be an object or null")
    return Bundle(netlist, spec, provenance=provenance, path=path)


def _netlist_from_dict(data):
    netlist = Netlist(data.get("module", "top"))
    num_nets = int(data["num_nets"])
    if num_nets < 2:
        raise CorpusError("bundle netlist needs at least the const nets")
    # Net ids were fixed by the original allocation; reserve the pool up
    # front and attach every driver to its stored id explicitly.
    netlist.reserve_nets(num_nets)
    for entry in data["inputs"]:
        netlist.bind_input(entry["name"], entry["nets"])
    for kind, inputs, output in data["cells"]:
        netlist.add_cell(Kind(kind), inputs, output=output)
    for d, q, init in data["flops"]:
        netlist.add_flop(d, q=q, init=int(init))
    for entry in data["outputs"]:
        netlist.add_output(entry["name"], entry["nets"])
    for entry in data["registers"]:
        netlist.add_register(entry["name"], entry["flops"])
    for entry in data["probes"]:
        netlist.add_probe(entry["name"], entry["nets"])
    for net, name in data.get("net_names", []):
        netlist.set_net_name(net, name)
    return netlist


def spec_from_dict(data):
    critical = {}
    for entry in data["critical"]:
        reg_spec = register_spec_from_dict(entry)
        critical[reg_spec.register] = reg_spec
    trojan = None
    if data.get("trojan") is not None:
        raw = data["trojan"]
        trojan = TrojanInfo(
            name=raw["name"],
            trigger=raw.get("trigger", ""),
            payload=raw.get("payload", ""),
            target_register=raw["target_register"],
            trigger_cycles=raw.get("trigger_cycles", 1),
            trojan_nets=frozenset(raw.get("trojan_nets", [])),
        )
    return DesignSpec(
        name=data["name"],
        critical=critical,
        trojan=trojan,
        notes=data.get("notes", ""),
        candidate_registers=list(data.get("candidate_registers", [])),
        exclude_registers=list(data.get("exclude_registers", [])),
        pinned_inputs={
            name: value for name, value in data.get("pinned_inputs", [])
        },
    )


def load_bundle(path):
    """Read and rebuild a ``*.design.json`` bundle from disk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise CorpusError(
            "cannot read design bundle {!r}: {}".format(str(path), exc)
        ) from exc
    except ValueError as exc:
        raise CorpusError(
            "design bundle {!r} is not valid JSON: {}".format(
                str(path), exc
            )
        ) from exc
    return bundle_to_design(payload, path=str(path))
