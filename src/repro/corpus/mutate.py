"""Seeded mutation engine: derive new designs from any base design.

Every mutant is produced by one *mutator* applied to a clone of a base
design with a per-mutant :class:`random.Random` whose seed is derived
by SHA-256 from ``(corpus seed, mutant index, mutator name)`` — so a
corpus is a pure function of its :class:`CorpusConfig` and regenerating
it is byte-identical, while different corpus seeds draw different
trigger inputs, polarities, widths and flop inits (disjoint structural
fingerprints).

Trojan-injection mutators (ground truth carried in-band, both in the
bundle provenance and as ``spec.trojan``):

``comb-trigger``
    Combinational trigger — an AND of 8–24 seeded input literals
    (one wide cell when the width reaches the lint comparator
    threshold, a 2-input tree below it) piped through 1–3 new flops,
    payload mux on the critical register's D.
``counter-trigger``
    Sequential trigger — a 4–8 bit counter stepped by a narrow input
    condition, firing at all-ones; payload mux as above.
``split-seq``
    DeTrust-style trigger restructuring: the comparator is split into
    2–4 fragments, each registered in its own flop *before* the
    conjunction, so no single cell is wide enough for the lint
    comparator rule.
``merge-comb``
    DeTrust-style payload restructuring: no clean mux arm — the armed
    signal is XOR-folded into a seeded subset of the register's D bits,
    hiding the payload inside the documented update cone.
``upstream-payload`` (evasive; excluded from the default plan)
    Payload on a *non-critical* register one hop upstream, the
    pseudo-critical placement of Section 3.3 — built to exercise the
    full-audit path, since the three screens guard critical registers
    and may all stay silent.

Clean mutators (structural growth, no Trojan, must not trip any
screen):

``passthru-pipe``
    New input port through a pipeline of XOR-mixing flop stages to a
    new output port; stages are grouped as a named register.
``output-tap``
    A buffer chain tapping an existing output into a new output port.

Every mutant also gets a 32-bit constant ``corpus_tag`` register
(seeded flop inits, self-holding, exposed as an output): the per-mutant
serial number that makes fingerprints from different corpus seeds
disjoint even when two draws pick the same structure. Flop init values
are part of the structural fingerprint.

Detectability, by construction: every default Trojan mutator routes its
trigger through at least one **new flop** whose Q is not documented by
any ValidWay, so the IFT screen always finds undocumented state feeding
the critical register, and the diff screen's undocumented-state
excitation can force the armed net without solving the trigger — the
portfolio's recall on the default mutators is structural, not
probabilistic.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass

from repro.corpus.bundle import design_to_bundle, dumps_bundle
from repro.errors import CorpusError
from repro.netlist.cells import CONST0, CONST1, Kind
from repro.netlist.fingerprint import netlist_fingerprint
from repro.properties.valid_ways import DesignSpec, TrojanInfo

DEFAULT_BASES = ("risc", "mc8051", "router")
DEFAULT_MUTATORS = (
    "comb-trigger",
    "counter-trigger",
    "split-seq",
    "merge-comb",
    "passthru-pipe",
    "output-tap",
)
MANIFEST_NAME = "corpus.json"


@dataclass(frozen=True)
class CorpusConfig:
    """Everything that determines a corpus (same config ⇒ same bytes)."""

    seed: int = 0
    count: int = 40
    bases: tuple = DEFAULT_BASES
    mutators: tuple = DEFAULT_MUTATORS

    def to_dict(self):
        return {
            "seed": self.seed,
            "count": self.count,
            "bases": list(self.bases),
            "mutators": list(self.mutators),
        }


@dataclass(frozen=True)
class MutantPlan:
    """One planned mutant: everything needed to build it."""

    index: int
    name: str
    base: str
    mutator: str
    seed: int  # per-mutant RNG seed, derived from the corpus seed


@dataclass
class Mutant:
    """A built mutant, ready to serialize or screen."""

    plan: MutantPlan
    netlist: object
    spec: object
    provenance: dict
    fingerprint: str = ""

    def __post_init__(self):
        if not self.fingerprint:
            self.fingerprint = netlist_fingerprint(self.netlist)


def _mutant_seed(corpus_seed, index, mutator):
    digest = hashlib.sha256(
        "{}:{}:{}".format(corpus_seed, index, mutator).encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def mutant_plans(config):
    """The deterministic plan list for a config.

    Mutators round-robin per index and bases rotate underneath, so
    every (base, mutator) pair gets an even share of any corpus size —
    the per-mutator recall table needs balanced samples.
    """
    if config.count < 0:
        raise CorpusError("corpus count must be >= 0")
    for mutator in config.mutators:
        if mutator not in MUTATORS:
            raise CorpusError(
                "unknown mutator {!r}; known: {}".format(
                    mutator, ", ".join(sorted(MUTATORS))
                )
            )
    if not config.bases or not config.mutators:
        raise CorpusError("corpus needs at least one base and one mutator")
    plans = []
    for index in range(config.count):
        mutator = config.mutators[index % len(config.mutators)]
        base = config.bases[
            (index // len(config.mutators)) % len(config.bases)
        ]
        plans.append(
            MutantPlan(
                index=index,
                name="{}-{}-{:05d}".format(base, mutator, index),
                base=base,
                mutator=mutator,
                seed=_mutant_seed(config.seed, index, mutator),
            )
        )
    return plans


def build_mutant(plan, base_netlist, base_spec, corpus_seed=None):
    """Apply one plan to a base design; returns a :class:`Mutant`.

    The base is cloned, never modified; the RNG is fresh per mutant.
    """
    import random

    rng = random.Random(plan.seed)
    netlist = base_netlist.clone()
    netlist.name = plan.name
    mutator = MUTATORS[plan.mutator]
    before = netlist.num_nets
    ground_truth = mutator.apply(netlist, base_spec, rng)
    _attach_tag(netlist, rng)
    trojan = None
    if ground_truth.get("trojaned"):
        trojan = TrojanInfo(
            name=plan.name,
            trigger=ground_truth.get("trigger", plan.mutator),
            payload=ground_truth.get("payload", ""),
            target_register=ground_truth["target_register"],
            trigger_cycles=ground_truth.get("trigger_cycles", 1),
            trojan_nets=frozenset(range(before, netlist.num_nets)),
        )
    spec = DesignSpec(
        name=plan.name,
        critical=base_spec.critical,
        trojan=trojan,
        notes="corpus mutant of {!r} via {}".format(
            plan.base, plan.mutator
        ),
        candidate_registers=list(base_spec.candidate_registers),
        exclude_registers=list(base_spec.exclude_registers),
        pinned_inputs=dict(base_spec.pinned_inputs),
    )
    provenance = {
        "base": plan.base,
        "corpus_seed": corpus_seed,
        "index": plan.index,
        "mutant_seed": plan.seed,
        "mutator": plan.mutator,
        "params": ground_truth.get("params", {}),
        "trojaned": bool(ground_truth.get("trojaned")),
        "target_register": ground_truth.get("target_register"),
    }
    return Mutant(plan, netlist, spec, provenance)


def generate_corpus(config, out_dir, build_base=None, progress=None):
    """Build and serialize a whole corpus; returns the manifest dict.

    ``build_base(name) -> (netlist, spec)`` defaults to the frontend's
    built-in registry; pass a loader to fuzz external bundles instead.
    """
    if build_base is None:
        from repro.frontend import load_design

        def build_base(name):
            loaded = load_design(name)
            return loaded.netlist, loaded.spec

    os.makedirs(out_dir, exist_ok=True)
    bases = {}
    for base in config.bases:
        bases[base] = build_base(base)

    entries = []
    for plan in mutant_plans(config):
        base_netlist, base_spec = bases[plan.base]
        mutant = build_mutant(
            plan, base_netlist, base_spec, corpus_seed=config.seed
        )
        file_name = plan.name + ".design.json"
        path = os.path.join(out_dir, file_name)
        payload = design_to_bundle(
            mutant.netlist, mutant.spec, provenance=mutant.provenance
        )
        tmp = "{}.tmp.{}".format(path, os.getpid())
        with open(tmp, "w", encoding="ascii") as handle:
            handle.write(dumps_bundle(payload))
        os.replace(tmp, path)
        entries.append(
            {
                "name": plan.name,
                "file": file_name,
                "base": plan.base,
                "mutator": plan.mutator,
                "trojaned": mutant.provenance["trojaned"],
                "target_register": mutant.provenance["target_register"],
                "fingerprint": mutant.fingerprint,
            }
        )
        if progress is not None:
            progress(plan, mutant)

    manifest = {
        "format": "repro-corpus",
        "version": 1,
        "config": config.to_dict(),
        "mutants": entries,
    }
    manifest_path = os.path.join(out_dir, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="ascii") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest


# ------------------------------------------------------------- the mutators


class Mutator:
    """One seeded design transformation.

    ``apply(netlist, spec, rng)`` mutates the (cloned) netlist in place
    and returns the ground-truth dict: ``trojaned``, ``params``, and —
    for Trojans — ``target_register`` plus trigger/payload descriptions.
    """

    name = ""
    trojaned = False
    evasive = False  # True: may legitimately defeat all three screens

    def apply(self, netlist, spec, rng):
        raise NotImplementedError


def _attach_tag(netlist, rng):
    """The 32-bit seeded serial-number register every mutant carries."""
    qs = [netlist.new_net("corpus_tag[{}]".format(i)) for i in range(32)]
    indexes = []
    for q in qs:
        indexes.append(len(netlist.flops))
        netlist.add_flop(q, q=q, init=rng.getrandbits(1))
    netlist.add_register("corpus_tag", indexes)
    netlist.add_output("corpus_tag", qs)


def _input_bit_pool(netlist, spec):
    """Input nets a trigger may read: everything not pinned by the spec.

    Pinned ports (normally ``reset``) are held constant during formal
    runs; a trigger literal over them would be partially dead.
    """
    pool = []
    for name, nets in netlist.inputs.items():
        if name in spec.pinned_inputs:
            continue
        pool.extend(nets)
    if not pool:
        raise CorpusError("base design has no unpinned input bits")
    return pool


def _pick_target(spec, rng):
    names = sorted(spec.critical)
    if not names:
        raise CorpusError("base design spec declares no critical registers")
    return names[rng.randrange(len(names))]


def _literals(netlist, rng, bits):
    """Seeded-polarity literals over the chosen input bits."""
    nets = []
    for bit in bits:
        if rng.getrandbits(1):
            nets.append(netlist.add_cell(Kind.NOT, (bit,)))
        else:
            nets.append(bit)
    return nets


def _and_tree(netlist, nets):
    """Conjunction as a balanced tree of 2-input ANDs."""
    level = list(nets)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(netlist.add_cell(Kind.AND, (level[i], level[i + 1])))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _pipeline(netlist, net, depth):
    """Register a net through ``depth`` new flops (all init 0)."""
    for _ in range(depth):
        net = netlist.add_flop(net)
    return net


def _payload_mux(netlist, spec, rng, target, armed):
    """The classic payload: per-bit mux between the documented D and a
    corrupted value, selected by the armed trigger."""
    corrupt_kinds = []
    for flop_index in netlist.registers[target]:
        old_d = netlist.flops[flop_index].d
        if rng.getrandbits(1):
            bad = netlist.add_cell(Kind.NOT, (old_d,))
            corrupt_kinds.append("invert")
        else:
            bad = CONST1 if rng.getrandbits(1) else CONST0
            corrupt_kinds.append("stuck")
        new_d = netlist.add_cell(Kind.MUX, (armed, old_d, bad))
        netlist.rewire_flop_d(flop_index, new_d)
    return corrupt_kinds


class CombTrigger(Mutator):
    name = "comb-trigger"
    trojaned = True

    def apply(self, netlist, spec, rng):
        target = _pick_target(spec, rng)
        width = rng.randrange(8, 25)
        depth = rng.randrange(1, 4)
        pool = _input_bit_pool(netlist, spec)
        bits = rng.sample(pool, min(width, len(pool)))
        literals = _literals(netlist, rng, bits)
        if len(literals) >= 16:
            # one wide conjunction: exactly the shape the lint
            # wide-comparator rule exists to catch
            trigger = netlist.add_cell(Kind.AND, tuple(literals))
        else:
            trigger = _and_tree(netlist, literals)
        armed = _pipeline(netlist, trigger, depth)
        _payload_mux(netlist, spec, rng, target, armed)
        return {
            "trojaned": True,
            "target_register": target,
            "trigger": "comb AND of {} input literals, {} flop "
            "pipeline".format(len(literals), depth),
            "payload": "mux-corrupt {}".format(target),
            "trigger_cycles": depth,
            "params": {"width": len(literals), "depth": depth},
        }


class CounterTrigger(Mutator):
    name = "counter-trigger"
    trojaned = True

    def apply(self, netlist, spec, rng):
        target = _pick_target(spec, rng)
        counter_width = rng.randrange(4, 9)
        arm_width = rng.randrange(2, 5)
        pool = _input_bit_pool(netlist, spec)
        bits = rng.sample(pool, min(arm_width, len(pool)))
        step = _and_tree(netlist, _literals(netlist, rng, bits))
        # a ripple-carry counter that advances on qualifying cycles
        qs = [netlist.new_net() for _ in range(counter_width)]
        carry = step
        for bit, q in enumerate(qs):
            d = netlist.add_cell(Kind.XOR, (q, carry))
            netlist.add_flop(d, q=q, init=0)
            if bit + 1 < len(qs):
                carry = netlist.add_cell(Kind.AND, (q, carry))
        armed_comb = _and_tree(netlist, qs)  # fires at all-ones
        armed = netlist.add_flop(armed_comb)
        _payload_mux(netlist, spec, rng, target, armed)
        return {
            "trojaned": True,
            "target_register": target,
            "trigger": "{}-bit counter armed by {} input literals".format(
                counter_width, arm_width
            ),
            "payload": "mux-corrupt {}".format(target),
            "trigger_cycles": (1 << counter_width) - 1,
            "params": {
                "counter_width": counter_width,
                "arm_width": arm_width,
            },
        }


class SplitSeq(Mutator):
    name = "split-seq"
    trojaned = True

    def apply(self, netlist, spec, rng):
        target = _pick_target(spec, rng)
        width = rng.randrange(12, 25)
        fragments = rng.randrange(2, 5)
        pool = _input_bit_pool(netlist, spec)
        bits = rng.sample(pool, min(width, len(pool)))
        literals = _literals(netlist, rng, bits)
        # DeTrust: register each partial product before the conjunction
        # so no cell sees enough inputs to look like a comparator
        partials = []
        chunk = max(1, len(literals) // fragments)
        for start in range(0, len(literals), chunk):
            part = _and_tree(netlist, literals[start : start + chunk])
            partials.append(netlist.add_flop(part))
        armed = netlist.add_flop(_and_tree(netlist, partials))
        _payload_mux(netlist, spec, rng, target, armed)
        return {
            "trojaned": True,
            "target_register": target,
            "trigger": "split comparator: {} literals across {} flop "
            "fragments".format(len(literals), len(partials)),
            "payload": "mux-corrupt {}".format(target),
            "trigger_cycles": 2,
            "params": {
                "width": len(literals),
                "fragments": len(partials),
            },
        }


class MergeComb(Mutator):
    name = "merge-comb"
    trojaned = True

    def apply(self, netlist, spec, rng):
        target = _pick_target(spec, rng)
        width = rng.randrange(8, 15)  # below the comparator threshold
        depth = rng.randrange(1, 3)
        pool = _input_bit_pool(netlist, spec)
        bits = rng.sample(pool, min(width, len(pool)))
        armed = _pipeline(
            netlist, _and_tree(netlist, _literals(netlist, rng, bits)), depth
        )
        # DeTrust payload merge: no mux arm — fold the armed signal into
        # a seeded subset of the D cone with XORs
        indexes = netlist.registers[target]
        mask = [rng.getrandbits(1) for _ in indexes]
        if not any(mask):
            mask[rng.randrange(len(mask))] = 1
        flipped = 0
        for flop_index, hit in zip(indexes, mask):
            if not hit:
                continue
            old_d = netlist.flops[flop_index].d
            netlist.rewire_flop_d(
                flop_index, netlist.add_cell(Kind.XOR, (old_d, armed))
            )
            flipped += 1
        return {
            "trojaned": True,
            "target_register": target,
            "trigger": "comb AND of {} input literals, {} flop "
            "pipeline".format(len(bits), depth),
            "payload": "xor-fold into {} of {} D bits of {}".format(
                flipped, len(indexes), target
            ),
            "trigger_cycles": depth,
            "params": {"width": len(bits), "depth": depth,
                       "flipped_bits": flipped},
        }


class UpstreamPayload(Mutator):
    name = "upstream-payload"
    trojaned = True
    evasive = True

    def apply(self, netlist, spec, rng):
        critical = set(spec.critical)
        upstream = sorted(
            name for name in netlist.registers
            if name not in critical and name not in spec.exclude_registers
        )
        # placement degrades to the critical register when the base has
        # no other register to corrupt
        target = (
            upstream[rng.randrange(len(upstream))]
            if upstream
            else _pick_target(spec, rng)
        )
        width = rng.randrange(8, 13)
        pool = _input_bit_pool(netlist, spec)
        bits = rng.sample(pool, min(width, len(pool)))
        armed = _pipeline(
            netlist, _and_tree(netlist, _literals(netlist, rng, bits)), 1
        )
        _payload_mux(netlist, spec, rng, target, armed)
        return {
            "trojaned": True,
            "target_register": target,
            "trigger": "comb AND of {} input literals, 1 flop".format(
                len(bits)
            ),
            "payload": "mux-corrupt upstream register {}".format(target),
            "trigger_cycles": 1,
            "params": {"width": len(bits),
                       "upstream": target not in critical},
        }


class PassthruPipe(Mutator):
    name = "passthru-pipe"
    trojaned = False

    def apply(self, netlist, spec, rng):
        width = rng.randrange(4, 9)
        depth = rng.randrange(2, 5)
        port_index = len(netlist.inputs)
        in_nets = netlist.add_input(
            "thru_in_{}".format(port_index), width
        )
        stage = in_nets
        indexes = []
        for _level in range(depth):
            nxt = []
            for bit, net in enumerate(stage):
                # XOR-mix with the neighbouring bit so the pipeline is
                # not a pure shift register
                if rng.getrandbits(1) and width > 1:
                    other = stage[(bit + 1) % width]
                    if other != net:
                        net = netlist.add_cell(Kind.XOR, (net, other))
                indexes.append(len(netlist.flops))
                nxt.append(netlist.add_flop(net, init=rng.getrandbits(1)))
            stage = nxt
        netlist.add_register("thru_pipe_{}".format(port_index), indexes)
        netlist.add_output("thru_out_{}".format(port_index), stage)
        return {
            "trojaned": False,
            "target_register": None,
            "params": {"width": width, "depth": depth},
        }


class OutputTap(Mutator):
    name = "output-tap"
    trojaned = False

    def apply(self, netlist, spec, rng):
        outputs = sorted(netlist.outputs)
        port = outputs[rng.randrange(len(outputs))]
        nets = netlist.outputs[port]
        net = nets[rng.randrange(len(nets))]
        depth = rng.randrange(2, 7)
        for _ in range(depth):
            net = netlist.add_cell(Kind.BUF, (net,))
        netlist.add_output(
            "tap_{}_{}".format(port, len(netlist.outputs)), [net]
        )
        return {
            "trojaned": False,
            "target_register": None,
            "params": {"port": port, "depth": depth},
        }


MUTATORS = {
    mutator.name: mutator
    for mutator in (
        CombTrigger(),
        CounterTrigger(),
        SplitSeq(),
        MergeComb(),
        UpstreamPayload(),
        PassthruPipe(),
        OutputTap(),
    )
}
