"""Corpus runner: screen every mutant, score against in-band truth.

:func:`run_corpus` fans the bundles of a generated corpus through the
static portfolio — lint, IFT and the golden-model differential screen —
in parallel worker processes, and :func:`score_results` folds the rows
into a per-mutator detection-rate table keyed by the ground truth each
bundle carries in its provenance.

A mutant counts as *detected* when any enabled modality reports a
finding at or above ``RunConfig.fail_on`` (default ``suspicious`` —
the same exit-code convention as ``repro lint``). A trojaned mutant
nobody flags lands in ``missed``; a clean mutant anybody flags lands in
``false_positives``; :func:`detection_gate` turns either into exit 1,
which is what the CI corpus-smoke job enforces.

With ``RunConfig.audit=True`` every mutant additionally runs through
Algorithm 1 on the shared :class:`~repro.sched.AuditScheduler` pool
(via :func:`repro.bench.harness.audit_sweep`) — the path that exists
for the *evasive* mutators the static screens are allowed to miss.

The report dict is a pure function of the corpus bytes and the config:
no timestamps, no timings, canonical float rounding — re-running the
same corpus yields byte-identical JSON (:func:`dumps_report`).
"""

from __future__ import annotations

import glob
import json
import multiprocessing
import os
from dataclasses import dataclass

from repro.corpus.bundle import load_bundle
from repro.corpus.mutate import MANIFEST_NAME
from repro.errors import CorpusError

REPORT_FORMAT = "repro-corpus-report"
REPORT_VERSION = 1
DEFAULT_MODALITIES = ("lint", "ift", "diff")


@dataclass(frozen=True)
class RunConfig:
    """Everything that determines a corpus run's report bytes."""

    jobs: int = 1
    fail_on: str = "suspicious"
    modalities: tuple = DEFAULT_MODALITIES
    audit: bool = False  # also run Algorithm 1 per mutant (sched pool)
    audit_max_cycles: int = 12
    audit_engine: str = "bmc"

    def to_dict(self):
        payload = {
            "fail_on": self.fail_on,
            "modalities": list(self.modalities),
            "audit": self.audit,
        }
        if self.audit:
            payload["audit_max_cycles"] = self.audit_max_cycles
            payload["audit_engine"] = self.audit_engine
        return payload


def corpus_paths(corpus_dir):
    """Bundle paths of a corpus directory, in manifest order.

    Falls back to sorted ``*.design.json`` globbing for a directory of
    loose bundles without a ``corpus.json`` manifest.
    """
    manifest_path = os.path.join(corpus_dir, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        try:
            with open(manifest_path, "r", encoding="ascii") as handle:
                manifest = json.load(handle)
        except ValueError as exc:
            raise CorpusError(
                "unreadable corpus manifest {}: {}".format(
                    manifest_path, exc
                )
            ) from exc
        return [
            os.path.join(corpus_dir, entry["file"])
            for entry in manifest.get("mutants", ())
        ]
    paths = sorted(glob.glob(os.path.join(corpus_dir, "*.design.json")))
    if not paths:
        raise CorpusError(
            "no corpus at {!r}: neither {} nor any *.design.json".format(
                corpus_dir, MANIFEST_NAME
            )
        )
    return paths


def _run_modality(modality, netlist, spec, design):
    if modality == "lint":
        from repro.lint import lint_design

        return lint_design(netlist, spec, design=design)
    if modality == "ift":
        from repro.ift import analyze_design

        return analyze_design(netlist, spec, design=design)
    if modality == "diff":
        from repro.diff import analyze_design

        return analyze_design(netlist, spec, design=design)
    raise CorpusError(
        "unknown modality {!r}; known: {}".format(
            modality, ", ".join(DEFAULT_MODALITIES)
        )
    )


def screen_bundle(path, config=None):
    """Screen one bundle through the enabled modalities; returns a row.

    Module-level so a fork Pool can ship it to workers; the row is a
    plain dict ready for :func:`score_results`.
    """
    from repro.lint import severity_rank

    if config is None:
        config = RunConfig()
    bundle = load_bundle(path)
    netlist, spec = bundle.netlist, bundle.spec
    provenance = bundle.provenance or {}
    floor = severity_rank(config.fail_on)
    modalities = {}
    for modality in config.modalities:
        report = _run_modality(modality, netlist, spec, netlist.name)
        flagged = sorted(
            {
                finding.severity
                for finding in report.findings
                if severity_rank(finding.severity) >= floor
            }
        )
        modalities[modality] = {
            "flagged": bool(flagged),
            "flagged_severities": flagged,
            "findings": len(report.findings),
        }
    return {
        "name": netlist.name,
        "file": os.path.basename(path),
        "base": provenance.get("base"),
        "mutator": provenance.get("mutator"),
        "trojaned": bool(provenance.get("trojaned")),
        "target_register": provenance.get("target_register"),
        "modalities": modalities,
        "detected": any(m["flagged"] for m in modalities.values()),
    }


def run_corpus(corpus_dir, config=None, progress=None):
    """Screen a whole corpus; returns the list of per-mutant rows.

    ``progress(row)`` fires per mutant in manifest order (after the
    parallel fan-out completes, so the callback never races workers).
    """
    if config is None:
        config = RunConfig()
    paths = corpus_paths(corpus_dir)
    jobs = max(1, min(config.jobs, len(paths)))
    if jobs > 1:
        context = multiprocessing.get_context("fork")
        with context.Pool(jobs) as pool:
            rows = pool.starmap(
                screen_bundle, [(path, config) for path in paths]
            )
    else:
        rows = [screen_bundle(path, config) for path in paths]
    if config.audit:
        _audit_rows(paths, rows, config)
    if progress is not None:
        for row in rows:
            progress(row)
    return rows


def _audit_rows(paths, rows, config):
    """Fold an Algorithm 1 verdict into every row (sched-pool sweep)."""
    from repro.bench.harness import audit_sweep

    designs = []
    for path, row in zip(paths, rows):
        bundle = load_bundle(path)
        designs.append((row["name"], bundle.netlist, bundle.spec))
    sweep = audit_sweep(
        designs,
        jobs=config.jobs if config.jobs > 1 else None,
        max_cycles=config.audit_max_cycles,
        engine=config.audit_engine,
    )
    for row, audit_row in zip(rows, sweep):
        row["modalities"]["audit"] = {
            "flagged": bool(audit_row.trojan_found),
            "status": audit_row.status,
            "registers": audit_row.registers,
        }
        row["detected"] = row["detected"] or bool(audit_row.trojan_found)


def score_results(rows, config=None):
    """Fold rows into the deterministic detection-rate report dict."""
    if config is None:
        config = RunConfig()
    per_mutator = {}
    per_modality = {}
    missed = []
    false_positives = []
    for row in rows:
        stats = per_mutator.setdefault(
            row["mutator"] or "unknown",
            {
                "mutants": 0,
                "trojaned": 0,
                "detected": 0,
                "clean": 0,
                "false_positives": 0,
            },
        )
        stats["mutants"] += 1
        if row["trojaned"]:
            stats["trojaned"] += 1
            if row["detected"]:
                stats["detected"] += 1
            else:
                missed.append(row["name"])
        else:
            stats["clean"] += 1
            if row["detected"]:
                stats["false_positives"] += 1
                false_positives.append(row["name"])
        for modality, verdict in row["modalities"].items():
            tally = per_modality.setdefault(
                modality, {"trojaned_flagged": 0, "clean_flagged": 0}
            )
            if verdict["flagged"]:
                key = (
                    "trojaned_flagged"
                    if row["trojaned"]
                    else "clean_flagged"
                )
                tally[key] += 1
    for stats in per_mutator.values():
        stats["recall"] = _rate(stats["detected"], stats["trojaned"])
        stats["fp_rate"] = _rate(stats["false_positives"], stats["clean"])
    trojaned = sum(s["trojaned"] for s in per_mutator.values())
    detected = sum(s["detected"] for s in per_mutator.values())
    clean = sum(s["clean"] for s in per_mutator.values())
    return {
        "format": REPORT_FORMAT,
        "version": REPORT_VERSION,
        "config": config.to_dict(),
        "totals": {
            "mutants": len(rows),
            "trojaned": trojaned,
            "clean": clean,
            "detected": detected,
            "recall": _rate(detected, trojaned),
            "false_positives": len(false_positives),
            "fp_rate": _rate(len(false_positives), clean),
        },
        "per_mutator": per_mutator,
        "per_modality": per_modality,
        "missed": sorted(missed),
        "false_positives": sorted(false_positives),
        "mutants": rows,
    }


def _rate(hits, total):
    """A stable ratio: 4 decimal places, ``None`` over an empty pool."""
    if not total:
        return None
    return round(hits / total, 4)


def detection_gate(report):
    """CI exit status: 1 on any trojaned miss or any clean flag."""
    return 1 if report["missed"] or report["false_positives"] else 0


def dumps_report(report):
    """Canonical report JSON — byte-identical across reruns."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
