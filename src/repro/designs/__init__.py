"""Benchmark designs: RISC (PIC16F84A-style), MC8051-style, AES-128, and a
4-port packet router."""

from repro.designs.aes import build_aes
from repro.designs.mc8051 import build_mc8051
from repro.designs.risc import build_risc
from repro.designs.router import build_router, router_redirect_trojan

__all__ = [
    "build_aes",
    "build_mc8051",
    "build_risc",
    "build_router",
    "router_redirect_trojan",
]
