"""Gate-level iterative AES-128 encryption core (the Trust-Hub AES stand-in).

One round per clock cycle with an on-the-fly key schedule: 16 S-boxes in
the datapath plus 4 in the key expansion, each synthesized from the FIPS
truth table by the builder's memoized-Shannon LUT synthesizer. Verified
bit-exact against :mod:`repro.designs.aes_ref` (FIPS-197 Appendix B).

Protocol::

    load_key = 1            key_register <- key_in           (one cycle)
    start = 1               state <- pt_in ^ key, round <- 1, busy
    10 busy cycles          one AES round each cycle
    done = 1                ct_out holds the ciphertext

The **critical register** is ``key_register`` (valid ways: reset, load) —
the register every AES Trojan in Table 1 corrupts. Its cone of influence
excludes the round datapath entirely, which is why the paper's key checks
stay cheap on a 10k+-gate core (and why ours do: the engines unroll only
the load mux plus whatever trigger logic a Trojan grafts on).

Bit convention: 128-bit words are big-endian as written in hex — byte 0
(the first byte of the FIPS block) occupies bits [120:128] of the port.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.designs.aes_ref import RCON, SBOX
from repro.netlist.builder import Circuit
from repro.properties.valid_ways import DesignSpec, RegisterSpec, ValidWay


def block_byte(word, index):
    """Byte ``index`` (0 = first/most-significant) of a 128-bit BitVec."""
    hi = 128 - 8 * index
    return word[hi - 8 : hi]


def bytes_to_word(circuit, bytes_):
    """16 byte BitVecs (b0 first) -> one 128-bit BitVec."""
    word = bytes_[15]
    for b in reversed(bytes_[:15]):
        word = word.cat(b)
    return word


def sbox_byte(circuit, byte):
    """S-box lookup as synthesized logic (memoized Shannon cofactoring)."""
    return circuit.lut_word(byte, SBOX, 8)


def xtime_byte(circuit, byte):
    """GF(2^8) multiply-by-x: shift left, conditionally xor 0x1B."""
    shifted = byte.shl_const(1)
    reduce_mask = byte[7].repeat(8) & circuit.const(0x1B, 8)
    return shifted ^ reduce_mask


def aes_round_bytes(circuit, state_bytes, is_last):
    """SubBytes + ShiftRows + (MixColumns unless last), byte-list form."""
    sub = [sbox_byte(circuit, b) for b in state_bytes]
    shifted = [sub[4 * (((i // 4) + (i % 4)) % 4) + (i % 4)] for i in range(16)]
    mixed = []
    for col in range(4):
        a = shifted[4 * col : 4 * col + 4]
        xt = [xtime_byte(circuit, b) for b in a]
        mixed.append(xt[0] ^ (xt[1] ^ a[1]) ^ a[2] ^ a[3])
        mixed.append(a[0] ^ xt[1] ^ (xt[2] ^ a[2]) ^ a[3])
        mixed.append(a[0] ^ a[1] ^ xt[2] ^ (xt[3] ^ a[3]))
        mixed.append((xt[0] ^ a[0]) ^ a[1] ^ a[2] ^ xt[3])
    out = [circuit.mux(is_last, m, s) for m, s in zip(mixed, shifted)]
    return out


def key_expand_bytes(circuit, rk_bytes, rcon_byte):
    """One AES-128 key-schedule step in byte-list form."""
    w3 = rk_bytes[12:16]
    temp = [sbox_byte(circuit, w3[(i + 1) % 4]) for i in range(4)]
    temp[0] = temp[0] ^ rcon_byte
    out = [None] * 16
    for i in range(4):
        out[i] = rk_bytes[i] ^ temp[i]
    for w in range(1, 4):
        for i in range(4):
            out[4 * w + i] = rk_bytes[4 * w + i] ^ out[4 * (w - 1) + i]
    return out


@dataclass
class AesSignals:
    """Internal signals handed to Trojan constructors."""

    circuit: object
    reset: object
    load_key: object
    start: object
    pt_in: object
    key_in: object
    busy: object
    round_counter: object
    regs: dict = field(default_factory=dict)


def build_aes(trojan=None, rounds=10, name="aes"):
    """Construct the AES core; returns ``(netlist, DesignSpec)``."""
    c = Circuit(name)
    reset = c.input("reset", 1)
    load_key = c.input("load_key", 1)
    start = c.input("start", 1)
    key_in = c.input("key_in", 128)
    pt_in = c.input("pt_in", 128)

    key_reg = c.reg("key_register", 128)
    state = c.reg("state", 128)
    round_key = c.reg("round_key", 128)
    round_counter = c.reg("round_counter", 4)
    busy = c.reg("busy", 1)
    done = c.reg("done", 1)

    key_bytes = [block_byte(key_reg.q, i) for i in range(16)]
    state_bytes = [block_byte(state.q, i) for i in range(16)]
    rk_bytes = [block_byte(round_key.q, i) for i in range(16)]

    is_last = round_counter.q.eq_const(rounds)
    # rcon for the *next* round key: indexed by the current round counter.
    rcon_table = [0] * 16
    for i, value in enumerate(RCON):
        rcon_table[i] = value
    rcon_now = c.lut_word(round_counter.q, rcon_table, 8)
    rcon_first = c.const(RCON[0], 8)

    # First round key (computed from the key register when start fires).
    first_rk = key_expand_bytes(c, key_bytes, rcon_first)
    next_rk = key_expand_bytes(c, rk_bytes, rcon_now)

    round_out = aes_round_bytes(c, state_bytes, is_last)
    round_result = bytes_to_word(c, round_out) ^ round_key.q

    stepping = busy.q & ~start

    nexts = {}
    nexts["key_register"] = c.select(
        key_reg.q,
        (reset, c.const(0, 128)),
        (load_key, key_in),
    )
    nexts["state"] = c.select(
        state.q,
        (reset, c.const(0, 128)),
        (start, pt_in ^ key_reg.q),
        (stepping, round_result),
    )
    nexts["round_key"] = c.select(
        round_key.q,
        (reset, c.const(0, 128)),
        (start, bytes_to_word(c, first_rk)),
        (stepping, bytes_to_word(c, next_rk)),
    )
    nexts["round_counter"] = c.select(
        round_counter.q,
        (reset, c.const(0, 4)),
        (start, c.const(1, 4)),
        (stepping & ~is_last, round_counter.q + 1),
    )
    nexts["busy"] = c.select(
        busy.q,
        (reset, c.false()),
        (start, c.true()),
        (stepping & is_last, c.false()),
    )
    nexts["done"] = c.select(
        done.q,
        (reset | start, c.false()),
        (stepping & is_last, c.true()),
    )

    trojan_info = None
    if trojan is not None:
        signals = AesSignals(
            circuit=c,
            reset=reset,
            load_key=load_key,
            start=start,
            pt_in=pt_in,
            key_in=key_in,
            busy=busy,
            round_counter=round_counter,
            regs={
                "key_register": key_reg,
                "state": state,
                "round_key": round_key,
            },
        )
        nets_before = c.netlist.num_nets
        trojan_info = trojan(signals, nexts)
        trojan_info.trojan_nets = frozenset(
            range(nets_before, c.netlist.num_nets)
        )

    key_reg.drive(nexts["key_register"])
    state.drive(nexts["state"])
    round_key.drive(nexts["round_key"])
    round_counter.drive(nexts["round_counter"])
    busy.drive(nexts["busy"])
    done.drive(nexts["done"])

    c.output("ct_out", state.q)
    c.output("done_out", done.q)
    c.output("busy_out", busy.q)

    netlist = c.finalize()
    return netlist, aes_design_spec(trojan_info)


def aes_register_specs():
    key_ways = [
        ValidWay("reset", lambda m: m.input("reset"),
                 value=lambda m: m.const(0, 128), expression="reset"),
        ValidWay("load", lambda m: m.input("load_key"),
                 value=lambda m: m.input("key_in"), expression="load_key"),
    ]
    return {
        "key_register": RegisterSpec(
            "key_register",
            key_ways,
            description="the AES secret-key register",
            # key -> round_key -> state -> ct_out: an encryption must run
            # for a key change to reach an output.
            observe_latency=12,
        ),
    }


def aes_design_spec(trojan_info=None):
    return DesignSpec(
        name="aes",
        critical=aes_register_specs(),
        trojan=trojan_info,
        notes=(
            "Iterative AES-128, one round per cycle, on-the-fly key "
            "schedule. Critical register: key_register."
        ),
        pinned_inputs={"reset": 0},
    )
