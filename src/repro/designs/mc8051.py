"""An 8051-style microcontroller core (the Trust-Hub MC8051 stand-in).

A single-cycle accumulator machine with the 8051's architectural registers
that the MC8051 Trojans target: the accumulator (ACC), the stack pointer
(SP, reset value 0x07 as on a real 8051), the interrupt-enable register
(IE) and a UART receive register. Instructions are 16 bits — an 8051
opcode byte in [15:8] (real 8051 encodings where one exists) and an
immediate operand byte in [7:0] — supplied on the ``instr`` port, which
models the code-memory fetch interface.

Supported instructions::

    0x00 NOP               0x74 MOV  A,#data      0xE3 MOVX A,@R1
    0xE0 MOVX A,@DPTR      0xF3 MOVX @R1,A        0x24 ADD  A,#data
    0xC0 PUSH              0xD0 POP               0x12 LCALL addr
    0x22 RET               0x80 SJMP addr         0xA8 MOV  IE,#data
    0xF5 MOV  B,#data      0x32 RETI

Interrupts: when IE.EA (bit 7) and IE.EX0 (bit 0) are set and
``ext_interrupt`` is high, the core vectors to 0x03 and pushes two stack
bytes (SP += 2), mirroring the 8051's LCALL-like interrupt entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.builder import Circuit
from repro.properties.valid_ways import DesignSpec, RegisterSpec, ValidWay

NOP = 0x00
MOV_A_DATA = 0x74
MOVX_A_R1 = 0xE3
MOVX_A_DPTR = 0xE0
MOVX_R1_A = 0xF3
ADD_A_DATA = 0x24
PUSH = 0xC0
POP = 0xD0
LCALL = 0x12
RET = 0x22
SJMP = 0x80
MOV_IE_DATA = 0xA8
MOV_B_DATA = 0xF5
RETI = 0x32

OPCODE_NAMES = {
    NOP: "NOP", MOV_A_DATA: "MOV A,#data", MOVX_A_R1: "MOVX A,@R1",
    MOVX_A_DPTR: "MOVX A,@DPTR", MOVX_R1_A: "MOVX @R1,A",
    ADD_A_DATA: "ADD A,#data", PUSH: "PUSH", POP: "POP", LCALL: "LCALL",
    RET: "RET", SJMP: "SJMP", MOV_IE_DATA: "MOV IE,#data",
    MOV_B_DATA: "MOV B,#data", RETI: "RETI",
}

SP_RESET = 0x07  # 8051 stack pointer reset value
INT_VECTOR = 0x03  # external interrupt 0 vector


def instruction(opcode, operand=0):
    """Assemble a 16-bit instruction word (opcode byte + operand byte)."""
    return ((opcode & 0xFF) << 8) | (operand & 0xFF)


@dataclass
class Mc8051Signals:
    """Internal signals handed to Trojan constructors."""

    circuit: object
    reset: object
    opcode: object
    operand: object
    uart_rx: object
    uart_valid: object
    xdata_in: object
    interrupt_taken: object
    is_mov_a: object
    is_movx_a_r1: object
    is_movx_a_dptr: object
    is_movx_r1_a: object
    regs: dict = field(default_factory=dict)


def build_mc8051(trojan=None, name="mc8051"):
    """Construct the MC8051 core; returns ``(netlist, DesignSpec)``."""
    c = Circuit(name)
    reset = c.input("reset", 1)
    instr = c.input("instr", 16)
    ext_int = c.input("ext_interrupt", 1)
    xdata_in = c.input("xdata_in", 8)
    uart_rx = c.input("uart_rx", 8)
    uart_valid = c.input("uart_valid", 1)

    acc = c.reg("acc", 8)
    b_reg = c.reg("b_reg", 8)
    sp = c.reg("stack_pointer", 8, init=SP_RESET)
    ie = c.reg("interrupt_enable", 8)
    pc = c.reg("program_counter", 8)
    uart_data = c.reg("uart_data", 8)
    carry = c.reg("carry", 1)

    opcode = instr[8:16]
    operand = instr[0:8]

    is_mov_a = opcode.eq_const(MOV_A_DATA)
    is_movx_a_r1 = opcode.eq_const(MOVX_A_R1)
    is_movx_a_dptr = opcode.eq_const(MOVX_A_DPTR)
    is_movx_r1_a = opcode.eq_const(MOVX_R1_A)
    is_add = opcode.eq_const(ADD_A_DATA)
    is_push = opcode.eq_const(PUSH)
    is_pop = opcode.eq_const(POP)
    is_lcall = opcode.eq_const(LCALL)
    is_ret = opcode.eq_const(RET)
    is_sjmp = opcode.eq_const(SJMP)
    is_mov_ie = opcode.eq_const(MOV_IE_DATA)
    is_mov_b = opcode.eq_const(MOV_B_DATA)
    is_reti = opcode.eq_const(RETI)

    int_enabled = ie.q[7] & ie.q[0]
    interrupt_taken = int_enabled & ext_int

    add_sum, add_carry = c._ripple_add(acc.q, operand, 0)

    # --- probes -----------------------------------------------------------
    c.probe("is_mov_a", is_mov_a)
    c.probe("is_movx_read", is_movx_a_r1 | is_movx_a_dptr)
    c.probe("is_add", is_add)
    c.probe("is_push", is_push)
    c.probe("is_pop", is_pop)
    c.probe("is_lcall", is_lcall)
    c.probe("is_ret", is_ret)
    c.probe("is_sjmp", is_sjmp)
    c.probe("is_mov_ie", is_mov_ie)
    c.probe("is_mov_b", is_mov_b)
    c.probe("is_reti", is_reti)
    c.probe("interrupt_taken", interrupt_taken)
    c.probe("operand", operand)
    c.probe("add_sum", add_sum)

    # --- next-state logic ---------------------------------------------------
    nexts = {}
    nexts["acc"] = c.select(
        acc.q,
        (reset, c.const(0, 8)),
        (interrupt_taken, acc.q),
        (is_mov_a, operand),
        (is_movx_a_r1 | is_movx_a_dptr, xdata_in),
        (is_add, add_sum),
    )
    nexts["b_reg"] = c.select(
        b_reg.q,
        (reset, c.const(0, 8)),
        (interrupt_taken, b_reg.q),
        (is_mov_b, operand),
    )
    nexts["stack_pointer"] = c.select(
        sp.q,
        (reset, c.const(SP_RESET, 8)),
        (interrupt_taken, sp.q + 2),
        (is_push, sp.q + 1),
        (is_pop, sp.q - 1),
        (is_lcall, sp.q + 2),
        (is_ret | is_reti, sp.q - 2),
    )
    nexts["interrupt_enable"] = c.select(
        ie.q,
        (reset, c.const(0, 8)),
        (interrupt_taken, ie.q),
        (is_mov_ie, operand),
    )
    nexts["program_counter"] = c.select(
        pc.q + 1,
        (reset, c.const(0, 8)),
        (interrupt_taken, c.const(INT_VECTOR, 8)),
        (is_lcall | is_sjmp, operand),
    )
    nexts["uart_data"] = c.select(
        uart_data.q,
        (reset, c.const(0, 8)),
        (uart_valid, uart_rx),
    )
    nexts["carry"] = c.select(
        carry.q,
        (reset, c.false()),
        (is_add & ~interrupt_taken, add_carry),
    )

    # --- Trojan splice ------------------------------------------------------
    trojan_info = None
    if trojan is not None:
        signals = Mc8051Signals(
            circuit=c,
            reset=reset,
            opcode=opcode,
            operand=operand,
            uart_rx=uart_rx,
            uart_valid=uart_valid,
            xdata_in=xdata_in,
            interrupt_taken=interrupt_taken,
            is_mov_a=is_mov_a,
            is_movx_a_r1=is_movx_a_r1,
            is_movx_a_dptr=is_movx_a_dptr,
            is_movx_r1_a=is_movx_r1_a,
            regs={
                "acc": acc,
                "b_reg": b_reg,
                "stack_pointer": sp,
                "interrupt_enable": ie,
                "program_counter": pc,
                "uart_data": uart_data,
            },
        )
        nets_before = c.netlist.num_nets
        trojan_info = trojan(signals, nexts)
        trojan_info.trojan_nets = frozenset(
            range(nets_before, c.netlist.num_nets)
        )

    acc.drive(nexts["acc"])
    b_reg.drive(nexts["b_reg"])
    sp.drive(nexts["stack_pointer"])
    ie.drive(nexts["interrupt_enable"])
    pc.drive(nexts["program_counter"])
    uart_data.drive(nexts["uart_data"])
    carry.drive(nexts["carry"])

    c.output("acc_out", acc.q)
    c.output("pc_out", pc.q)
    c.output("sp_out", sp.q)
    c.output("ie_out", ie.q)
    c.output("xdata_out", acc.q)  # MOVX @R1,A drives ACC onto the bus
    c.output("xdata_write", is_movx_r1_a & ~interrupt_taken)

    netlist = c.finalize()
    return netlist, mc8051_design_spec(trojan_info)


# --------------------------------------------------------------------------
# Valid-way specification
# --------------------------------------------------------------------------


def mc8051_register_specs():
    """Valid ways for the MC8051 critical registers (datasheet semantics)."""

    def not_int(cond_builder):
        return lambda m: cond_builder(m) & ~m.probe("interrupt_taken")

    acc_ways = [
        ValidWay("reset", lambda m: m.input("reset"),
                 value=lambda m: m.const(0, 8), expression="reset"),
        ValidWay("mov_a_data", not_int(lambda m: m.probe("is_mov_a")),
                 value=lambda m: m.probe("operand"),
                 expression="opcode == MOV_A_DATA"),
        ValidWay("movx_read", not_int(lambda m: m.probe("is_movx_read")),
                 value=lambda m: m.input("xdata_in"),
                 expression="opcode in {MOVX A,@R1 / MOVX A,@DPTR}"),
        ValidWay("add", not_int(lambda m: m.probe("is_add")),
                 value=lambda m: m.probe("add_sum"),
                 expression="opcode == ADD_A_DATA"),
    ]
    sp_ways = [
        ValidWay("reset", lambda m: m.input("reset"),
                 value=lambda m: m.const(SP_RESET, 8), expression="reset"),
        ValidWay("interrupt", lambda m: m.probe("interrupt_taken"),
                 value=lambda m: m.reg("stack_pointer") + 2,
                 expression="interrupt_taken"),
        ValidWay("push", not_int(lambda m: m.probe("is_push")),
                 value=lambda m: m.reg("stack_pointer") + 1,
                 expression="opcode == PUSH"),
        ValidWay("pop", not_int(lambda m: m.probe("is_pop")),
                 value=lambda m: m.reg("stack_pointer") - 1,
                 expression="opcode == POP"),
        ValidWay("lcall", not_int(lambda m: m.probe("is_lcall")),
                 value=lambda m: m.reg("stack_pointer") + 2,
                 expression="opcode == LCALL"),
        ValidWay("ret", not_int(lambda m: m.probe("is_ret") | m.probe("is_reti")),
                 value=lambda m: m.reg("stack_pointer") - 2,
                 expression="opcode in {RET, RETI}"),
    ]
    ie_ways = [
        ValidWay("reset", lambda m: m.input("reset"),
                 value=lambda m: m.const(0, 8), expression="reset"),
        ValidWay("mov_ie", not_int(lambda m: m.probe("is_mov_ie")),
                 value=lambda m: m.probe("operand"),
                 expression="opcode == MOV_IE_DATA"),
    ]
    uart_ways = [
        ValidWay("reset", lambda m: m.input("reset"),
                 value=lambda m: m.const(0, 8), expression="reset"),
        ValidWay("rx", lambda m: m.input("uart_valid"),
                 value=lambda m: m.input("uart_rx"),
                 expression="uart_valid"),
    ]
    pc_ways = [
        ValidWay("reset", lambda m: m.input("reset"),
                 value=lambda m: m.const(0, 8), expression="reset"),
        ValidWay("interrupt", lambda m: m.probe("interrupt_taken"),
                 value=lambda m: m.const(INT_VECTOR, 8),
                 expression="interrupt_taken"),
        ValidWay("jump", not_int(
            lambda m: m.probe("is_lcall") | m.probe("is_sjmp")),
            value=lambda m: m.probe("operand"),
            expression="opcode in {LCALL, SJMP}"),
        ValidWay("increment", not_int(
            lambda m: ~(m.probe("is_lcall") | m.probe("is_sjmp"))),
            value=lambda m: m.reg("program_counter") + 1,
            expression="default fetch"),
    ]
    return {
        "acc": RegisterSpec("acc", acc_ways,
                            description="accumulator", observe_latency=1),
        "stack_pointer": RegisterSpec(
            "stack_pointer", sp_ways,
            description="stack pointer (reset 0x07)", observe_latency=1),
        "interrupt_enable": RegisterSpec(
            "interrupt_enable", ie_ways,
            description="interrupt enable register", observe_latency=2),
        "uart_data": RegisterSpec(
            "uart_data", uart_ways,
            description="UART receive register", observe_latency=2),
        "program_counter": RegisterSpec(
            "program_counter", pc_ways,
            description="program counter", observe_latency=1),
    }


def mc8051_design_spec(trojan_info=None):
    return DesignSpec(
        name="mc8051",
        critical=mc8051_register_specs(),
        trojan=trojan_info,
        pinned_inputs={"reset": 0},
        notes=(
            "8051-style single-cycle core. The reset values (SP = 0x07) and "
            "the LCALL/RET +-2 stack discipline follow the 8051 datasheet."
        ),
    )
