"""A 4-cycle non-pipelined RISC processor (PIC16F84A-flavoured).

This is the reproduction of the Trust-Hub "RISC" benchmark the paper's case
study dissects (Section 3.4 / Table 2): a 4-clock-per-instruction
accumulator machine with a hardware stack, data RAM, EEPROM interface,
sleep mode and a single interrupt. Every register row of Table 2 exists
here with the documented update semantics:

==================== =====================================================
Register             Valid ways (cycle = phase within the instruction)
==================== =====================================================
program_counter      reset -> 0; Q4 & !stall -> +1; Q4 interrupt -> 0x04;
                     Q4 RETURN -> stack[SP]; Q4 GOTO/CALL -> literal;
                     Q4 MOVWF PCL -> W
stack_pointer        reset -> 0; Q2 RETURN -> -1; Q4 CALL -> +1
interrupt_enable     ext. interrupt / ALU overflow / EEPROM write complete
                     -> 1; reset / RETFIE / interrupt taken -> 0
eeprom_data          Q4 & !stall & EEREAD -> eeprom_in
eeprom_address       Q4 & !stall & !sleep -> RAM[0x09]
instruction_register Q4 -> instr_in (the RAM[PC] fetch interface)
sleep_flag           reset -> 0; Q4 SLEEP -> 1; wake on ext. interrupt
==================== =====================================================

Instruction format: 14 bits, opcode in bits [13:10] (so the DeTrust
trigger "4 MSBs of the instruction in 0x4-0xB" reads ``instr[13:10]``),
literal/address operand in bits [7:0], file address in bits [3:0].

The program memory is modelled as the ``instr_in`` input port — the fetch
interface. BMC/ATPG counterexamples are therefore *instruction sequences*,
exactly the form the paper reports ("a counterexample, which has 100 ADD
instructions").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.builder import Circuit
from repro.properties.valid_ways import (
    DesignSpec,
    RegisterSpec,
    ValidWay,
)

NOP = 0x0
GOTO = 0x1
CALL = 0x2
RETURN = 0x3
MOVLW = 0x4
ADDLW = 0x5
MOVWF = 0x6
MOVF = 0x7
EEREAD = 0x8
EEWRITE = 0x9
SLEEP = 0xA
ANDLW = 0xB
IORLW = 0xC
XORLW = 0xD
SUBLW = 0xE
RETFIE = 0xF

OPCODE_NAMES = {
    NOP: "NOP", GOTO: "GOTO", CALL: "CALL", RETURN: "RETURN",
    MOVLW: "MOVLW", ADDLW: "ADDLW", MOVWF: "MOVWF", MOVF: "MOVF",
    EEREAD: "EEREAD", EEWRITE: "EEWRITE", SLEEP: "SLEEP", ANDLW: "ANDLW",
    IORLW: "IORLW", XORLW: "XORLW", SUBLW: "SUBLW", RETFIE: "RETFIE",
}

# The DeTrust trigger window: opcodes 0x4..0xB (Figure 1 / Section 3.4).
TRIGGER_RANGE = (MOVLW, ANDLW)

PCL_FILE_ADDRESS = 0x02  # MOVWF to file 0x02 writes the program counter
EEPROM_ADDR_FILE = 0x09  # RAM[0x09] feeds the EEPROM address register


def instruction(opcode, operand=0):
    """Assemble a 14-bit instruction word."""
    return ((opcode & 0xF) << 10) | (operand & 0xFF)


@dataclass
class RiscSignals:
    """Internal signals handed to Trojan constructors.

    Everything a DeTrust-style Trojan needs: the builder, decoded
    instruction signals, phase strobes and the architectural registers.
    """

    circuit: object
    reset: object
    p1: object
    p2: object
    p3: object
    p4: object
    stall: object
    sleep: object
    opcode: object  # effective opcode (NOP when stalled/sleeping)
    raw_opcode: object  # opcode bits straight from the instruction register
    operand: object
    eeprom_in: object
    is_eeread: object
    interrupt_taken: object
    regs: dict = field(default_factory=dict)  # name -> Reg


def build_risc(trojan=None, name="risc"):
    """Construct the RISC core; returns ``(netlist, DesignSpec)``.

    ``trojan`` is an optional callable ``trojan(signals, nexts) ->
    TrojanInfo`` that may rewrite entries of ``nexts`` (register name ->
    next-value BitVec) and add its own trigger state; this is how the
    Trust-Hub/DeTrust Trojans are spliced in without touching the clean
    core below.
    """
    c = Circuit(name)
    reset = c.input("reset", 1)
    instr_in = c.input("instr_in", 14)
    ext_int = c.input("ext_interrupt", 1)
    eeprom_in = c.input("eeprom_in", 8)

    phase = c.reg("phase", 2)
    ir = c.reg("instruction_register", 14)
    pc = c.reg("program_counter", 8)
    sp = c.reg("stack_pointer", 3)
    stack = [c.reg("stack_{}".format(i), 8) for i in range(8)]
    w = c.reg("w_register", 8)
    ram = [c.reg("ram_{:02x}".format(i), 8) for i in range(16)]
    ee_data = c.reg("eeprom_data", 8)
    ee_addr = c.reg("eeprom_address", 8)
    sleepf = c.reg("sleep_flag", 1)
    ie = c.reg("interrupt_enable", 1)
    stall = c.reg("stall", 1)

    p1 = phase.q.eq_const(0)
    p2 = phase.q.eq_const(1)
    p3 = phase.q.eq_const(2)
    p4 = phase.q.eq_const(3)

    # Effective instruction: branches flush the next fetch (stall) and
    # sleep freezes execution — both read as NOP.
    suppress = stall.q | sleepf.q
    eff_ir = c.mux(suppress, ir.q, c.const(instruction(NOP), 14))
    opcode = eff_ir[10:14]
    raw_opcode = c.bv(ir.q.nets[10:14])
    operand = eff_ir[0:8]
    f_addr = eff_ir[0:4]

    is_goto = opcode.eq_const(GOTO)
    is_call = opcode.eq_const(CALL)
    is_return = opcode.eq_const(RETURN)
    is_movlw = opcode.eq_const(MOVLW)
    is_addlw = opcode.eq_const(ADDLW)
    is_movwf = opcode.eq_const(MOVWF)
    is_movf = opcode.eq_const(MOVF)
    is_eeread = opcode.eq_const(EEREAD)
    is_eewrite = opcode.eq_const(EEWRITE)
    is_sleep = opcode.eq_const(SLEEP)
    is_andlw = opcode.eq_const(ANDLW)
    is_iorlw = opcode.eq_const(IORLW)
    is_xorlw = opcode.eq_const(XORLW)
    is_sublw = opcode.eq_const(SUBLW)
    is_retfie = opcode.eq_const(RETFIE)
    is_movwf_pcl = is_movwf & f_addr.eq_const(PCL_FILE_ADDRESS)

    interrupt_taken = ie.q & p4 & ~stall.q & ~sleepf.q

    # --- datapath pieces -------------------------------------------------
    ram_read = c.word_select(f_addr, [r.q for r in ram])
    stack_top = c.word_select(sp.q, [s.q for s in stack])
    add_sum, add_carry = c._ripple_add(w.q, operand, 0)
    overflow_event = is_addlw & p4 & add_carry
    write_complete_event = is_eewrite & p4
    ram9 = ram[EEPROM_ADDR_FILE].q

    # --- probes for the valid-way spec -----------------------------------
    c.probe("p1", p1)
    c.probe("p2", p2)
    c.probe("p4", p4)
    c.probe("is_goto", is_goto)
    c.probe("is_call", is_call)
    c.probe("is_return", is_return)
    c.probe("is_movwf_pcl", is_movwf_pcl)
    c.probe("is_eeread", is_eeread)
    c.probe("is_sleep", is_sleep)
    c.probe("is_retfie", is_retfie)
    c.probe("interrupt_taken", interrupt_taken)
    c.probe("overflow_event", overflow_event)
    c.probe("write_complete_event", write_complete_event)
    c.probe("stack_top", stack_top)
    c.probe("branch_target", operand)
    c.probe("ram9", ram9)
    c.probe("not_stall", ~stall.q)
    c.probe("not_sleep", ~sleepf.q)
    c.probe("opcode", opcode)

    # --- next-state logic -------------------------------------------------
    nexts = {}
    nexts["phase"] = c.select(phase.q + 1, (reset, c.const(0, 2)))
    nexts["instruction_register"] = c.select(
        ir.q,
        (reset, c.const(instruction(NOP), 14)),
        (p4, instr_in),
    )
    branch_taken = c.any_of(
        is_goto & p4,
        is_call & p4,
        is_return & p4,
        interrupt_taken,
        is_movwf_pcl & p4,
    )
    nexts["stall"] = c.select(
        stall.q,
        (reset, c.false()),
        (p4, branch_taken),
    )
    nexts["program_counter"] = c.select(
        pc.q,
        (reset, c.const(0, 8)),
        (interrupt_taken, c.const(0x04, 8)),
        (is_return & p4, stack_top),
        (is_goto & p4, operand),
        (is_call & p4, operand),
        (is_movwf_pcl & p4, w.q),
        (p4 & ~stall.q & ~sleepf.q, pc.q + 1),
    )
    nexts["stack_pointer"] = c.select(
        sp.q,
        (reset, c.const(0, 3)),
        (is_return & p2, sp.q - 1),
        (is_call & p4, sp.q + 1),
    )
    return_address = pc.q + 1
    for i, entry in enumerate(stack):
        nexts[entry.name] = c.select(
            entry.q,
            (is_call & p3 & sp.q.eq_const(i), return_address),
        )
    nexts["w_register"] = c.select(
        w.q,
        (is_movlw & p4, operand),
        (is_addlw & p4, add_sum),
        (is_andlw & p4, w.q & operand),
        (is_iorlw & p4, w.q | operand),
        (is_xorlw & p4, w.q ^ operand),
        (is_sublw & p4, operand - w.q),
        (is_movf & p4, ram_read),
    )
    for i, entry in enumerate(ram):
        if i == PCL_FILE_ADDRESS:
            nexts[entry.name] = entry.q  # file 0x02 is the PC, not RAM
            continue
        nexts[entry.name] = c.select(
            entry.q,
            (is_movwf & p4 & f_addr.eq_const(i), w.q),
        )
    nexts["eeprom_data"] = c.select(
        ee_data.q,
        (p4 & ~stall.q & is_eeread, eeprom_in),
    )
    nexts["eeprom_address"] = c.select(
        ee_addr.q,
        (p4 & ~stall.q & ~sleepf.q, ram9),
    )
    nexts["sleep_flag"] = c.select(
        sleepf.q,
        (reset, c.false()),
        (ext_int & sleepf.q, c.false()),
        (is_sleep & p4, c.true()),
    )
    nexts["interrupt_enable"] = c.select(
        ie.q,
        (reset, c.false()),
        (ext_int, c.true()),
        (overflow_event, c.true()),
        (write_complete_event, c.true()),
        (interrupt_taken, c.false()),
        (is_retfie & p4, c.false()),
    )

    # --- Trojan splice -----------------------------------------------------
    trojan_info = None
    if trojan is not None:
        signals = RiscSignals(
            circuit=c,
            reset=reset,
            p1=p1,
            p2=p2,
            p3=p3,
            p4=p4,
            stall=stall.q,
            sleep=sleepf.q,
            opcode=opcode,
            raw_opcode=raw_opcode,
            operand=operand,
            eeprom_in=eeprom_in,
            is_eeread=is_eeread,
            interrupt_taken=interrupt_taken,
            regs={
                "program_counter": pc,
                "stack_pointer": sp,
                "eeprom_data": ee_data,
                "eeprom_address": ee_addr,
                "interrupt_enable": ie,
                "w_register": w,
            },
        )
        nets_before = c.netlist.num_nets
        trojan_info = trojan(signals, nexts)
        trojan_info.trojan_nets = frozenset(
            range(nets_before, c.netlist.num_nets)
        )

    # --- drive registers ---------------------------------------------------
    phase.drive(nexts["phase"])
    ir.drive(nexts["instruction_register"])
    stall.drive(nexts["stall"])
    pc.drive(nexts["program_counter"])
    sp.drive(nexts["stack_pointer"])
    for entry in stack:
        entry.drive(nexts[entry.name])
    w.drive(nexts["w_register"])
    for entry in ram:
        entry.drive(nexts[entry.name])
    ee_data.drive(nexts["eeprom_data"])
    ee_addr.drive(nexts["eeprom_address"])
    sleepf.drive(nexts["sleep_flag"])
    ie.drive(nexts["interrupt_enable"])

    # --- outputs ------------------------------------------------------------
    c.output("pc_out", pc.q)
    c.output("eeprom_address_out", ee_addr.q)
    c.output("eeprom_data_out", ee_data.q)
    c.output("w_out", w.q)
    c.output("sleep_out", sleepf.q)
    c.output("stack_pointer_out", sp.q)

    netlist = c.finalize()
    spec = risc_design_spec(trojan_info)
    return netlist, spec


# --------------------------------------------------------------------------
# Valid-way specification (Table 2)
# --------------------------------------------------------------------------


def risc_register_specs():
    """The Table 2 valid-way specs, keyed by register name."""

    def pc_ways():
        return [
            ValidWay(
                "reset",
                lambda m: m.input("reset"),
                value=lambda m: m.const(0, 8),
                cycle="any",
                expression="reset",
            ),
            ValidWay(
                "interrupt",
                lambda m: m.probe("interrupt_taken"),
                value=lambda m: m.const(0x04, 8),
                cycle="4",
                expression="interrupt_taken",
            ),
            ValidWay(
                "return",
                lambda m: m.probe("is_return") & m.probe("p4"),
                value=lambda m: m.probe("stack_top"),
                cycle="4",
                expression="is_return && q4",
            ),
            ValidWay(
                "goto",
                lambda m: m.probe("is_goto") & m.probe("p4"),
                value=lambda m: m.probe("branch_target"),
                cycle="4",
                expression="is_goto && q4",
            ),
            ValidWay(
                "call",
                lambda m: m.probe("is_call") & m.probe("p4"),
                value=lambda m: m.probe("branch_target"),
                cycle="4",
                expression="is_call && q4",
            ),
            ValidWay(
                "dest_pcl",
                lambda m: m.probe("is_movwf_pcl") & m.probe("p4"),
                value=lambda m: m.reg("w_register"),
                cycle="4",
                expression="is_movwf_pcl && q4",
            ),
            ValidWay(
                "increment",
                lambda m: (
                    m.probe("p4")
                    & m.probe("not_stall")
                    & m.probe("not_sleep")
                ),
                value=lambda m: m.reg("program_counter") + 1,
                cycle="4",
                expression="q4 && !stall && !sleep",
            ),
        ]

    def sp_ways():
        return [
            ValidWay(
                "reset",
                lambda m: m.input("reset"),
                value=lambda m: m.const(0, 3),
                cycle="any",
                expression="reset",
            ),
            ValidWay(
                "return_pop",
                lambda m: m.probe("is_return") & m.probe("p2"),
                value=lambda m: m.reg("stack_pointer") - 1,
                cycle="2",
                expression="is_return && q2",
            ),
            ValidWay(
                "call_push",
                lambda m: m.probe("is_call") & m.probe("p4"),
                value=lambda m: m.reg("stack_pointer") + 1,
                cycle="4",
                expression="is_call && q4",
            ),
        ]

    def ie_ways():
        return [
            ValidWay(
                "reset",
                lambda m: m.input("reset"),
                value=lambda m: m.const(0, 1),
                cycle="any",
                expression="reset",
            ),
            ValidWay(
                "ext_interrupt",
                lambda m: m.input("ext_interrupt"),
                value=lambda m: m.const(1, 1),
                cycle="any",
                expression="ext_interrupt",
            ),
            ValidWay(
                "overflow",
                lambda m: m.probe("overflow_event"),
                value=lambda m: m.const(1, 1),
                cycle="any",
                expression="alu_overflow",
            ),
            ValidWay(
                "write_complete",
                lambda m: m.probe("write_complete_event"),
                value=lambda m: m.const(1, 1),
                cycle="any",
                expression="eeprom_write_complete",
            ),
            ValidWay(
                "taken",
                lambda m: m.probe("interrupt_taken"),
                value=lambda m: m.const(0, 1),
                cycle="4",
                expression="interrupt_taken",
            ),
            ValidWay(
                "retfie",
                lambda m: m.probe("is_retfie") & m.probe("p4"),
                value=lambda m: m.const(0, 1),
                cycle="4",
                expression="is_retfie && q4",
            ),
        ]

    def ee_data_ways():
        return [
            ValidWay(
                "eeprom_read",
                lambda m: (
                    m.probe("p4") & m.probe("not_stall") & m.probe("is_eeread")
                ),
                value=lambda m: m.input("eeprom_in"),
                cycle="4",
                expression="q4 && !stall && eeprom_read",
            ),
        ]

    def ee_addr_ways():
        return [
            ValidWay(
                "load_ram9",
                lambda m: (
                    m.probe("p4")
                    & m.probe("not_stall")
                    & m.probe("not_sleep")
                ),
                value=lambda m: m.probe("ram9"),
                cycle="4",
                expression="q4 && !stall && !sleep",
            ),
        ]

    def ir_ways():
        return [
            ValidWay(
                "reset",
                lambda m: m.input("reset"),
                value=lambda m: m.const(instruction(NOP), 14),
                cycle="any",
                expression="reset",
            ),
            ValidWay(
                "fetch",
                lambda m: m.probe("p4"),
                value=lambda m: m.input("instr_in"),
                cycle="4",
                expression="q4",
            ),
        ]

    def sleep_ways():
        return [
            ValidWay(
                "reset",
                lambda m: m.input("reset"),
                value=lambda m: m.const(0, 1),
                cycle="any",
                expression="reset",
            ),
            ValidWay(
                "wake",
                lambda m: m.input("ext_interrupt") & m.reg("sleep_flag"),
                value=lambda m: m.const(0, 1),
                cycle="any",
                expression="ext_interrupt && sleep_flag",
            ),
            ValidWay(
                "sleep_inst",
                lambda m: m.probe("is_sleep") & m.probe("p4"),
                value=lambda m: m.const(1, 1),
                cycle="4",
                expression="is_sleep && q4",
            ),
        ]

    return {
        "program_counter": RegisterSpec(
            "program_counter", pc_ways(),
            description="Table 2: program counter", observe_latency=2,
        ),
        "stack_pointer": RegisterSpec(
            "stack_pointer", sp_ways(),
            description="Table 2: stack pointer", observe_latency=2,
        ),
        "interrupt_enable": RegisterSpec(
            "interrupt_enable", ie_ways(),
            description="Table 2: interrupt enable", observe_latency=2,
        ),
        "eeprom_data": RegisterSpec(
            "eeprom_data", ee_data_ways(),
            description="Table 2: EEPROM data", observe_latency=1,
        ),
        "eeprom_address": RegisterSpec(
            "eeprom_address", ee_addr_ways(),
            description="Table 2: EEPROM address", observe_latency=1,
        ),
        "instruction_register": RegisterSpec(
            "instruction_register", ir_ways(),
            description="Table 2: instruction register", observe_latency=4,
        ),
        "sleep_flag": RegisterSpec(
            "sleep_flag", sleep_ways(),
            description="Table 2: sleep flag", observe_latency=1,
        ),
    }


def risc_design_spec(trojan_info=None):
    return DesignSpec(
        name="risc",
        critical=risc_register_specs(),
        trojan=trojan_info,
        pinned_inputs={"reset": 0},
        notes=(
            "PIC16F84A-style 4-cycle core; valid ways follow Table 2 of the "
            "paper (clears of the interrupt-enable flag and the sleep wake "
            "path come from the datasheet semantics)."
        ),
    )
