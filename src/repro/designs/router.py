"""A 4-port packet router — the paper's third motivating critical register.

Section 1.3 lists "a destination address register of a router" alongside
keys and stack pointers. This design is a wormhole-style router input
stage: a header flit latches the destination port into ``dest_register``;
following body flits stream to that output port until the tail flit.

Flit format (16 bits)::

    [15]    header flag
    [14]    tail flag
    [13:12] destination port (header flits only)
    [11:0]  payload

Critical register: ``dest_register`` — valid ways: reset, and a header
flit arriving while idle. A Trojan that redirects it mid-packet steals
traffic to an attacker-chosen port.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.builder import Circuit
from repro.properties.valid_ways import DesignSpec, RegisterSpec, ValidWay

FLIT_HEADER = 1 << 15
FLIT_TAIL = 1 << 14


def header_flit(dest, payload=0):
    return FLIT_HEADER | ((dest & 0x3) << 12) | (payload & 0xFFF)


def body_flit(payload, tail=False):
    word = payload & 0xFFF
    if tail:
        word |= FLIT_TAIL
    return word


@dataclass
class RouterSignals:
    """Internal signals handed to Trojan constructors."""

    circuit: object
    reset: object
    in_valid: object
    is_header: object
    is_tail: object
    flit_dest: object
    payload: object
    busy: object
    regs: dict = field(default_factory=dict)


def build_router(trojan=None, name="router"):
    """Construct the router; returns ``(netlist, DesignSpec)``."""
    c = Circuit(name)
    reset = c.input("reset", 1)
    in_valid = c.input("in_valid", 1)
    in_flit = c.input("in_flit", 16)

    dest = c.reg("dest_register", 2)
    busy = c.reg("busy", 1)
    out_data = c.reg("out_data", 12)
    out_strobe = c.reg("out_strobe", 1)

    is_header = in_flit[15] & in_valid
    is_tail = in_flit[14] & in_valid
    flit_dest = in_flit[12:14]
    payload = in_flit[0:12]

    accept_header = is_header & ~busy.q

    c.probe("accept_header", accept_header)
    c.probe("flit_dest", flit_dest)
    c.probe("is_tail", is_tail)

    nexts = {}
    nexts["dest_register"] = c.select(
        dest.q,
        (reset, c.const(0, 2)),
        (accept_header, flit_dest),
    )
    nexts["busy"] = c.select(
        busy.q,
        (reset, c.false()),
        (accept_header, c.true()),
        (is_tail & busy.q, c.false()),
    )
    nexts["out_data"] = c.select(
        out_data.q,
        (reset, c.const(0, 12)),
        (in_valid & busy.q, payload),
    )
    nexts["out_strobe"] = c.select(
        c.false(),
        (in_valid & busy.q & ~reset, c.true()),
    )

    trojan_info = None
    if trojan is not None:
        signals = RouterSignals(
            circuit=c,
            reset=reset,
            in_valid=in_valid,
            is_header=is_header,
            is_tail=is_tail,
            flit_dest=flit_dest,
            payload=payload,
            busy=busy,
            regs={"dest_register": dest, "busy": busy},
        )
        nets_before = c.netlist.num_nets
        trojan_info = trojan(signals, nexts)
        trojan_info.trojan_nets = frozenset(
            range(nets_before, c.netlist.num_nets)
        )

    dest.drive(nexts["dest_register"])
    busy.drive(nexts["busy"])
    out_data.drive(nexts["out_data"])
    out_strobe.drive(nexts["out_strobe"])

    # one-hot output port select: where the current packet is streaming
    port_select = c.bv(
        [dest.q.eq_const(p).nets[0] for p in range(4)]
    )
    gated = c.bv(
        [
            (port_select[p] & out_strobe.q).nets[0]
            for p in range(4)
        ]
    )
    c.output("port_valid", gated)
    c.output("port_data", out_data.q)
    c.output("dest_out", dest.q)

    netlist = c.finalize()
    return netlist, router_design_spec(trojan_info)


def router_register_specs():
    dest_ways = [
        ValidWay("reset", lambda m: m.input("reset"),
                 value=lambda m: m.const(0, 2), expression="reset"),
        ValidWay(
            "header",
            lambda m: m.probe("accept_header"),
            value=lambda m: m.probe("flit_dest"),
            expression="in_valid && header && !busy",
        ),
    ]
    return {
        "dest_register": RegisterSpec(
            "dest_register",
            dest_ways,
            description="destination port of the in-flight packet",
            observe_latency=2,
        ),
    }


def router_design_spec(trojan_info=None):
    return DesignSpec(
        name="router",
        critical=router_register_specs(),
        trojan=trojan_info,
        notes="wormhole router input stage; critical register: the "
              "destination address (Section 1.3's third example)",
        pinned_inputs={"reset": 0},
    )


def router_redirect_trojan(attacker_port=3, magic=0xBAD):
    """Traffic-stealing Trojan: two consecutive body flits carrying the
    magic payload redirect the rest of the packet to the attacker's port.

    Returns ``(netlist, spec)`` like the other Trojan factories.
    """

    def trojan(signals, nexts):
        c = signals.circuit
        match = signals.payload.eq_const(magic) & signals.in_valid
        armed = c.reg("redirect_armed", 1)
        fired = c.reg("redirect_fired", 1)
        armed.drive(match)
        fired.drive(fired.q | (armed.q & match))
        nexts["dest_register"] = c.mux(
            fired.q,
            nexts["dest_register"],
            c.const(attacker_port, 2),
        )
        from repro.properties.valid_ways import TrojanInfo

        return TrojanInfo(
            name="ROUTER-REDIRECT",
            trigger="payload 0x{:03x} on two consecutive flits".format(magic),
            payload="destination register forced to port {}".format(
                attacker_port
            ),
            target_register="dest_register",
            trigger_cycles=2,
        )

    return build_router(trojan=trojan, name="router_redirect")
