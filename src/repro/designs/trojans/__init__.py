"""Trust-Hub-style Trojans (DeTrust-shaped) and the Section 4 attacks."""

from repro.designs.trojans.aes_trojans import aes_t700, aes_t800, aes_t1200
from repro.designs.trojans.attacks import (
    add_bypass,
    add_owf_trigger,
    add_pseudo_critical,
)
from repro.designs.trojans.mc8051_trojans import (
    mc8051_t400,
    mc8051_t700,
    mc8051_t800,
)
from repro.designs.trojans.risc_trojans import (
    risc_figure1,
    risc_t100,
    risc_t300,
    risc_t400,
)

__all__ = [
    "aes_t700",
    "aes_t800",
    "aes_t1200",
    "add_bypass",
    "add_owf_trigger",
    "add_pseudo_critical",
    "mc8051_t400",
    "mc8051_t700",
    "mc8051_t800",
    "risc_figure1",
    "risc_t100",
    "risc_t300",
    "risc_t400",
]
