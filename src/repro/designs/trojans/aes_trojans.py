"""Trust-Hub AES Trojans (Table 1 rows 7-9), DeTrust-shaped by default.

* AES-T700 — trigger: a single magic plaintext. The DeTrust shape compares
  it ``chunk_bits`` at a time over consecutive cycles (every comparator
  gate stays narrow, so FANCI's control values look benign); the naive
  shape is one monolithic wide AND over all 128 bits — what FANCI catches.
  Payload: the least-significant key byte is inverted in the key register
  (the paper modified the Trust-Hub payload "to corrupt instead of leaking
  the key" — footnote 2).
* AES-T800 — trigger: *four* specific plaintexts started in sequence
  (the exact values of Table 1). Payload: corrupts the key register.
* AES-T1200 — trigger: a free-running ``counter_width``-bit cycle counter
  reaching all-ones. With the paper's width of 128 the trigger sits
  2^128 - 1 cycles away: BMC/ATPG correctly report no counterexample and
  the design is certified only "trustworthy for T cycles" (the Table 1
  N/A row). Smaller widths make the same Trojan detectable and are used
  by the tests/ablations.
"""

from __future__ import annotations

from repro.designs.aes import build_aes
from repro.properties.valid_ways import TrojanInfo

T700_PLAINTEXT = 0x00112233445566778899AABBCCDDEEFF
T800_SEQUENCE = (
    0x3243F6A8885A308D313198A2E0370734,
    0x00112233445566778899AABBCCDDEEFF,
    0x00000000000000000000000000000001,
    0x00000000000000000000000000000001,
)
KEY_CORRUPTION_MASK_T700 = 0xFF  # LSB 8 bits of the key register
KEY_CORRUPTION_MASK_T800 = (1 << 128) - 1


def _chunked_match(circuit, signals, constant, chunk_bits, name):
    """DeTrust serial comparator: ``pt_in`` is compared against
    ``constant`` one chunk per cycle while it is held stable; returns the
    latched all-chunks-matched signal.

    The selected plaintext chunk and the selected constant chunk are
    *registered* before the comparison — the flop boundary keeps every
    combinational cone narrow (FANCI's cones stop at state elements), so
    no gate's control values drop below a plausible detection threshold.
    """
    c = circuit
    chunks = 128 // chunk_bits
    # index scans 0..chunks (one extra step: the compare lags by a cycle)
    index_width = max(1, chunks.bit_length())
    index = c.reg("{}_index".format(name), index_width)
    matched = c.reg("{}_matched".format(name), 1, init=1)
    pt_chunks = [
        signals.pt_in[k * chunk_bits : (k + 1) * chunk_bits]
        for k in range(chunks)
    ]
    const_table = [
        (constant >> (k * chunk_bits)) & ((1 << chunk_bits) - 1)
        for k in range(chunks)
    ]
    pad = (1 << index_width) - chunks
    selected_pt = c.word_select(
        index.q, pt_chunks + [c.const(0, chunk_bits)] * pad
    )
    selected_const = c.lut_word(
        index.q, const_table + [0] * pad, chunk_bits
    )
    # flop boundary: the comparison sees only registered operands
    pt_stage = c.reg("{}_pt_stage".format(name), chunk_bits)
    pt_stage.drive(selected_pt)
    const_stage = c.reg("{}_const_stage".format(name), chunk_bits)
    const_stage.drive(selected_const)
    current = pt_stage.q == const_stage.q

    at_end = index.q.eq_const(chunks)
    scanning = ~at_end
    checking = ~index.q.eq_const(0)  # stage regs valid from index 1 on
    index.hold_unless(
        (signals.reset, c.const(0, index_width)),
        (signals.start, c.const(0, index_width)),
        (scanning, index.q + 1),
    )
    matched.hold_unless(
        (signals.reset | signals.start, c.true()),
        (checking & ~current, c.false()),
    )
    # `done` registers scan completion so the fired latch's cone is just
    # {done, matched, fired} — the trigger never concentrates into one
    # wide-support gate (the property FANCI keys on)
    done = c.reg("{}_done".format(name), 1)
    done.drive(at_end & ~signals.start)
    fired = c.reg("{}_fired".format(name), 1)
    fired.hold_unless(
        (signals.reset, c.false()),
        (done.q & matched.q, c.true()),
    )
    return fired.q


def aes_t700(detrust=True, chunk_bits=8):
    """AES-T700; ``detrust=False`` builds the naive wide-AND trigger."""

    def trojan(signals, nexts):
        c = signals.circuit
        if detrust:
            fired = _chunked_match(
                c, signals, T700_PLAINTEXT, chunk_bits, "t700"
            )
        else:
            # Naive Trust-Hub shape: one monolithic 128-bit comparison,
            # realized as a single wide AND gate — FANCI's textbook catch.
            bits = []
            for i in range(128):
                bit = signals.pt_in[i]
                if (T700_PLAINTEXT >> i) & 1:
                    bits.append(bit.nets[0])
                else:
                    bits.append(c.gate("not", bit.nets[0]))
            wide = c.netlist.add_cell("and", bits)
            match_now = c.bv([wide]) & signals.start
            latch = c.reg("t700_fired", 1)
            latch.hold_unless(
                (signals.reset, c.false()),
                (match_now, c.true()),
            )
            fired = latch.q
        key_reg = signals.regs["key_register"]
        corrupted = key_reg.q ^ c.const(KEY_CORRUPTION_MASK_T700, 128)
        nexts["key_register"] = c.mux(
            fired & ~signals.load_key, nexts["key_register"], corrupted
        )
        return TrojanInfo(
            name="AES-T700",
            trigger="plaintext == 128'h00112233445566778899aabbccddeeff"
            + ("" if detrust else " (naive single-cycle comparator)"),
            payload="modifies LSB 8 bits of the key register",
            target_register="key_register",
            trigger_cycles=(128 // chunk_bits) if detrust else 1,
        )

    return build_aes(trojan=trojan, name="aes_t700")


def aes_t800():
    """AES-T800: four plaintexts in sequence corrupt the key register."""

    def trojan(signals, nexts):
        from repro.baselines.detrust import sequence_recognizer

        c = signals.circuit
        # One-hot sequence FSM over start pulses. Each plaintext match is
        # a two-stage *registered* reduction tree (16 byte equalities ->
        # 4 group ANDs -> 1 match): every combinational cone stays at or
        # under 8 inputs, the flop boundaries doing DeTrust's work of
        # keeping FANCI's per-gate control values unremarkable.
        matches = []
        for idx, constant in enumerate(T800_SEQUENCE):
            stage0 = []
            for k in range(16):
                eq = signals.pt_in[8 * k : 8 * k + 8].eq_const(
                    (constant >> (8 * k)) & 0xFF
                )
                reg = c.reg("t800_m{}_b{}".format(idx, k), 1)
                reg.drive(eq)
                stage0.append(reg.q)
            stage1 = []
            for g in range(4):
                group = c.all_of(*stage0[4 * g : 4 * g + 4])
                reg = c.reg("t800_m{}_g{}".format(idx, g), 1)
                reg.drive(group)
                stage1.append(reg.q)
            matches.append(c.all_of(*stage1))
        # the match tree lags the plaintext by two cycles: delay the
        # sequence strobe to stay aligned
        start_d1 = c.reg("t800_start_d1", 1)
        start_d1.drive(signals.start)
        start_d2 = c.reg("t800_start_d2", 1)
        start_d2.drive(start_d1.q)
        fired = sequence_recognizer(
            c, matches, start_d2.q, signals.reset, name="t800"
        )
        key_reg = signals.regs["key_register"]
        corrupted = key_reg.q ^ c.const(KEY_CORRUPTION_MASK_T800, 128)
        nexts["key_register"] = c.mux(
            fired & ~signals.load_key, nexts["key_register"], corrupted
        )
        return TrojanInfo(
            name="AES-T800",
            trigger="plaintext sequence 128'h3243...0734, 128'h0011...eeff, "
            "128'h1, 128'h1",
            payload="modifies key register",
            target_register="key_register",
            trigger_cycles=len(T800_SEQUENCE),
        )

    return build_aes(trojan=trojan, name="aes_t800")


def aes_t1200(counter_width=128):
    """AES-T1200: key corrupted after 2**counter_width - 1 clock cycles."""

    def trojan(signals, nexts):
        c = signals.circuit
        # The cycle counter is a prescaler chain of <=8-bit segments with
        # *registered* carries, and the all-ones detector is a registered
        # reduction tree — DeTrust staging again: a monolithic 128-bit
        # incrementer's carry chain and a 128-input comparator would both
        # hand FANCI exactly the wide low-control-value cones it hunts.
        # The segment lags shift the trigger point by a few cycles out of
        # 2^width — immaterial.
        segments = []
        pulses = []
        advance = c.true()
        for index, lo in enumerate(range(0, counter_width, 8)):
            width = min(8, counter_width - lo)
            seg = c.reg("t1200_seg{}".format(index), width)
            seg.hold_unless(
                (signals.reset, c.const(0, width)),
                (advance, seg.q + 1),
            )
            segments.append(seg)
            wrap = c.reg("t1200_carry{}".format(index), 1)
            # no reset conjunct: reset clears the segments themselves, and
            # a narrower cone keeps the carry pulse under FANCI's radar
            wrap.drive(seg.q.eq_const((1 << width) - 1) & advance)
            pulses.append(wrap)
            advance = wrap.q
        slices = []
        for index, seg in enumerate(segments):
            ones = c.reg("t1200_ones{}".format(index), 1)
            ones.drive(seg.q.eq_const((1 << seg.width) - 1))
            slices.append(ones.q)
        while len(slices) > 4:
            grouped = []
            for g in range(0, len(slices), 4):
                reg = c.reg(
                    "t1200_grp{}_{}".format(len(slices), g // 4), 1
                )
                reg.drive(c.all_of(*slices[g : g + 4]))
                grouped.append(reg.q)
            slices = grouped
        fired = c.all_of(*slices)
        key_reg = signals.regs["key_register"]
        corrupted = key_reg.q ^ c.const(KEY_CORRUPTION_MASK_T800, 128)
        nexts["key_register"] = c.mux(
            fired & ~signals.load_key, nexts["key_register"], corrupted
        )
        return TrojanInfo(
            name="AES-T1200",
            trigger="after 2^{} - 1 clock cycles (free-running counter)".format(
                counter_width
            ),
            payload="modifies key register",
            target_register="key_register",
            trigger_cycles=(1 << counter_width) - 1,
        )

    return build_aes(trojan=trojan, name="aes_t1200")
