"""The Section 4 evasion attacks as post-build netlist transformations.

* :func:`add_pseudo_critical` — Attack 1 (Figure 2): insert a register
  that mirrors the critical register (optionally bitwise-inverted) and
  feeds the fan-out in its place; optionally corrupt the *copy* with a
  DeTrust trigger. The defender who checks only the original register sees
  nothing; Eq. (3) promotes the copy and exposes the corruption.
* :func:`add_bypass` — Attack 2 (Figure 3): insert a bypass register and
  a trigger-controlled mux in front of the critical register's fan-out.
  Once triggered, the outputs ignore the critical register entirely —
  the condition Eq. (4)'s CEGIS check hunts for.
* :func:`add_owf_trigger` — the Section 4.5.1 limitation: a Trojan gated
  by a one-way-function-style multi-round mixer of the input history.
  Inverting the mixer is search-hard, so both engines exhaust their
  budgets ("we cannot verify the trustworthiness of such designs").

All three operate on a *clone* of the given netlist and return
``(netlist, TrojanInfo)``.
"""

from __future__ import annotations

from repro.netlist.builder import Circuit
from repro.netlist.traversal import fanin_cone
from repro.properties.valid_ways import TrojanInfo


def _self_update_exclusions(netlist, register):
    """Cells/flops in the register's own next-state path.

    Figure 2/3 hijack the *downstream* fan-out; the critical register keeps
    updating itself from its genuine inputs (otherwise the original
    register would be corrupted too and Eq. (2) would fire directly).
    """
    d_nets = netlist.register_d_nets(register)
    cone = fanin_cone(netlist, d_nets, through_flops=False)
    skip_cells = {
        index
        for index, cell in enumerate(netlist.cells)
        if cell.output in cone
    }
    skip_flops = set(netlist.registers[register])
    return skip_cells, skip_flops


def _reroute_fanout(netlist, old_nets, new_nets, skip_cells=(),
                    skip_flops=()):
    """Point every consumer of ``old_nets`` at ``new_nets`` instead:
    cell inputs, flop D pins, and output ports (Figures 2/3 replace the
    critical register's *entire* fan-out)."""
    remap = dict(zip(old_nets, new_nets))
    from repro.netlist.cells import Cell

    for index, cell in enumerate(netlist.cells):
        if index in skip_cells:
            continue
        if any(net in remap for net in cell.inputs):
            new_inputs = tuple(remap.get(net, net) for net in cell.inputs)
            netlist.cells[index] = Cell(cell.kind, new_inputs, cell.output)
    for index, flop in enumerate(netlist.flops):
        if index in skip_flops:
            continue
        if flop.d in remap:
            netlist.rewire_flop_d(index, remap[flop.d])
    for name, nets in netlist.outputs.items():
        netlist.outputs[name] = [remap.get(net, net) for net in nets]


def add_pseudo_critical(netlist, register, invert=False, corrupt=False,
                        trigger_input=None, trigger_value=0x3,
                        name="pseudo"):
    """Attack 1: a pseudo-critical copy of ``register`` feeds its fan-out.

    With ``corrupt=True`` a DeTrust-style trigger (two consecutive cycles
    of ``trigger_value`` on the low bits of ``trigger_input``) flips the
    copy's low bit — corruption the defender's Eq. (2) check on the
    original register can never see.
    """
    aug = netlist.clone()
    c = Circuit.attach(aug)
    q_nets = aug.register_q_nets(register)
    width = len(q_nets)
    original = c.bv(q_nets)
    skip_cells, skip_flops = _self_update_exclusions(aug, register)
    base_cells = len(aug.cells)
    base_flops = len(aug.flops)

    copy_reg = c.reg("{}_{}".format(name, register), width,
                     init=aug.register_init(register))
    source = ~original if invert else original
    payload_desc = "faithful copy"
    if corrupt:
        if trigger_input is None:
            trigger_input = next(iter(aug.inputs))
        port = c.bv(aug.inputs[trigger_input])
        low = port[0 : min(4, port.width)]
        match = low.eq_const(trigger_value & ((1 << low.width) - 1))
        armed = c.reg("{}_armed".format(name), 1)
        fired = c.reg("{}_fired".format(name), 1)
        armed.drive(match)
        fired.drive(fired.q | (armed.q & match))
        source = c.mux(fired.q, source, source ^ c.const(1, width))
        payload_desc = "copy corrupted once {0}[{1}:0] == {2:#x} twice".format(
            trigger_input, low.width - 1, trigger_value
        )
    copy_reg.drive(source)
    # the copy (un-inverted view) replaces the original in the fan-out —
    # except inside the attack's own logic, which must keep reading the
    # real register to mirror it
    restored = ~copy_reg.q if invert else copy_reg.q
    _reroute_fanout(
        aug,
        q_nets,
        list(restored.nets),
        skip_cells=skip_cells | set(range(base_cells, len(aug.cells))),
        skip_flops=skip_flops | set(range(base_flops, len(aug.flops))),
    )
    info = TrojanInfo(
        name="ATTACK1-{}".format(register),
        trigger="pseudo-critical register in the fan-out of {!r}".format(
            register
        ),
        payload=payload_desc + (" (bitwise inverted)" if invert else ""),
        target_register=register,
        trigger_cycles=2 if corrupt else 0,
    )
    return aug, info


def add_bypass(netlist, register, trigger_input=None, trigger_value=0x3,
               name="bypass"):
    """Attack 2: a trigger-selected bypass register replaces the critical
    register's fan-out once armed (two matching cycles on the trigger
    input's low bits)."""
    aug = netlist.clone()
    c = Circuit.attach(aug)
    q_nets = aug.register_q_nets(register)
    width = len(q_nets)
    skip_cells, skip_flops = _self_update_exclusions(aug, register)
    base_cells = len(aug.cells)
    base_flops = len(aug.flops)
    if trigger_input is None:
        trigger_input = next(iter(aug.inputs))
    port = c.bv(aug.inputs[trigger_input])
    low = port[0 : min(4, port.width)]
    match = low.eq_const(trigger_value & ((1 << low.width) - 1))
    armed = c.reg("{}_armed".format(name), 1)
    fired = c.reg("{}_fired".format(name), 1)
    armed.drive(match)
    fired.drive(fired.q | (armed.q & match))
    rogue = c.reg("{}_{}".format(name, register), width)
    rogue.drive(rogue.q + 1)  # free-running garbage
    selected = c.mux(fired.q, c.bv(q_nets), rogue.q)
    _reroute_fanout(
        aug,
        q_nets,
        list(selected.nets),
        skip_cells=skip_cells | set(range(base_cells, len(aug.cells))),
        skip_flops=skip_flops | set(range(base_flops, len(aug.flops))),
    )
    info = TrojanInfo(
        name="ATTACK2-{}".format(register),
        trigger="{0}[{1}:0] == {2:#x} on two consecutive cycles".format(
            trigger_input, low.width - 1, trigger_value
        ),
        payload="fan-out of {!r} switched to a bypass register".format(
            register
        ),
        target_register=register,
        trigger_cycles=2,
    )
    return aug, info


def add_owf_trigger(netlist, register, rounds=12, name="owf"):
    """Section 4.5.1: a one-way-function-gated Trojan.

    A 32-bit ARX-style mixer absorbs the first input port every cycle for
    ``rounds`` nonlinear rounds of state; the payload fires when the
    digest equals a fixed constant. Finding a preimage is exactly the
    search BMC/ATPG choke on — the engines report *unknown* within any
    realistic budget, the paper's "we cannot verify the trustworthiness"
    outcome.
    """
    aug = netlist.clone()
    c = Circuit.attach(aug)
    # absorb the widest data port (a 1-bit control port would make the
    # mixer nearly input-independent and the search trivial)
    port_name = max(aug.inputs, key=lambda n: len(aug.inputs[n]))
    port = c.bv(aug.inputs[port_name]).zext(32)[0:32]
    state = c.reg("{}_state".format(name), 32, init=0x9E3779B9 & 0xFFFFFFFF)
    mixed = state.q
    for r in range(rounds):
        rotated = c.bv(mixed.nets[7:] + mixed.nets[:7])
        mixed = (mixed + rotated) ^ port.shl_const(r % 5)
        mixed = c.bv(mixed.nets[13:] + mixed.nets[:13])
    state.drive(mixed)
    fired_now = state.q.eq_const(0xDEAD10CC)
    fired = c.reg("{}_fired".format(name), 1)
    fired.drive(fired.q | fired_now)
    # payload: flip the register's low bit, outside any valid way
    flop_index = aug.registers[register][0]
    old_d = aug.flops[flop_index].d
    new_d = c.gate("xor", old_d, fired.q.nets[0])
    aug.rewire_flop_d(flop_index, new_d)
    info = TrojanInfo(
        name="OWF-{}".format(register),
        trigger="{}-round ARX mixer of {!r} history reaching a fixed "
        "digest".format(rounds, port_name),
        payload="flips bit 0 of {!r}".format(register),
        target_register=register,
        trigger_cycles=rounds,
    )
    return aug, info
