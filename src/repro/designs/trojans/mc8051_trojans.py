"""Trust-Hub MC8051 Trojans, restructured DeTrust-style (Table 1 rows 1-3).

* MC8051-T400 — trigger: the four MOV/MOVX instructions of Table 1
  observed in order on consecutive cycles (a DeTrust multi-cycle trigger
  FSM); payload: prevents interrupts by clearing the interrupt-enable
  register.
* MC8051-T700 — trigger: MOV A,#data preceded by MOV A,#0x55 (the
  DeTrust two-cycle restructuring of the single-instruction trigger);
  payload: the moved data is replaced with 0x00.
* MC8051-T800 — trigger: UART receive data equals 0xFF, matched nibble
  by nibble over two cycles (DeTrust's split of a one-byte compare);
  payload: decrements the stack pointer by two.
"""

from __future__ import annotations

from repro.designs.mc8051 import (
    MOV_A_DATA,
    MOVX_A_DPTR,
    MOVX_A_R1,
    MOVX_R1_A,
    build_mc8051,
)
from repro.properties.valid_ways import TrojanInfo

T400_SEQUENCE = (MOV_A_DATA, MOVX_A_R1, MOVX_A_DPTR, MOVX_R1_A)
T700_ARMING_OPERAND = 0x55
T800_UART_VALUE = 0xFF


def mc8051_t400():
    """MC8051-T400: four-instruction sequence disables interrupts."""

    def trojan(signals, nexts):
        from repro.baselines.detrust import sequence_recognizer

        c = signals.circuit
        matches = [
            signals.opcode.eq_const(op) for op in T400_SEQUENCE
        ]
        # One-hot sequence FSM: one symbol per executed instruction.
        fired = sequence_recognizer(
            c, matches, c.true(), signals.reset, name="t400"
        )
        nexts["interrupt_enable"] = c.mux(
            fired, nexts["interrupt_enable"], c.const(0x00, 8)
        )
        return TrojanInfo(
            name="MC8051-T400",
            trigger="MOV A,#data ; MOVX A,@R1 ; MOVX A,@DPTR ; MOVX @R1,A "
            "executed in sequence",
            payload="prevents interrupt (interrupt-enable register forced "
            "to 0x00)",
            target_register="interrupt_enable",
            trigger_cycles=len(T400_SEQUENCE),
        )

    return build_mc8051(trojan=trojan, name="mc8051_t400")


def mc8051_t700():
    """MC8051-T700: MOV A,#data writes 0x00 once armed."""

    def trojan(signals, nexts):
        c = signals.circuit
        # DeTrust staging: the opcode match and the operand match are
        # registered separately, so no combinational cone sees more than
        # one byte of the trigger (keeps FANCI's control values benign).
        op_seen = c.reg("t700_op_seen", 1)
        op_seen.drive(signals.is_mov_a & ~signals.reset)
        val_seen = c.reg("t700_val_seen", 1)
        val_seen.drive(
            signals.operand.eq_const(T700_ARMING_OPERAND) & ~signals.reset
        )
        payload_active = op_seen.q & val_seen.q & signals.is_mov_a
        nexts["acc"] = c.mux(payload_active, nexts["acc"], c.const(0x00, 8))
        return TrojanInfo(
            name="MC8051-T700",
            trigger="MOV A,#data preceded by MOV A,#0x{:02X}".format(
                T700_ARMING_OPERAND
            ),
            payload="modifies the data to 0x00",
            target_register="acc",
            trigger_cycles=2,
        )

    return build_mc8051(trojan=trojan, name="mc8051_t700")


def mc8051_t800():
    """MC8051-T800: UART data 0xFF decrements the stack pointer by two."""

    def trojan(signals, nexts):
        c = signals.circuit
        low = signals.uart_rx[0:4]
        high = signals.uart_rx[4:8]
        lo_match = low.eq_const(T800_UART_VALUE & 0xF) & signals.uart_valid
        hi_match = (
            high.eq_const(T800_UART_VALUE >> 4) & signals.uart_valid
        )
        # DeTrust nibble FSM: low nibble seen, then high nibble seen.
        stage = c.reg("t800_stage", 1)
        stage.hold_unless(
            (signals.reset, c.false()),
            (c.true(), lo_match),
        )
        fired = c.reg("t800_fired", 1)
        fired.hold_unless(
            (signals.reset, c.false()),
            (stage.q & hi_match, c.true()),
        )
        sp = signals.regs["stack_pointer"]
        nexts["stack_pointer"] = c.mux(
            fired.q, nexts["stack_pointer"], sp.q - 2
        )
        return TrojanInfo(
            name="MC8051-T800",
            trigger="UART input data equals 0x{:02X} (nibble-matched over "
            "two cycles)".format(T800_UART_VALUE),
            payload="decrements stack pointer by two",
            target_register="stack_pointer",
            trigger_cycles=2,
        )

    return build_mc8051(trojan=trojan, name="mc8051_t800")
