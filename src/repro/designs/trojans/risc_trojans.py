"""Trust-Hub RISC Trojans, restructured DeTrust-style (Table 1 rows 4-6).

All three share the trigger of Figure 1 / Section 3.4: the four MSBs of the
instruction register lie in 0x4-0xB for ``trigger_count`` consecutive
instructions. The trigger is a counter FSM — its vector arrives over
hundreds of clock cycles, which is exactly the DeTrust construction that
defeats FANCI (each compare is 4 bits wide, activation probability 8/16)
and VeriTrust (every Trojan gate is driven by functional instruction
bits).

Payloads (Table 1):

* RISC-T100 — increments the program counter by two instead of one.
* RISC-T300 — loads the EEPROM data register although EEPROM read is
  disabled.
* RISC-T400 — forces the EEPROM address register to 0x00 during a stall.
* figure1   — decrements the stack pointer by two (the paper's Figure 1).

``trigger_count`` defaults to 8 instructions (32 clock cycles) so a
pure-Python solver exhibits the same detection behaviour the paper reports
at 100 instructions (400 cycles); pass ``trigger_count=100`` for the
paper's exact setting.
"""

from __future__ import annotations

from repro.designs.risc import TRIGGER_RANGE, build_risc
from repro.properties.valid_ways import TrojanInfo

DEFAULT_TRIGGER_COUNT = 8


def _instruction_range_trigger(signals, trigger_count, name):
    """Counter FSM: fires after ``trigger_count`` consecutive in-range
    instructions; returns the latched fired signal (1-bit BitVec)."""
    c = signals.circuit
    lo, hi = TRIGGER_RANGE
    width = max(1, trigger_count.bit_length())
    in_range = signals.opcode.in_range(lo, hi)
    counter = c.reg("{}_counter".format(name), width)
    done = counter.q.eq_const(trigger_count)
    step = signals.p4  # one count per instruction, sampled at Q4
    counter.hold_unless(
        (signals.reset, c.const(0, width)),
        (step & in_range & ~done, counter.q + 1),
        (step & ~in_range, c.const(0, width)),
    )
    fired = c.reg("{}_fired".format(name), 1)
    fired.hold_unless(
        (signals.reset, c.false()),
        (done, c.true()),
    )
    return fired.q | done


def risc_t100(trigger_count=DEFAULT_TRIGGER_COUNT):
    """RISC-T100: PC += 2 once triggered. Returns (netlist, spec)."""

    def trojan(signals, nexts):
        c = signals.circuit
        fired = _instruction_range_trigger(signals, trigger_count, "t100")
        pc = signals.regs["program_counter"]
        increment_slot = (
            signals.p4 & ~signals.stall & ~signals.sleep
        )
        payload_active = fired & increment_slot
        nexts["program_counter"] = c.mux(
            payload_active, nexts["program_counter"], pc.q + 2
        )
        return TrojanInfo(
            name="RISC-T100",
            trigger="instr[13:10] in 0x4-0xB for {} instructions".format(
                trigger_count
            ),
            payload="increments program counter by two",
            target_register="program_counter",
            trigger_cycles=4 * trigger_count,
        )

    return build_risc(trojan=trojan, name="risc_t100")


def risc_t300(trigger_count=DEFAULT_TRIGGER_COUNT):
    """RISC-T300: EEPROM data loads while EEPROM read is disabled."""

    def trojan(signals, nexts):
        c = signals.circuit
        fired = _instruction_range_trigger(signals, trigger_count, "t300")
        payload_active = (
            fired & signals.p4 & ~signals.stall & ~signals.is_eeread
        )
        nexts["eeprom_data"] = c.mux(
            payload_active, nexts["eeprom_data"], signals.eeprom_in
        )
        return TrojanInfo(
            name="RISC-T300",
            trigger="instr[13:10] in 0x4-0xB for {} instructions".format(
                trigger_count
            ),
            payload="modifies the data written to memory (EEPROM data "
            "register loads with read disabled)",
            target_register="eeprom_data",
            trigger_cycles=4 * trigger_count,
        )

    return build_risc(trojan=trojan, name="risc_t300")


def risc_t400(trigger_count=DEFAULT_TRIGGER_COUNT):
    """RISC-T400: EEPROM address forced to 0x00 during a stall."""

    def trojan(signals, nexts):
        c = signals.circuit
        fired = _instruction_range_trigger(signals, trigger_count, "t400")
        payload_active = fired & signals.p4 & signals.stall
        nexts["eeprom_address"] = c.mux(
            payload_active, nexts["eeprom_address"], c.const(0x00, 8)
        )
        return TrojanInfo(
            name="RISC-T400",
            trigger="instr[13:10] in 0x4-0xB for {} instructions".format(
                trigger_count
            ),
            payload="modifies the data address to 0x00",
            target_register="eeprom_address",
            trigger_cycles=4 * trigger_count,
        )

    return build_risc(trojan=trojan, name="risc_t400")


def risc_figure1(trigger_count=DEFAULT_TRIGGER_COUNT):
    """The Figure 1 Trojan: stack pointer decremented by two."""

    def trojan(signals, nexts):
        c = signals.circuit
        fired = _instruction_range_trigger(signals, trigger_count, "fig1")
        sp = signals.regs["stack_pointer"]
        payload_active = fired & signals.p4
        nexts["stack_pointer"] = c.mux(
            payload_active, nexts["stack_pointer"], sp.q - 2
        )
        return TrojanInfo(
            name="RISC-FIG1",
            trigger="instr[13:10] in 0x4-0xB for {} instructions".format(
                trigger_count
            ),
            payload="decrements the stack pointer by two",
            target_register="stack_pointer",
            trigger_cycles=4 * trigger_count,
        )

    return build_risc(trojan=trojan, name="risc_fig1")
