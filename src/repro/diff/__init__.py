"""Golden-model differential screening (ROADMAP item 4, second half).

The portfolio's dynamic complement to the static lint and IFT screens:
compile each critical register's ValidWays spec into an executable
reference next-state function (the spec *is* the golden model), drive
implementation and reference with shared seeded stimulus on the
bit-parallel simulator, and flag any cycle where the register departs
from every documented way's prediction. Zero SAT calls; findings fuse
into :class:`~repro.core.report.DetectionReport` as ``diff_evidence``
with a ``differential_suspect`` verdict rung.

Public surface::

    analyze_design(netlist, spec, design=...)   -> DiffReport
    build_golden_models(netlist, spec)          -> (clone, models)
    build_phases(netlist, spec, models, config) -> [Phase]
    to_sarif / write_sarif / merged_sarif       -> SARIF 2.1.0
"""

from repro.diff.findings import (
    DIFF_RULES,
    DiffFinding,
    DiffReport,
    RegisterDiffStats,
)
from repro.diff.golden import GoldenModel, WayMonitor, build_golden_models
from repro.diff.sarif import merged_sarif, to_sarif, write_sarif
from repro.diff.screen import DiffConfig, analyze_design
from repro.diff.stimulus import Phase, build_phases

__all__ = [
    "DIFF_RULES",
    "DiffConfig",
    "DiffFinding",
    "DiffReport",
    "GoldenModel",
    "Phase",
    "RegisterDiffStats",
    "WayMonitor",
    "analyze_design",
    "build_golden_models",
    "build_phases",
    "merged_sarif",
    "to_sarif",
    "write_sarif",
]
