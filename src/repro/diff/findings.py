"""Structured results of the golden-model differential screen.

Findings reuse the lint severity ladder and field shape
(:class:`~repro.lint.findings.LintFinding`) so every downstream
consumer — Algorithm 1 register prioritization, the shared SARIF
writer, the fused audit report — handles lint, IFT and differential
evidence with the same code. A :class:`DiffReport` aggregates one
design's findings with per-register simulation accounting (way counts,
cycles driven, divergence counts) that the bench harness reads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.lint.findings import (
    SEVERITIES,
    SEVERITY_WEIGHT,
    SUSPICIOUS,
    LintFinding,
    severity_rank,
)

# Rule registry of the differential screen: id -> (severity,
# description). Two rules, one per evidence tier: a divergence reached
# by input-only stimulus is a demonstrated spec violation; a divergence
# that needed undocumented state forced shows that hidden state *can*
# steer the register, without a reachability witness.
DIFF_RULES = {
    "diff-divergence": (
        SUSPICIOUS,
        "Under input-only stimulus the implementation register departed "
        "from every documented valid way's prediction — a reachable "
        "violation of the datasheet update spec.",
    ),
    "diff-undocumented-state": (
        SUSPICIOUS,
        "Forcing the register's undocumented write-port state nets "
        "steered the register off every documented valid way — hidden "
        "state controls the register's next value.",
    ),
}


@dataclass
class DiffFinding(LintFinding):
    """One divergence family hit; shares the lint finding shape."""


@dataclass
class RegisterDiffStats:
    """Simulation accounting for one screened critical register."""

    register: str
    num_ways: int = 0
    num_sources: int = 0
    cycles: int = 0
    lanes: int = 0
    divergent_cycles: int = 0

    def to_dict(self) -> dict:
        return {
            "register": self.register,
            "num_ways": self.num_ways,
            "num_sources": self.num_sources,
            "cycles": self.cycles,
            "lanes": self.lanes,
            "divergent_cycles": self.divergent_cycles,
        }


@dataclass
class DiffReport:
    """All differential findings for one design."""

    design: str
    findings: list = field(default_factory=list)
    register_stats: dict = field(default_factory=dict)  # name -> stats
    seed: int = 0
    lanes: int = 0
    cycles: int = 0
    elapsed: float = 0.0

    # ------------------------------------------------------------- queries

    def findings_for(self, register: str) -> list:
        """Findings implicating one register."""
        return [f for f in self.findings if f.register == register]

    @property
    def max_severity(self) -> "str | None":
        if not self.findings:
            return None
        return max(
            self.findings, key=lambda f: severity_rank(f.severity)
        ).severity

    @property
    def severity_counts(self) -> dict:
        counts = {name: 0 for name in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    @property
    def rule_hits(self) -> dict:
        """Per-rule hit counts (every diff rule, zero included)."""
        counts = {rule: 0 for rule in DIFF_RULES}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    @property
    def divergent_registers(self) -> list:
        """Screened registers with at least one finding, sorted."""
        return sorted({f.register for f in self.findings if f.register})

    def register_scores(self) -> dict:
        """Priority score per implicated register (higher = audit first)."""
        scores: dict[str, int] = {}
        for finding in self.findings:
            if finding.register is None:
                continue
            scores[finding.register] = (
                scores.get(finding.register, 0)
                + SEVERITY_WEIGHT[finding.severity]
            )
        return scores

    # ------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "seed": self.seed,
            "lanes": self.lanes,
            "cycles": self.cycles,
            "elapsed": self.elapsed,
            "findings": [f.to_dict() for f in self.findings],
            "register_stats": {
                name: st.to_dict()
                for name, st in self.register_stats.items()
            },
            "severity_counts": self.severity_counts,
            "register_scores": self.register_scores(),
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """Human-readable multi-line report."""
        counts = self.severity_counts
        screened = len(self.register_stats)
        sourced = sum(
            1 for st in self.register_stats.values() if st.num_sources
        )
        lines = [
            "diff {!r}: {} finding{} ({}) over {} register{} "
            "({} with undocumented sources; seed {}, {} lanes, "
            "{} cycles) in {:.2f}s".format(
                self.design,
                len(self.findings),
                "" if len(self.findings) == 1 else "s",
                ", ".join(
                    "{} {}".format(counts[name], name)
                    for name in reversed(SEVERITIES)
                    if counts[name]
                )
                or "clean",
                screened,
                "" if screened == 1 else "s",
                sourced,
                self.seed,
                self.lanes,
                self.cycles,
                self.elapsed,
            )
        ]
        for finding in sorted(
            self.findings,
            key=lambda f: -severity_rank(f.severity),
        ):
            lines.append("  {}".format(finding))
        return "\n".join(lines)


def make_finding(
    rule: str,
    message: str,
    design: str,
    register: str,
    nets: Any = (),
    net_names: Any = (),
    evidence: "dict | None" = None,
) -> DiffFinding:
    """Build a finding for a registered diff rule."""
    severity, _description = DIFF_RULES[rule]
    return DiffFinding(
        rule=rule,
        severity=severity,
        message=message,
        design=design,
        register=register,
        nets=list(nets),
        net_names=list(net_names),
        evidence=dict(evidence or {}),
    )
