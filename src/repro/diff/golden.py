"""Executable golden models derived from ValidWays specifications.

The paper's spec artifact — the set of valid ways to update a critical
register — already *is* a reference next-state function: each way gives
a firing condition and (optionally) the value the register must take
when that way fires. Rather than hand-writing a second model of every
design (a second chance to encode the same misunderstanding), the
differential screen compiles the spec itself into simulable monitor
logic:

* the design netlist is cloned and a :class:`~repro.netlist.builder.
  Circuit` is re-attached, exactly as the BMC monitor synthesizer does;
* every way's ``when``/``value`` callables are evaluated against a
  :class:`~repro.ift.sources.RecordingCtx`, producing combinational
  condition/expected nets *inside the clone* while recording which
  design signals (input ports, register Qs, probes) the spec reads;
* the recorded input anchors feed the way-directed stimulus phases, and
  :func:`~repro.ift.sources.derive_sources` supplies the register's
  undocumented write-port state for the excitation phase.

Because the monitor nets live in the same netlist as the implementation
and are evaluated in the same combinational frame, implementation and
golden model can never disagree due to sampling skew: both read the
identical pre-edge values of every signal the spec mentions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.ift.sources import RecordingCtx, derive_sources
from repro.lint.analysis import DesignAnalysis
from repro.netlist.builder import Circuit


@dataclass
class WayMonitor:
    """One compiled valid way: condition/expected nets in the clone."""

    name: str
    cond_net: int
    value_nets: "list | None"  # None: way documents no expected value
    input_anchors: list = field(default_factory=list)  # port names read


@dataclass
class GoldenModel:
    """Executable reference next-state function for one register."""

    register: str
    width: int
    q_nets: list
    ways: list  # WayMonitor, spec order
    sources: Any  # TaintSources: undocumented write-port state

    @property
    def source_nets(self) -> list:
        return list(self.sources.sources)


def build_golden_models(
    netlist: Any, spec: Any, analysis: "DesignAnalysis | None" = None
) -> "tuple[Any, dict]":
    """Compile every critical register's spec into monitor logic.

    Returns ``(augmented, models)``: one clone of ``netlist`` carrying
    the monitor gates of *all* critical registers (net ids of the
    original stay valid — :meth:`~repro.netlist.netlist.Netlist.clone`
    preserves them), and a name-keyed dict of :class:`GoldenModel`.
    """
    if analysis is None:
        analysis = DesignAnalysis(netlist, spec)
    augmented = netlist.clone()
    circuit = Circuit.attach(augmented)
    models = {}
    for register in sorted(spec.critical):
        reg_spec = spec.spec_for(register)
        width = netlist.register_width(register)
        ways = []
        for way in reg_spec.ways:
            # one recording context per way so the directed stimulus
            # phase knows which input ports *this* way reads
            ctx = RecordingCtx(circuit)
            cond = way.condition(ctx)
            value = way.expected(ctx, width)
            ways.append(
                WayMonitor(
                    name=way.name,
                    cond_net=cond.nets[0],
                    value_nets=(
                        list(value.nets) if value is not None else None
                    ),
                    input_anchors=sorted(
                        name.split(":", 1)[1]
                        for name in ctx.anchor_names
                        if name.startswith("input:")
                    ),
                )
            )
        models[register] = GoldenModel(
            register=register,
            width=width,
            q_nets=list(netlist.register_q_nets(register)),
            ways=ways,
            sources=derive_sources(netlist, spec, register, analysis),
        )
    return augmented, models
