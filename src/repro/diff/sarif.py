"""SARIF 2.1.0 export of differential reports, via the shared writer.

One :class:`~repro.diff.findings.DiffReport` becomes one ``run`` under
driver ``repro-diff``. :func:`merged_sarif` is what the CLI writes by
default: the lint, IFT and differential runs of the same designs in a
single multi-run log — the full three-modality portfolio as one scan
artifact.

The VCD witness is stripped from SARIF evidence (``witnessVcd`` would
dwarf every other property in a scanning UI); its cycle count and
replay coordinates stay, and the full witness remains in the JSON
report and fused audit evidence.
"""

from __future__ import annotations

from typing import Any

from repro.diff.findings import DIFF_RULES
from repro.report.sarif import (
    driver_rule,
    finding_result,
    make_log,
    write_log,
)

__all__ = ["diff_runs", "to_sarif", "write_sarif", "merged_sarif"]


def _driver_rules() -> list:
    return [
        driver_rule(rule_id, description, severity)
        for rule_id, (severity, description) in DIFF_RULES.items()
    ]


def _result(finding: Any, rule_index: "int | None") -> dict:
    result = finding_result(finding, rule_index)
    evidence = result["properties"]["evidence"]
    evidence.pop("witness_vcd", None)
    return result


def _run(report: Any) -> dict:
    rules = _driver_rules()
    index = {entry["id"]: i for i, entry in enumerate(rules)}
    return {
        "tool": {
            "driver": {
                "name": "repro-diff",
                "informationUri": (
                    "https://github.com/paper-repro/conf-dac-trojan"
                ),
                "version": "0.2.0",
                "rules": rules,
            }
        },
        "results": [
            _result(finding, index.get(finding.rule))
            for finding in report.findings
        ],
        "properties": {
            "design": report.design,
            "seed": report.seed,
            "lanes": report.lanes,
            "cycles": report.cycles,
            "elapsed": report.elapsed,
            "ruleHits": report.rule_hits,
            "registerStats": {
                name: stats.to_dict()
                for name, stats in report.register_stats.items()
            },
        },
    }


def diff_runs(reports: Any) -> list:
    """SARIF runs (one per report) for merging with other modalities."""
    if not isinstance(reports, (list, tuple)):
        reports = [reports]
    return [_run(report) for report in reports]


def to_sarif(reports: Any) -> dict:
    """SARIF log dict of differential runs only."""
    return make_log(diff_runs(reports))


def merged_sarif(
    diff_reports: Any,
    ift_reports: Any = None,
    lint_reports: Any = None,
) -> dict:
    """One multi-run log: lint, then IFT, then differential runs."""
    from repro.ift.sarif import ift_runs
    from repro.lint.sarif import lint_runs

    runs: list = []
    if lint_reports:
        runs.extend(lint_runs(lint_reports))
    if ift_reports:
        runs.extend(ift_runs(ift_reports))
    runs.extend(diff_runs(diff_reports))
    return make_log(runs)


def write_sarif(
    path: Any,
    reports: Any,
    ift_reports: Any = None,
    lint_reports: Any = None,
) -> Any:
    """Write differential (optionally three-run merged) SARIF."""
    return write_log(
        path, merged_sarif(reports, ift_reports, lint_reports)
    )
