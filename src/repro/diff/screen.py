"""Top-level differential screen: golden models -> stimulus -> diff.

:func:`analyze_design` compiles every critical register's ValidWays
spec into monitor logic inside one clone of the netlist
(:mod:`repro.diff.golden`), drives implementation and monitors with the
shared seeded stimulus portfolio (:mod:`repro.diff.stimulus`) on the
bit-parallel :class:`~repro.sim.sequential.SequentialSimulator`, and
diffs per cycle: a register that *changes* while **no** documented way
both fires and predicts the observed new value has departed from the
spec.

The check is one-step: every cycle the prediction re-grounds on the
implementation's own pre-edge state, so a corrupted register never
cascades false divergences into its neighbours. Holding the previous
value is always allowed (the datasheet enumerates updates, not holds),
which makes the screen conservative: it can miss a Trojan that only
*blocks* an update at an identical value, but it can never flag a
spec-conforming register — on the bundled clean designs every
implementation select arm corresponds to a documented way reading the
same pre-edge frame, so the screen is silent by construction.

Each finding carries the divergence coordinates (phase, cycle, lane,
seed), the before/after register words, which ways fired with what
predictions, and a replayable single-lane VCD witness regenerated from
the recorded stimulus.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.diff.findings import (
    DiffReport,
    RegisterDiffStats,
    make_finding,
)
from repro.diff.golden import build_golden_models
from repro.diff.stimulus import build_phases
from repro.lint.analysis import DesignAnalysis
from repro.obs.tracer import get_tracer
from repro.sim.sequential import SequentialSimulator
from repro.sim.vcd import VcdWriter

# evidence lists are capped so findings stay readable and reports stay
# small, mirroring the IFT screen's convention
_MAX_EVIDENCE_NETS = 12


@dataclass(frozen=True)
class DiffConfig:
    """Tuning knobs of the differential screen.

    Defaults are calibrated against the bundled corpus: the hold window
    outlasts the RISC count-to-8 triggers (8 instructions x 4 phase
    cycles), and the excitation budget makes the rarest payload events
    (one-in-256 opcode draws) near-certain across lanes x cycles.
    """

    seed: int = 2015
    lanes: int = 64
    random_cycles: int = 160
    hold_rounds: int = 3
    hold_window: int = 48
    directed_cycles: int = 16
    excite_cycles: int = 64
    witness: bool = True


class _CompiledModel:
    """A golden model with net ids resolved to snapshot indices."""

    def __init__(self, model, index):
        self.model = model
        self.register = model.register
        self.q_nets = model.q_nets
        self.q_idx = [index[n] for n in model.q_nets]
        self.ways = [
            (
                way.name,
                index[way.cond_net],
                [index[n] for n in way.value_nets]
                if way.value_nets is not None
                else None,
            )
            for way in model.ways
        ]


class _Divergence:
    """First divergence for one (register, rule), plus a hit counter."""

    def __init__(self, phase, cycle, lane, before, after, fired):
        self.phase = phase
        self.cycle = cycle
        self.lane = lane
        self.before = before
        self.after = after
        self.fired = fired  # [(way name, predicted word or None)]
        self.count = 1


def _names(netlist: Any, nets: Any) -> list:
    return [netlist.net_name(net) for net in nets]


def _capped(names: list) -> list:
    return names[:_MAX_EVIDENCE_NETS]


def _lane_word(pre: list, idxs: list, lane: int) -> int:
    word = 0
    for i, idx in enumerate(idxs):
        if (pre[idx] >> lane) & 1:
            word |= 1 << i
    return word


def analyze_design(
    netlist: Any,
    spec: Any,
    design: str = "",
    config: "DiffConfig | None" = None,
    analysis: "DesignAnalysis | None" = None,
) -> DiffReport:
    """Run the golden-model differential screen over a design."""
    if config is None:
        config = DiffConfig()
    started = time.perf_counter()
    tracer = get_tracer()
    if analysis is None:
        analysis = DesignAnalysis(netlist, spec)
    report = DiffReport(
        design=design, seed=config.seed, lanes=config.lanes
    )
    with tracer.span("diff", design=design) as span:
        augmented, models = build_golden_models(netlist, spec, analysis)
        phases = build_phases(netlist, spec, models, config)
        for register in sorted(models):
            model = models[register]
            report.register_stats[register] = RegisterDiffStats(
                register=register,
                num_ways=len(model.ways),
                num_sources=len(model.source_nets),
                lanes=config.lanes,
            )
        snap_nets, index = _snapshot_plan(models)
        compiled = {
            name: _CompiledModel(model, index)
            for name, model in models.items()
        }
        divergences: dict = {}  # (register, rule) -> _Divergence
        for phase in phases:
            with tracer.span("diff.phase", phase=phase.name) as pspan:
                cycles = _run_phase(
                    augmented,
                    compiled,
                    phase,
                    config,
                    snap_nets,
                    divergences,
                    report.register_stats,
                )
                pspan["cycles"] = cycles
            report.cycles += len(phase.cycles)
        phase_by_name = {phase.name: phase for phase in phases}
        for register, rule in sorted(divergences):
            event = divergences[(register, rule)]
            report.findings.append(
                _build_finding(
                    netlist,
                    augmented,
                    design,
                    models[register],
                    rule,
                    event,
                    phase_by_name[event.phase],
                    config,
                )
            )
        tracer.metrics.counter("diff.findings").inc(len(report.findings))
        span["findings"] = len(report.findings)
    report.elapsed = time.perf_counter() - started
    return report


def _snapshot_plan(models: dict) -> "tuple[list, dict]":
    """Pre-edge nets to snapshot each cycle, and net -> index map.

    The divergence check runs *after* the clock edge (register Qs hold
    their new value) but must read conditions, predictions and the old
    register value from the pre-edge frame — and a way's value nets may
    alias flop Qs (e.g. a probe over a file register), which the edge
    overwrites. Snapshotting by index into one flat list keeps the
    per-cycle cost to a single comprehension.
    """
    nets: set = set()
    for model in models.values():
        nets.update(model.q_nets)
        for way in model.ways:
            nets.add(way.cond_net)
            if way.value_nets is not None:
                nets.update(way.value_nets)
    snap_nets = sorted(nets)
    return snap_nets, {net: i for i, net in enumerate(snap_nets)}


def _run_phase(
    augmented: Any,
    compiled: dict,
    phase: Any,
    config: Any,
    snap_nets: list,
    divergences: dict,
    stats: dict,
) -> int:
    """Simulate one phase, recording divergences for checked registers."""
    sim = SequentialSimulator(augmented, lanes=config.lanes)
    values = sim.values
    evaluator = sim.evaluator
    mask = evaluator.mask
    for qnet, pattern in phase.init_state.items():
        values[qnet] = pattern & mask
    checked = [
        compiled[name]
        for name in sorted(compiled)
        if phase.registers is None or name in phase.registers
    ]
    for name in (c.register for c in checked):
        stats[name].cycles += len(phase.cycles)
    input_nets = augmented.inputs
    for cycle, inputs in enumerate(phase.cycles):
        for name, words in inputs.items():
            evaluator.set_word_lanes(values, input_nets[name], words)
        for net, pattern in phase.forces.items():
            values[net] = pattern & mask
        evaluator.propagate(values)
        pre = [values[net] for net in snap_nets]
        sim.clock()
        for model in checked:
            changed = 0
            for i, q in enumerate(model.q_nets):
                changed |= pre[model.q_idx[i]] ^ values[q]
            if not changed:
                continue
            ok = 0
            for _name, cond_idx, value_idx in model.ways:
                cond = pre[cond_idx]
                if not cond:
                    continue
                if value_idx is None:
                    ok |= cond
                else:
                    mismatch = 0
                    for i, vi in enumerate(value_idx):
                        mismatch |= pre[vi] ^ values[model.q_nets[i]]
                    ok |= cond & ~mismatch
                if ok == mask:
                    break
            diverged = changed & ~ok & mask
            if not diverged:
                continue
            key = (model.register, phase.rule)
            if key in divergences:
                divergences[key].count += 1
            else:
                lane = (diverged & -diverged).bit_length() - 1
                divergences[key] = _Divergence(
                    phase=phase.name,
                    cycle=cycle,
                    lane=lane,
                    before=_lane_word(pre, model.q_idx, lane),
                    after=evaluator.get_word(
                        values, model.q_nets, lane
                    ),
                    fired=[
                        (
                            name,
                            _lane_word(pre, value_idx, lane)
                            if value_idx is not None
                            else None,
                        )
                        for name, cond_idx, value_idx in model.ways
                        if (pre[cond_idx] >> lane) & 1
                    ],
                )
            stats[model.register].divergent_cycles += 1
    return len(phase.cycles)


def _replay_witness(
    augmented: Any, netlist: Any, phase: Any, model: Any, event: Any
) -> "tuple[str, bool]":
    """Re-run the diverging lane single-lane and render a VCD witness.

    Returns ``(vcd_text, reproduced)``; ``reproduced`` confirms the
    single-lane replay diverges at the recorded cycle, which doubles as
    a determinism check on the lane-parallel evaluation.
    """
    lane = event.lane
    sim = SequentialSimulator(augmented, lanes=1)
    for qnet, pattern in phase.init_state.items():
        sim.values[qnet] = (pattern >> lane) & 1
    input_ports = sorted(augmented.inputs)
    series: dict = {name: [] for name in input_ports}
    cond_series = {way.name: [] for way in model.ways}
    reg_series: list = []
    reproduced = False
    for cycle in range(event.cycle + 1):
        inputs = phase.cycles[cycle]
        for name in input_ports:
            word = inputs[name][lane]
            sim.set_input(name, word)
            series[name].append(word)
        for net, pattern in phase.forces.items():
            sim.values[net] = (pattern >> lane) & 1
        sim.propagate()
        before = sim.evaluator.get_word(sim.values, model.q_nets, 0)
        fired = []
        for way in model.ways:
            cond = sim.values[way.cond_net] & 1
            cond_series[way.name].append(cond)
            if cond:
                fired.append(
                    sim.evaluator.get_word(
                        sim.values, way.value_nets, 0
                    )
                    if way.value_nets is not None
                    else None
                )
        sim.clock()
        after = sim.evaluator.get_word(sim.values, model.q_nets, 0)
        reg_series.append(after)
        if cycle == event.cycle:
            explained = any(
                predicted is None or predicted == after
                for predicted in fired
            )
            reproduced = after != before and not explained
    writer = VcdWriter(design_name="diff-{}".format(model.register))
    for name in input_ports:
        writer.add_signal(name, len(augmented.inputs[name]), series[name])
    for way in model.ways:
        writer.add_signal(
            "way_{}".format(way.name), 1, cond_series[way.name]
        )
    writer.add_signal(model.register, model.width, reg_series)
    return writer.dumps(), reproduced


def _build_finding(
    netlist: Any,
    augmented: Any,
    design: str,
    model: Any,
    rule: str,
    event: Any,
    phase: Any,
    config: Any,
) -> Any:
    fired = ", ".join(
        "{}={:#x}".format(name, predicted)
        if predicted is not None
        else name
        for name, predicted in event.fired
    )
    evidence = {
        "phase": event.phase,
        "cycle": event.cycle,
        "lane": event.lane,
        "seed": config.seed,
        "lanes": config.lanes,
        "before": event.before,
        "after": event.after,
        "ways_fired": [
            {"way": name, "predicted": predicted}
            for name, predicted in event.fired
        ],
        "divergent_cycles": event.count,
    }
    if rule == "diff-undocumented-state":
        evidence["num_sources"] = len(model.source_nets)
        evidence["forced_nets"] = _capped(
            _names(netlist, model.source_nets)
        )
        nets = model.source_nets
    else:
        nets = model.q_nets
    if config.witness:
        vcd, reproduced = _replay_witness(
            augmented, netlist, phase, model, event
        )
        evidence["witness_vcd"] = vcd
        evidence["witness_cycles"] = event.cycle + 1
        evidence["witness_reproduced"] = reproduced
    if rule == "diff-undocumented-state":
        message = (
            "forcing {} undocumented state net(s) steered {!r} off "
            "every documented way at cycle {} of phase {!r} "
            "(lane {}: {:#x} -> {:#x}; fired: {})".format(
                len(model.source_nets),
                model.register,
                event.cycle,
                event.phase,
                event.lane,
                event.before,
                event.after,
                fired or "none",
            )
        )
    else:
        message = (
            "implementation of {!r} departed from every documented "
            "way at cycle {} of phase {!r} under input-only stimulus "
            "(lane {}: {:#x} -> {:#x}; fired: {})".format(
                model.register,
                event.cycle,
                event.phase,
                event.lane,
                event.before,
                event.after,
                fired or "none",
            )
        )
    return make_finding(
        rule,
        message,
        design,
        model.register,
        nets=nets[:_MAX_EVIDENCE_NETS],
        net_names=_capped(_names(netlist, nets)),
        evidence=evidence,
    )
