"""Seeded stimulus portfolio for the differential screen.

Four phase families, all derived deterministically from one seed so a
finding's ``(seed, phase, cycle, lane)`` coordinates replay exactly:

* ``random`` — independent random input words per cycle *per lane*; the
  bit-parallel simulator runs ``lanes`` stimulus sequences at once.
* ``hold`` — per-lane random input words held constant for a window of
  cycles, repeated for several rounds. Sequential triggers that count
  consecutive qualifying cycles (the RISC instruction-range counters)
  are reachable by held stimulus but near-unreachable by white noise.
* ``way:*`` — one directed phase per documented way that reads input
  ports: the way's recorded input anchors are driven active (1-bit
  ports) or held at per-lane random words, exercising the documented
  update paths and the logic around them.
* ``excite:*`` — only for registers whose write port has *undocumented*
  state (:func:`~repro.ift.sources.derive_sources` is non-empty, i.e.
  never on the bundled clean designs): architectural state is
  randomized per lane once, then the undocumented source nets are
  forced to adversarial per-lane patterns every cycle (lane 0 all-ones,
  lane 1 all-zeros, remaining lanes random) while inputs stay random.
  Forcing leaf nets (inputs / flop Qs) is divergence-safe for spec-
  conforming logic — implementation and way monitors read the same
  forced frame — so any divergence demonstrates undocumented control.

Input ports pinned by the spec (``pinned_inputs``, normally
``{"reset": 0}``) stay pinned in every phase, except that a directed
phase may drive a pinned port its way explicitly reads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Phase:
    """One stimulus phase: per-cycle per-lane inputs plus net forces."""

    name: str
    rule: str  # finding rule id for divergences seen in this phase
    cycles: list  # per cycle: {port: [word per lane]}
    forces: dict = field(default_factory=dict)  # net -> lane pattern
    init_state: dict = field(default_factory=dict)  # flop Q -> pattern
    registers: "tuple | None" = None  # None: check every screened register


def _random_cycle(rng, inputs, lanes, pinned, overrides=None):
    cycle = {}
    for name, nets in inputs.items():
        if overrides and name in overrides:
            cycle[name] = overrides[name]
        elif name in pinned:
            cycle[name] = [pinned[name]] * lanes
        else:
            width = len(nets)
            cycle[name] = [rng.getrandbits(width) for _ in range(lanes)]
    return cycle


def _held_words(rng, width, lanes):
    if width == 1:
        return [1] * lanes
    return [rng.getrandbits(width) for _ in range(lanes)]


def build_phases(netlist: Any, spec: Any, models: dict, config: Any) -> list:
    """The full deterministic phase list for one design."""
    rng = random.Random(config.seed)
    inputs = netlist.inputs
    lanes = config.lanes
    pinned = dict(spec.pinned_inputs)
    phases = []

    phases.append(
        Phase(
            name="random",
            rule="diff-divergence",
            cycles=[
                _random_cycle(rng, inputs, lanes, pinned)
                for _ in range(config.random_cycles)
            ],
        )
    )

    hold_cycles = []
    for _ in range(config.hold_rounds):
        held = {
            name: (
                [pinned[name]] * lanes
                if name in pinned
                else [
                    rng.getrandbits(len(nets)) for _ in range(lanes)
                ]
            )
            for name, nets in inputs.items()
        }
        hold_cycles.extend([held] * config.hold_window)
    phases.append(
        Phase(name="hold", rule="diff-divergence", cycles=hold_cycles)
    )

    for register in sorted(models):
        for way in models[register].ways:
            anchors = [a for a in way.input_anchors if a in inputs]
            if not anchors:
                continue  # the random phases already cover this way
            overrides = {
                name: _held_words(rng, len(inputs[name]), lanes)
                for name in anchors
            }
            phases.append(
                Phase(
                    name="way:{}:{}".format(register, way.name),
                    rule="diff-divergence",
                    cycles=[
                        _random_cycle(rng, inputs, lanes, pinned, overrides)
                        for _ in range(config.directed_cycles)
                    ],
                )
            )

    for register in sorted(models):
        model = models[register]
        if not model.source_nets:
            continue
        forces = {}
        for net in model.source_nets:
            pattern = 1  # lane 0: forced high, lane 1: forced low
            if lanes > 2:
                pattern |= rng.getrandbits(lanes - 2) << 2
            forces[net] = pattern
        init_state = {
            flop.q: rng.getrandbits(lanes)
            for flop in netlist.flops
            if flop.q not in forces
        }
        phases.append(
            Phase(
                name="excite:{}".format(register),
                rule="diff-undocumented-state",
                cycles=[
                    _random_cycle(rng, inputs, lanes, pinned)
                    for _ in range(config.excite_cycles)
                ],
                forces=forces,
                init_state=init_state,
                registers=(register,),
            )
        )

    return phases
