"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class. Sub-hierarchies mirror the package
layout (netlist construction, simulation, SAT solving, formal engines).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class NetlistError(ReproError):
    """Structural problem in a netlist (bad net id, missing driver, ...)."""


class CombinationalLoopError(NetlistError):
    """The combinational portion of a netlist contains a cycle."""

    def __init__(self, nets):
        self.nets = list(nets)
        super().__init__(
            "combinational loop through nets: {}".format(self.nets[:20])
        )


class WidthError(NetlistError):
    """Word-level operands have incompatible widths."""


class SimulationError(ReproError):
    """Problem while simulating a netlist (unknown input, bad stimulus)."""


class EncodingError(ReproError):
    """Problem while encoding a circuit into CNF."""


class SolverError(ReproError):
    """Internal SAT-solver failure (should never happen on valid input)."""


class ResourceBudgetExceeded(ReproError):
    """A formal engine ran out of its time or conflict budget.

    The paper (Sections 3.2 and 3.3) caps each run at a fixed wall-clock
    budget and reports the largest bound reached; engines raise this error
    (or return a partial verdict) when the budget is exhausted.
    """

    def __init__(self, message, bound_reached=0):
        self.bound_reached = bound_reached
        super().__init__(message)


class EngineArgumentError(ReproError):
    """A check argument is not accepted by the selected formal engine.

    ``run_objective`` validates its ``**check_kwargs`` against the
    engine's ``check`` signature up front, so a typo (or an engine-
    specific knob passed to the wrong engine) fails with the offending
    argument named instead of a bare ``TypeError`` deep in the call.
    """


class CheckpointError(ReproError):
    """An audit checkpoint is unreadable or belongs to a different audit."""


class CheckpointWriteError(CheckpointError):
    """A checkpoint could not be persisted (disk full, permissions, ...).

    Carries the path and the original ``OSError`` so callers can log a
    structured warning. An audit that hits this keeps running — it merely
    loses crash-resume coverage from that point on — because losing a
    checkpoint must never lose the verdicts it was protecting.
    """

    def __init__(self, path, cause):
        self.path = str(path)
        self.cause = cause
        super().__init__(
            "cannot write checkpoint {}: {}".format(path, cause)
        )


class CacheBackendError(ReproError):
    """A shared cache backend misbehaved (unreachable, slow, corrupt).

    Raised by backend implementations; always caught at the
    :class:`~repro.cache.backend.FallbackBackend` seam and converted to
    local degradation — cache trouble may cost duplicate solves but must
    never stall or fail an audit.
    """


class ServiceError(ReproError):
    """The audit service refused or could not process a request."""


class JobQueueError(ServiceError):
    """A durable-queue operation was invalid (unknown job, stale lease)."""


class PropertyError(ReproError):
    """Malformed security-property specification (valid ways, monitors)."""


class SpecDslError(PropertyError):
    """An expression-way DSL string failed to parse, or a spec callable
    could not be traced into the DSL (it uses an operation the symbolic
    tracer does not model, so it cannot be serialized into a bundle)."""


class FrontendError(ReproError):
    """A design source could not be resolved by :func:`repro.frontend.load_design`.

    Carries the offending ``source``, a ``reason`` string and the list of
    ``candidates`` (known built-in design names, closest matches first) so
    CLIs and services can render one structured "unknown design" error.
    """

    def __init__(self, source, reason, candidates=()):
        self.source = str(source)
        self.reason = reason
        self.candidates = list(candidates)
        message = "cannot load design {!r}: {}".format(self.source, reason)
        if self.candidates:
            message += "\n  known designs: {}".format(
                ", ".join(self.candidates)
            )
        super().__init__(message)


class CorpusError(ReproError):
    """A corpus bundle, manifest or mutation request is malformed."""


class IftError(ReproError):
    """The static information-flow analysis failed (diverging fixpoint)."""


class HdlError(ReproError):
    """Verilog parsing or writing failure."""


class HdlSyntaxError(HdlError):
    """Syntax error while parsing structural Verilog."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        location = "" if line is None else " at line {}:{}".format(line, column)
        super().__init__(message + location)
