"""Design ingestion frontend: one entry point for every design source.

Everything that audits a design — CLI subcommands, the bench harness,
the audit service, the corpus runner — resolves its input through
:func:`load_design`, which accepts three kinds of source:

* a **built-in name** (``"mc8051-t800"``) from the bundled benchmark
  registry (:mod:`repro.frontend.builtins`),
* a ``*.design.json`` **bundle** (netlist + ValidWays spec + optional
  mutant provenance, see :mod:`repro.corpus.bundle`),
* a ``*.v`` **structural Verilog file** via the :mod:`repro.hdl`
  parser; a sidecar ``<stem>.spec.json`` (written by ``repro export``)
  restores the ValidWays spec, and the writer's ``// repro:`` pragmas
  restore net ids, register groups and probes.

Unknown sources raise one structured
:class:`~repro.errors.FrontendError` carrying the candidate list, so
every command reports resolution failures the same way.
"""

from __future__ import annotations

import difflib
import json
import os

from repro.errors import FrontendError
from repro.frontend.builtins import (
    BUILTIN_DESIGNS,
    build_builtin,
    builtin_names,
)

SPEC_SIDECAR_FORMAT = "repro-design-spec"
SPEC_SIDECAR_VERSION = 1

__all__ = [
    "BUILTIN_DESIGNS",
    "LoadedDesign",
    "build_builtin",
    "builtin_names",
    "design_names",
    "list_designs",
    "load_design",
    "load_spec_sidecar",
    "save_spec_sidecar",
    "spec_sidecar_path",
]


class LoadedDesign:
    """A resolved design: netlist + spec + where it came from.

    Iterable as ``(netlist, spec)`` so call sites keep the historical
    ``netlist, spec = load_design(source)`` unpacking.
    """

    __slots__ = ("netlist", "spec", "origin", "source", "provenance")

    def __init__(self, netlist, spec, origin, source, provenance=None):
        self.netlist = netlist
        self.spec = spec
        self.origin = origin  # "builtin" | "bundle" | "verilog"
        self.source = source
        self.provenance = provenance

    def __iter__(self):
        return iter((self.netlist, self.spec))

    def __repr__(self):
        return "LoadedDesign({!r} from {} {!r})".format(
            self.spec.name, self.origin, self.source
        )


def design_names():
    """Sorted built-in design names (the resolvable bare names)."""
    return builtin_names()


def load_design(source):
    """Resolve any design source to a :class:`LoadedDesign`.

    Resolution order: built-in name, then ``*.design.json`` bundle,
    then ``*.v`` Verilog file. Raises
    :class:`~repro.errors.FrontendError` for anything else.
    """
    if isinstance(source, LoadedDesign):
        return source
    text = str(source)
    if text in BUILTIN_DESIGNS:
        netlist, spec = build_builtin(text)
        return LoadedDesign(netlist, spec, "builtin", text)
    if text.endswith(".design.json"):
        return _load_bundle_file(text)
    if text.endswith(".v") or text.endswith(".sv"):
        return _load_verilog_file(text)
    if os.path.exists(text):
        raise FrontendError(
            text,
            "unsupported design file (expected *.design.json or *.v)",
        )
    raise FrontendError(
        text,
        "not a built-in design, bundle, or Verilog file",
        difflib.get_close_matches(text, builtin_names(), n=5, cutoff=0.3)
        or builtin_names(),
    )


def _load_bundle_file(path):
    from repro.corpus.bundle import load_bundle
    from repro.errors import CorpusError

    if not os.path.exists(path):
        raise FrontendError(path, "no such file")
    try:
        bundle = load_bundle(path)
    except CorpusError as exc:
        raise FrontendError(path, str(exc)) from exc
    return LoadedDesign(
        bundle.netlist,
        bundle.spec,
        "bundle",
        path,
        provenance=bundle.provenance,
    )


def _load_verilog_file(path):
    from repro.errors import HdlError
    from repro.hdl import parse_verilog

    if not os.path.exists(path):
        raise FrontendError(path, "no such file")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            netlist = parse_verilog(handle.read())
    except HdlError as exc:
        raise FrontendError(path, "Verilog import failed: {}".format(exc))
    spec = load_spec_sidecar(spec_sidecar_path(path), netlist=netlist)
    return LoadedDesign(netlist, spec, "verilog", path)


# ------------------------------------------------------------ spec sidecar


def spec_sidecar_path(verilog_path):
    """The ``<stem>.spec.json`` path next to a Verilog file."""
    stem, _ = os.path.splitext(str(verilog_path))
    return stem + ".spec.json"


def load_spec_sidecar(path, netlist=None):
    """Load a spec sidecar; a permissive empty spec when none exists.

    Without a sidecar the design still loads — lint's structural rules
    run fine — but there are no critical registers to audit, which the
    returned spec's ``notes`` say out loud.
    """
    from repro.corpus.bundle import spec_from_dict
    from repro.errors import CorpusError
    from repro.properties.valid_ways import DesignSpec

    if not os.path.exists(path):
        return DesignSpec(
            name="imported",
            critical={},
            notes=(
                "no spec sidecar found; write one (repro export emits "
                "it) to declare critical registers and their valid ways"
            ),
        )
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except ValueError as exc:
        raise FrontendError(
            path, "spec sidecar is not valid JSON: {}".format(exc)
        ) from exc
    if payload.get("format") != SPEC_SIDECAR_FORMAT:
        raise FrontendError(
            path,
            "not a spec sidecar (format={!r}, expected {!r})".format(
                payload.get("format"), SPEC_SIDECAR_FORMAT
            ),
        )
    try:
        spec = spec_from_dict(payload["spec"])
    except (CorpusError, KeyError) as exc:
        raise FrontendError(
            path, "malformed spec sidecar: {}".format(exc)
        ) from exc
    if netlist is not None:
        for register in spec.critical:
            if register not in netlist.registers:
                raise FrontendError(
                    path,
                    "spec names critical register {!r} but the design "
                    "has no such register group (registers: {})".format(
                        register, ", ".join(sorted(netlist.registers))
                    ),
                )
    return spec


def save_spec_sidecar(path, spec):
    """Write a spec sidecar JSON file for a Verilog export."""
    from repro.corpus.bundle import spec_to_dict

    payload = {
        "format": SPEC_SIDECAR_FORMAT,
        "version": SPEC_SIDECAR_VERSION,
        "spec": spec_to_dict(spec),
    }
    with open(path, "w", encoding="ascii") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


# ----------------------------------------------------------------- listing


def list_designs():
    """Provenance rows for ``repro list-designs``: (name, origin, info)."""
    rows = []
    for name in builtin_names():
        _netlist, spec = build_builtin(name)
        if spec.trojan is None:
            info = "clean ({} critical registers)".format(len(spec.critical))
        else:
            info = "{} — {}".format(spec.trojan.name, spec.trojan.payload)
        rows.append((name, "builtin", info))
    return rows
