"""The bundled benchmark designs, as a registry.

This table used to live inside ``cli.py`` as a hard-coded ``DESIGNS``
dict; every consumer (CLI subcommands, the bench harness, the audit
service, tests) now reaches it through :mod:`repro.frontend` so that
built-in names, ``.v`` files and ``.design.json`` bundles are all the
same kind of thing: a source :func:`repro.frontend.load_design` can
resolve.
"""

from __future__ import annotations

from repro.designs import build_aes, build_mc8051, build_risc
from repro.designs.router import build_router, router_redirect_trojan
from repro.designs.trojans import (
    aes_t700,
    aes_t800,
    aes_t1200,
    mc8051_t400,
    mc8051_t700,
    mc8051_t800,
    risc_figure1,
    risc_t100,
    risc_t300,
    risc_t400,
)
from repro.errors import FrontendError

BUILTIN_DESIGNS = {
    "risc": build_risc,
    "mc8051": build_mc8051,
    "aes": build_aes,
    "router": build_router,
    "risc-t100": risc_t100,
    "risc-t300": risc_t300,
    "risc-t400": risc_t400,
    "risc-fig1": risc_figure1,
    "mc8051-t400": mc8051_t400,
    "mc8051-t700": mc8051_t700,
    "mc8051-t800": mc8051_t800,
    "aes-t700": aes_t700,
    "aes-t800": aes_t800,
    "aes-t1200": aes_t1200,
    "router-redirect": router_redirect_trojan,
}


def builtin_names():
    """Sorted names of the bundled designs."""
    return sorted(BUILTIN_DESIGNS)


def build_builtin(name):
    """Construct a bundled design; returns ``(netlist, spec)``."""
    try:
        factory = BUILTIN_DESIGNS[name]
    except KeyError:
        raise FrontendError(
            name, "no built-in design by that name", builtin_names()
        ) from None
    return factory()
