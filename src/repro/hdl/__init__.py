"""Structural Verilog interchange: writer, lexer/parser, elaborator."""

from repro.hdl.elaborate import elaborate, parse_verilog
from repro.hdl.parser import parse
from repro.hdl.writer import write_verilog

__all__ = ["elaborate", "parse_verilog", "parse", "write_verilog"]
