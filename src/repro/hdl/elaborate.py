"""Elaboration: lower a parsed Verilog module onto the netlist IR.

Produces a :class:`~repro.netlist.netlist.Netlist` that simulates
identically to the source (round-trip tested against the writer). Register
*grouping* is a netlist-level convenience that plain Verilog does not
carry; pass ``register_groups`` (name -> list of flop q signal refs, e.g.
``{"counter": ["n5", "n6"]}``) to restore it after import.
"""

from __future__ import annotations

import re

from repro.errors import HdlError
from repro.hdl import parser as ast
from repro.netlist.cells import Kind
from repro.netlist.netlist import Netlist

_NET_ID = re.compile(r"^n\d+$")

_GATE_KINDS = {
    "and": Kind.AND,
    "or": Kind.OR,
    "nand": Kind.NAND,
    "nor": Kind.NOR,
    "xor": Kind.XOR,
    "xnor": Kind.XNOR,
    "not": Kind.NOT,
    "buf": Kind.BUF,
}


class _Elaborator:
    def __init__(self, module, clock):
        self.module = module
        self.netlist = Netlist(module.name)
        self.signals = {}  # name -> list of net ids
        self.directions = {}
        self.clock = clock
        self.flop_inits = {}  # net -> 0/1
        self.pending_flops = []  # (q net, d net)
        self.output_names = []
        # preserve-ids mode, driven by the writer's "// repro:" pragmas:
        # net ids come from the source verbatim instead of being
        # reallocated, so re-import is fingerprint-identical
        self.pragmas = {"input": {}, "output": {}, "register": {},
                        "probe": {}}
        self.preserve = False
        for pragma in module.pragmas:
            if pragma.kind == "nets":
                self.preserve = True
                self.netlist.reserve_nets(pragma.values[0])
            else:
                self.pragmas[pragma.kind][pragma.name] = pragma.values
        if not self.preserve and any(self.pragmas.values()):
            raise HdlError(
                "repro pragmas present without a 'repro:nets' pragma"
            )

    def run(self):
        decls = [i for i in self.module.items if isinstance(i, ast.Decl)]
        clock = self.clock or self._guess_clock()
        for decl in decls:
            for name in decl.names:
                if name == clock:
                    continue
                if name in self.signals:
                    raise HdlError("duplicate signal {!r}".format(name))
                nets = self._declare(decl, name)
                if nets is None:
                    continue  # preserve mode n<id> names resolve lazily
                self.signals[name] = nets
                self.directions[name] = decl.direction
                if decl.direction == "output":
                    self.output_names.append(name)

        for item in self.module.items:
            if isinstance(item, ast.InitialAssign):
                net = self._ref_net(item.target)
                self.flop_inits[net] = item.value.value & 1

        for item in self.module.items:
            if isinstance(item, ast.Instance):
                self._instance(item)
            elif isinstance(item, ast.Assign):
                self._assign(item)
            elif isinstance(item, ast.AlwaysFf):
                self.pending_flops.append(
                    (self._ref_net(item.target), self._operand_net(item.source))
                )

        for q_net, d_net in self.pending_flops:
            self.netlist.add_flop(
                d_net, q=q_net, init=self.flop_inits.get(q_net, 0)
            )

        for name in self.output_names:
            self.netlist.add_output(name, self.signals[name])

        if self.preserve:
            for name, idxs in self.pragmas["register"].items():
                self.netlist.add_register(name, idxs)
            for name, nets in self.pragmas["probe"].items():
                self.netlist.add_probe(name, nets)
        return self.netlist

    def _declare(self, decl, name):
        """Resolve one declared name to its net ids (or defer)."""
        if not self.preserve:
            if decl.direction == "input":
                return self.netlist.add_input(name, decl.width)
            return self.netlist.new_nets(decl.width, name)
        if decl.direction in ("input", "output"):
            try:
                nets = self.pragmas[decl.direction][name]
            except KeyError:
                raise HdlError(
                    "preserve-mode import: no 'repro:{}' pragma for "
                    "port {!r}".format(decl.direction, name)
                ) from None
            if len(nets) != decl.width:
                raise HdlError(
                    "port {!r}: pragma binds {} nets, declared width "
                    "is {}".format(name, len(nets), decl.width)
                )
            if decl.direction == "input":
                self.netlist.bind_input(name, nets)
            return list(nets)
        # wire/reg declarations name nets by id (n<k>); they resolve
        # through _net_id_name on use and allocate nothing
        if _NET_ID.match(name):
            return None
        raise HdlError(
            "preserve-mode import: non-port signal {!r} is not a net "
            "id".format(name)
        )

    def _net_id_name(self, name):
        """In preserve mode, ``n<k>`` identifiers *are* net ids."""
        match = _NET_ID.match(name)
        if match is None:
            return None
        net = int(name[1:])
        if net >= self.netlist.num_nets:
            raise HdlError(
                "net id {!r} outside the pragma-declared pool".format(name)
            )
        return net

    def _guess_clock(self):
        for item in self.module.items:
            if isinstance(item, ast.AlwaysFf):
                return item.clock
        return "clk"

    def _ref_net(self, ref):
        try:
            nets = self.signals[ref.name]
        except KeyError:
            if self.preserve:
                net = self._net_id_name(ref.name)
                if net is not None and ref.bit in (None, 0):
                    return net
            raise HdlError("undeclared signal {!r}".format(ref.name)) from None
        bit = ref.bit if ref.bit is not None else 0
        if ref.bit is None and len(nets) != 1:
            raise HdlError(
                "vector {!r} used without a bit select".format(ref.name)
            )
        if not 0 <= bit < len(nets):
            raise HdlError(
                "bit {} out of range for {!r}".format(bit, ref.name)
            )
        return nets[bit]

    def _operand_net(self, operand):
        if isinstance(operand, ast.Const):
            if operand.value not in (0, 1) or operand.width != 1:
                raise HdlError(
                    "only 1-bit constants allowed in expressions"
                )
            return operand.value
        if isinstance(operand, ast.Ref):
            return self._ref_net(operand)
        raise HdlError("unsupported operand {!r}".format(operand))

    def _instance(self, item):
        kind = _GATE_KINDS[item.gate]
        out = self._ref_net(item.operands[0])
        ins = [self._operand_net(op) for op in item.operands[1:]]
        self.netlist.add_cell(kind, ins, output=out)

    def _assign(self, item):
        if (
            self.preserve
            and self.directions.get(item.target.name) == "output"
        ):
            # output-port assigns restate the 'repro:output' pragma
            # binding for external tools; the pragma already carries the
            # nets, so no buffer cell is inserted on re-import
            return
        out = self._ref_net(item.target)
        expr = item.expr
        if isinstance(expr, (ast.Ref, ast.Const)):
            self.netlist.add_cell(
                Kind.BUF, (self._operand_net(expr),), output=out
            )
        elif isinstance(expr, ast.Unary):
            self.netlist.add_cell(
                Kind.NOT, (self._operand_net(expr.operand),), output=out
            )
        elif isinstance(expr, ast.Binary):
            kind = {"&": Kind.AND, "|": Kind.OR, "^": Kind.XOR}[expr.op]
            self.netlist.add_cell(
                kind,
                tuple(self._operand_net(op) for op in expr.operands),
                output=out,
            )
        elif isinstance(expr, ast.Ternary):
            self.netlist.add_cell(
                Kind.MUX,
                (
                    self._operand_net(expr.condition),
                    self._operand_net(expr.if_false),
                    self._operand_net(expr.if_true),
                ),
                output=out,
            )
        else:
            raise HdlError("unsupported expression {!r}".format(expr))


def elaborate(module, clock=None, register_groups=None):
    """Lower a :class:`~repro.hdl.parser.ModuleAst` to a netlist.

    ``register_groups`` maps group names to lists of *signal names* from
    the Verilog source (e.g. ``{"counter": ["n5", "n6"]}``); each listed
    signal must be a 1-bit reg driven by an always block.
    """
    elaborator = _Elaborator(module, clock)
    netlist = elaborator.run()
    if register_groups:
        q_to_flop = {
            flop.q: index for index, flop in enumerate(netlist.flops)
        }
        for name, refs in register_groups.items():
            indexes = []
            for ref in refs:
                if isinstance(ref, int):
                    net = ref
                else:
                    nets = elaborator.signals.get(ref)
                    if nets is None and _NET_ID.match(ref):
                        # preserve-mode sources name flop qs by net id
                        nets = [int(ref[1:])]
                    if not nets or len(nets) != 1:
                        raise HdlError(
                            "register group {!r}: no scalar signal "
                            "{!r}".format(name, ref)
                        )
                    net = nets[0]
                if net not in q_to_flop:
                    raise HdlError(
                        "register group {!r}: {!r} is not a flop".format(
                            name, ref
                        )
                    )
                indexes.append(q_to_flop[net])
            if netlist.registers.get(name) == indexes:
                continue  # already restored by a repro:register pragma
            netlist.add_register(name, indexes)
    return netlist


def parse_verilog(text, clock=None, register_groups=None):
    """Parse + elaborate structural Verilog text into a netlist."""
    from repro.hdl.parser import parse

    return elaborate(
        parse(text), clock=clock, register_groups=register_groups
    )
