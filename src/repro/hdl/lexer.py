"""Tokenizer for the structural Verilog subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HdlSyntaxError

KEYWORDS = {
    "module", "endmodule", "input", "output", "wire", "reg", "assign",
    "always", "posedge", "initial", "begin", "end",
    "and", "or", "nand", "nor", "xor", "xnor", "not", "buf",
}

PUNCT = ["<=", "(", ")", "[", "]", ":", ";", ",", "=", "?", "@", "~", "&",
         "|", "^"]


@dataclass(frozen=True)
class Token:
    kind: str  # "id" | "number" | "sized" | keyword | punctuation
    text: str
    line: int
    column: int


def tokenize(text):
    """Tokenize Verilog source; returns a list of :class:`Token`."""
    tokens = []
    line = 1
    column = 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if text.startswith("//", i):
            end = text.find("\n", i)
            end = n if end == -1 else end
            comment = text[i + 2 : end].strip()
            # "// repro:" comments are structural pragmas the writer
            # emits so netlists re-import with their original net ids,
            # register groups and probes (see repro.hdl.writer); other
            # comments are skipped as before.
            if comment.startswith("repro:"):
                tokens.append(
                    Token("pragma", comment[len("repro:"):].strip(),
                          line, column)
                )
            i = end
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i)
            if end == -1:
                raise HdlSyntaxError("unterminated block comment", line, column)
            skipped = text[i : end + 2]
            line += skipped.count("\n")
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = word if word in KEYWORDS else "id"
            tokens.append(Token(kind, word, line, column))
            column += j - i
            i = j
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            # sized literal like 4'b1010 / 8'hff / 3'd5
            if j < n and text[j] == "'":
                k = j + 1
                if k < n and text[k] in "bdhBDH":
                    k += 1
                    while k < n and (text[k].isalnum() or text[k] == "_"):
                        k += 1
                    tokens.append(Token("sized", text[i:k], line, column))
                    column += k - i
                    i = k
                    continue
            tokens.append(Token("number", text[i:j], line, column))
            column += j - i
            i = j
            continue
        for punct in PUNCT:
            if text.startswith(punct, i):
                tokens.append(Token(punct, punct, line, column))
                column += len(punct)
                i += len(punct)
                break
        else:
            raise HdlSyntaxError(
                "unexpected character {!r}".format(ch), line, column
            )
    tokens.append(Token("eof", "", line, column))
    return tokens


def parse_sized_literal(text):
    """Decode ``4'b1010``-style literals; returns (width, value)."""
    width_text, _, rest = text.partition("'")
    base_char = rest[0].lower()
    digits = rest[1:].replace("_", "")
    base = {"b": 2, "d": 10, "h": 16}[base_char]
    return int(width_text), int(digits, base)
