"""Recursive-descent parser for the structural Verilog subset.

Grammar (the subset :mod:`repro.hdl.writer` emits, which covers flat
gate-level netlists as delivered by synthesis):

.. code-block:: text

    module      := "module" id "(" id ("," id)* ")" ";" item* "endmodule"
    item        := decl | instance | assign | always_ff | initial_block
                 | reg_comment
    decl        := ("input"|"output"|"wire"|"reg") range? id ("," id)* ";"
    range       := "[" number ":" number "]"
    instance    := gate id? "(" operand ("," operand)* ")" ";"
    assign      := "assign" lvalue "=" expr ";"
    expr        := ternary
    ternary     := unary ("?" unary ":" unary)?
    unary       := "~"? operand | operand (("&"|"|"|"^") operand)*
    operand     := id ("[" number "]")? | sized_literal
    always_ff   := "always" "@" "(" "posedge" id ")" lvalue "<=" operand ";"
    initial     := "initial" ("begin" init_stmt* "end" | init_stmt)
    init_stmt   := lvalue "=" sized_literal ";"

Produces a :class:`ModuleAst`; :mod:`repro.hdl.elaborate` lowers it onto
the netlist IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HdlSyntaxError
from repro.hdl.lexer import parse_sized_literal, tokenize

GATES = ("and", "or", "nand", "nor", "xor", "xnor", "not", "buf")


# ----------------------------------------------------------------- AST types


@dataclass
class Ref:
    """A signal reference: a scalar name or one bit of a vector."""

    name: str
    bit: int | None = None


@dataclass
class Const:
    width: int
    value: int


@dataclass
class Unary:
    op: str  # "~"
    operand: object


@dataclass
class Binary:
    op: str  # & | ^
    operands: list


@dataclass
class Ternary:
    condition: object
    if_true: object
    if_false: object


@dataclass
class Decl:
    direction: str  # input / output / wire / reg
    width: int
    names: list


@dataclass
class Instance:
    gate: str
    name: str
    operands: list  # first is the output


@dataclass
class Assign:
    target: Ref
    expr: object


@dataclass
class AlwaysFf:
    clock: str
    target: Ref
    source: object


@dataclass
class InitialAssign:
    target: Ref
    value: Const


@dataclass
class Pragma:
    """A ``// repro:`` structural pragma (see :mod:`repro.hdl.writer`).

    ``kind`` is one of ``nets`` (values = [pool size]), ``input`` /
    ``output`` / ``probe`` (name + net ids) or ``register`` (name + flop
    indexes).
    """

    kind: str
    name: str | None
    values: list


@dataclass
class ModuleAst:
    name: str
    ports: list
    items: list = field(default_factory=list)

    @property
    def pragmas(self):
        return [i for i in self.items if isinstance(i, Pragma)]


# ------------------------------------------------------------------- parser


class Parser:
    def __init__(self, text):
        self.tokens = tokenize(text)
        self.position = 0

    # token plumbing -------------------------------------------------------

    def peek(self):
        return self.tokens[self.position]

    def advance(self):
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect(self, kind):
        token = self.peek()
        if token.kind != kind:
            raise HdlSyntaxError(
                "expected {!r}, found {!r}".format(kind, token.text),
                token.line,
                token.column,
            )
        return self.advance()

    def accept(self, kind):
        if self.peek().kind == kind:
            return self.advance()
        return None

    # grammar --------------------------------------------------------------

    def parse_module(self):
        self.expect("module")
        name = self.expect("id").text
        self.expect("(")
        ports = [self.expect("id").text]
        while self.accept(","):
            ports.append(self.expect("id").text)
        self.expect(")")
        self.expect(";")
        module = ModuleAst(name=name, ports=ports)
        while self.peek().kind != "endmodule":
            item = self._item()
            if isinstance(item, list):
                module.items.extend(item)
            else:
                module.items.append(item)
        self.expect("endmodule")
        return module

    def _item(self):
        token = self.peek()
        if token.kind in ("input", "output", "wire", "reg"):
            return self._decl()
        if token.kind in GATES:
            return self._instance()
        if token.kind == "assign":
            return self._assign()
        if token.kind == "always":
            return self._always()
        if token.kind == "initial":
            return self._initial()
        if token.kind == "pragma":
            return self._pragma()
        raise HdlSyntaxError(
            "unexpected {!r}".format(token.text), token.line, token.column
        )

    def _decl(self):
        direction = self.advance().kind
        width = 1
        if self.accept("["):
            msb = int(self.expect("number").text)
            self.expect(":")
            lsb = int(self.expect("number").text)
            if lsb != 0:
                raise HdlSyntaxError("only [N:0] ranges supported")
            width = msb + 1
            self.expect("]")
        names = [self.expect("id").text]
        while self.accept(","):
            names.append(self.expect("id").text)
        self.expect(";")
        return Decl(direction, width, names)

    def _instance(self):
        gate = self.advance().kind
        name = ""
        token = self.accept("id")
        if token is not None:
            name = token.text
        self.expect("(")
        operands = [self._operand()]
        while self.accept(","):
            operands.append(self._operand())
        self.expect(")")
        self.expect(";")
        return Instance(gate, name, operands)

    def _assign(self):
        self.expect("assign")
        target = self._lvalue()
        self.expect("=")
        expr = self._expr()
        self.expect(";")
        return Assign(target, expr)

    def _always(self):
        self.expect("always")
        self.expect("@")
        self.expect("(")
        self.expect("posedge")
        clock = self.expect("id").text
        self.expect(")")
        target = self._lvalue()
        self.expect("<=")
        source = self._operand()
        self.expect(";")
        return AlwaysFf(clock, target, source)

    def _initial(self):
        self.expect("initial")
        items = []
        if self.accept("begin"):
            while not self.accept("end"):
                items.append(self._init_assign())
        else:
            items.append(self._init_assign())
        return items if len(items) != 1 else items[0]

    def _init_assign(self):
        target = self._lvalue()
        self.expect("=")
        literal = self.expect("sized")
        width, value = parse_sized_literal(literal.text)
        self.expect(";")
        return InitialAssign(target, Const(width, value))

    def _pragma(self):
        token = self.advance()
        text = token.text
        kind, _, rest = text.partition(" ")
        try:
            if kind == "nets":
                return Pragma("nets", None, [int(rest)])
            if kind in ("input", "output", "register", "probe"):
                name, sep, values = rest.partition("=")
                if not sep:
                    raise ValueError("missing '='")
                return Pragma(
                    kind, name.strip(), [int(v) for v in values.split()]
                )
        except ValueError as exc:
            raise HdlSyntaxError(
                "malformed repro pragma {!r}: {}".format(text, exc),
                token.line,
                token.column,
            ) from None
        raise HdlSyntaxError(
            "unknown repro pragma {!r}".format(text),
            token.line,
            token.column,
        )

    def _lvalue(self):
        name = self.expect("id").text
        bit = None
        if self.accept("["):
            bit = int(self.expect("number").text)
            self.expect("]")
        return Ref(name, bit)

    def _expr(self):
        first = self._unary()
        token = self.peek()
        if token.kind == "?":
            self.advance()
            if_true = self._unary()
            self.expect(":")
            if_false = self._unary()
            return Ternary(first, if_true, if_false)
        if token.kind in ("&", "|", "^"):
            op = token.kind
            operands = [first]
            while self.accept(op):
                operands.append(self._unary())
            return Binary(op, operands)
        return first

    def _unary(self):
        if self.accept("~"):
            return Unary("~", self._operand())
        return self._operand()

    def _operand(self):
        token = self.peek()
        if token.kind == "sized":
            self.advance()
            width, value = parse_sized_literal(token.text)
            return Const(width, value)
        return self._lvalue()


def parse(text):
    """Parse Verilog text into a :class:`ModuleAst`."""
    parser = Parser(text)
    module = parser.parse_module()
    parser.expect("eof")
    return module
