"""Structural Verilog writer.

Emits a netlist as a flat, synthesizable structural Verilog module:
primitive gate instances (``and``/``or``/...), ``assign`` ternaries for
muxes, one ``always @(posedge clk)`` block per flop, ``initial`` blocks
recording reset values, and named probe/register groupings as comments.
The emitted subset is exactly what :mod:`repro.hdl.parser` accepts, so
netlists round-trip (a property test in the suite).

This is the interchange artifact of the paper's flow: "assertions were
embedded into the respective designs and provided as input to the BMC
engine" — :func:`write_verilog` plus
:func:`repro.properties.sva.render_spec` reproduce those inputs for an
external commercial toolchain.
"""

from __future__ import annotations

import io

from repro.netlist.cells import Kind

_PRIMITIVES = {
    Kind.AND: "and",
    Kind.OR: "or",
    Kind.NAND: "nand",
    Kind.NOR: "nor",
    Kind.XOR: "xor",
    Kind.XNOR: "xnor",
    Kind.NOT: "not",
    Kind.BUF: "buf",
}


def _sanitize(name):
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if not text or text[0].isdigit():
        text = "s_" + text
    return text


def write_verilog(netlist, module_name=None, clock="clk"):
    """Render a netlist as structural Verilog text."""
    module_name = _sanitize(module_name or netlist.name)
    out = io.StringIO()

    def net_ref(net):
        if net == 0:
            return "1'b0"
        if net == 1:
            return "1'b1"
        return "n{}".format(net)

    ports = [clock]
    decls = ["  input {};".format(clock)]
    connect = []
    for name, nets in netlist.inputs.items():
        pname = _sanitize(name)
        ports.append(pname)
        if len(nets) == 1:
            decls.append("  input {};".format(pname))
            connect.append("  assign n{} = {};".format(nets[0], pname))
        else:
            decls.append(
                "  input [{}:0] {};".format(len(nets) - 1, pname)
            )
            for bit, net in enumerate(nets):
                connect.append(
                    "  assign n{} = {}[{}];".format(net, pname, bit)
                )
    for name, nets in netlist.outputs.items():
        pname = _sanitize(name)
        ports.append(pname)
        if len(nets) == 1:
            decls.append("  output {};".format(pname))
            connect.append("  assign {} = {};".format(pname, net_ref(nets[0])))
        else:
            decls.append(
                "  output [{}:0] {};".format(len(nets) - 1, pname)
            )
            for bit, net in enumerate(nets):
                connect.append(
                    "  assign {}[{}] = {};".format(pname, bit, net_ref(net))
                )

    out.write("module {}({});\n".format(module_name, ", ".join(ports)))
    for line in decls:
        out.write(line + "\n")

    wires = []
    for nets in netlist.inputs.values():
        wires.extend(nets)
    wires.extend(cell.output for cell in netlist.cells)
    if wires:
        out.write(
            "  wire {};\n".format(", ".join("n{}".format(n) for n in wires))
        )
    regs = [flop.q for flop in netlist.flops]
    if regs:
        out.write(
            "  reg {};\n".format(", ".join("n{}".format(n) for n in regs))
        )
    for line in connect:
        out.write(line + "\n")

    for name, idxs in netlist.registers.items():
        out.write(
            "  // register {}: {}\n".format(
                _sanitize(name),
                ", ".join("n{}".format(netlist.flops[i].q) for i in idxs),
            )
        )

    for index, cell in enumerate(netlist.cells):
        if cell.kind is Kind.MUX:
            sel, d0, d1 = cell.inputs
            out.write(
                "  assign {} = {} ? {} : {};\n".format(
                    net_ref(cell.output),
                    net_ref(sel),
                    net_ref(d1),
                    net_ref(d0),
                )
            )
        else:
            out.write(
                "  {} g{}({}, {});\n".format(
                    _PRIMITIVES[cell.kind],
                    index,
                    net_ref(cell.output),
                    ", ".join(net_ref(n) for n in cell.inputs),
                )
            )

    for flop in netlist.flops:
        out.write(
            "  always @(posedge {}) {} <= {};\n".format(
                clock, net_ref(flop.q), net_ref(flop.d)
            )
        )
    if netlist.flops:
        out.write("  initial begin\n")
        for flop in netlist.flops:
            out.write(
                "    {} = 1'b{};\n".format(net_ref(flop.q), flop.init)
            )
        out.write("  end\n")
    out.write("endmodule\n")
    return out.getvalue()
