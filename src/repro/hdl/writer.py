"""Structural Verilog writer.

Emits a netlist as a flat, synthesizable structural Verilog module:
primitive gate instances (``and``/``or``/...), ``assign`` ternaries for
muxes, one ``always @(posedge clk)`` block per flop, and ``initial``
blocks recording reset values. The emitted subset is exactly what
:mod:`repro.hdl.parser` accepts, so netlists round-trip (a property
test in the suite).

By default the writer also emits ``// repro:`` *structural pragmas* —
the net-pool size, each port's net ids, register groups (flop indexes)
and probes. Plain Verilog cannot carry net identity, register grouping
or probe names; the pragmas let :mod:`repro.hdl.elaborate` re-import
the file onto the **original net ids**, making
``parse_verilog(write_verilog(netlist))`` structurally
fingerprint-identical, not merely behaviorally equivalent. They are
comments, so every other Verilog tool ignores them. Pass
``pragmas=False`` for a pragma-free file (round-trips behaviorally,
with fresh net ids and per-bit input alias assigns).

This is the interchange artifact of the paper's flow: "assertions were
embedded into the respective designs and provided as input to the BMC
engine" — :func:`write_verilog` plus
:func:`repro.properties.sva.render_spec` reproduce those inputs for an
external commercial toolchain.
"""

from __future__ import annotations

import io
import re

from repro.netlist.cells import Kind

_PRIMITIVES = {
    Kind.AND: "and",
    Kind.OR: "or",
    Kind.NAND: "nand",
    Kind.NOR: "nor",
    Kind.XOR: "xor",
    Kind.XNOR: "xnor",
    Kind.NOT: "not",
    Kind.BUF: "buf",
}

_NET_ID_NAME = re.compile(r"^n\d+$")


def _sanitize(name):
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if not text or text[0].isdigit():
        text = "s_" + text
    return text


def write_verilog(netlist, module_name=None, clock="clk", pragmas=True):
    """Render a netlist as structural Verilog text."""
    module_name = _sanitize(module_name or netlist.name)

    port_names = {}
    for name in list(netlist.inputs) + list(netlist.outputs):
        pname = _sanitize(name)
        # a port literally named like a net id would collide with the
        # n<id> namespace the body uses; so would two ports sanitizing
        # to the same identifier
        if _NET_ID_NAME.match(pname) or pname in port_names.values():
            pname = "p_" + pname
        port_names[name] = pname

    # pragma mode references input nets through their port names (valid
    # Verilog, no alias assigns, and the port name survives re-import);
    # legacy mode wires ports to n<id> aliases instead
    input_ref = {}
    if pragmas:
        for name, nets in netlist.inputs.items():
            pname = port_names[name]
            for bit, net in enumerate(nets):
                if len(nets) == 1:
                    input_ref[net] = pname
                else:
                    input_ref[net] = "{}[{}]".format(pname, bit)

    def net_ref(net):
        if net == 0:
            return "1'b0"
        if net == 1:
            return "1'b1"
        if net in input_ref:
            return input_ref[net]
        return "n{}".format(net)

    out = io.StringIO()
    ports = [clock]
    decls = ["  input {};".format(clock)]
    connect = []
    for name, nets in netlist.inputs.items():
        pname = port_names[name]
        ports.append(pname)
        if len(nets) == 1:
            decls.append("  input {};".format(pname))
        else:
            decls.append(
                "  input [{}:0] {};".format(len(nets) - 1, pname)
            )
        if not pragmas:
            for bit, net in enumerate(nets):
                if len(nets) == 1:
                    connect.append(
                        "  assign n{} = {};".format(net, pname)
                    )
                else:
                    connect.append(
                        "  assign n{} = {}[{}];".format(net, pname, bit)
                    )
    for name, nets in netlist.outputs.items():
        pname = port_names[name]
        ports.append(pname)
        if len(nets) == 1:
            decls.append("  output {};".format(pname))
            connect.append(
                "  assign {} = {};".format(pname, net_ref(nets[0]))
            )
        else:
            decls.append(
                "  output [{}:0] {};".format(len(nets) - 1, pname)
            )
            for bit, net in enumerate(nets):
                connect.append(
                    "  assign {}[{}] = {};".format(pname, bit, net_ref(net))
                )

    out.write("module {}({});\n".format(module_name, ", ".join(ports)))
    for line in decls:
        out.write(line + "\n")

    if pragmas:
        out.write("  // repro:nets {}\n".format(netlist.num_nets))
        for name, nets in netlist.inputs.items():
            out.write(
                "  // repro:input {} = {}\n".format(
                    port_names[name], " ".join(str(n) for n in nets)
                )
            )
        for name, nets in netlist.outputs.items():
            out.write(
                "  // repro:output {} = {}\n".format(
                    port_names[name], " ".join(str(n) for n in nets)
                )
            )
        for name, idxs in netlist.registers.items():
            out.write(
                "  // repro:register {} = {}\n".format(
                    _sanitize(name), " ".join(str(i) for i in idxs)
                )
            )
        for name, nets in netlist.probes.items():
            out.write(
                "  // repro:probe {} = {}\n".format(
                    _sanitize(name), " ".join(str(n) for n in nets)
                )
            )

    wires = []
    if not pragmas:
        for nets in netlist.inputs.values():
            wires.extend(nets)
    wires.extend(cell.output for cell in netlist.cells)
    if wires:
        out.write(
            "  wire {};\n".format(", ".join("n{}".format(n) for n in wires))
        )
    regs = [flop.q for flop in netlist.flops]
    if regs:
        out.write(
            "  reg {};\n".format(", ".join("n{}".format(n) for n in regs))
        )
    for line in connect:
        out.write(line + "\n")

    if not pragmas:
        for name, idxs in netlist.registers.items():
            out.write(
                "  // register {}: {}\n".format(
                    _sanitize(name),
                    ", ".join(
                        "n{}".format(netlist.flops[i].q) for i in idxs
                    ),
                )
            )

    for index, cell in enumerate(netlist.cells):
        if cell.kind is Kind.MUX:
            sel, d0, d1 = cell.inputs
            out.write(
                "  assign {} = {} ? {} : {};\n".format(
                    net_ref(cell.output),
                    net_ref(sel),
                    net_ref(d1),
                    net_ref(d0),
                )
            )
        else:
            out.write(
                "  {} g{}({}, {});\n".format(
                    _PRIMITIVES[cell.kind],
                    index,
                    net_ref(cell.output),
                    ", ".join(net_ref(n) for n in cell.inputs),
                )
            )

    for flop in netlist.flops:
        out.write(
            "  always @(posedge {}) n{} <= {};\n".format(
                clock, flop.q, net_ref(flop.d)
            )
        )
    if netlist.flops:
        out.write("  initial begin\n")
        for flop in netlist.flops:
            out.write(
                "    n{} = 1'b{};\n".format(flop.q, flop.init)
            )
        out.write("  end\n")
    out.write("endmodule\n")
    return out.getvalue()
