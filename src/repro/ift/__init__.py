"""Solver-free static information-flow taint analysis (ROADMAP item 4).

The portfolio's semantic complement to the Eq. 2 corruption check: taint
every net that feeds a critical register's write port without being in
the documented valid-way cone, propagate through the gate-level netlist
to a fixpoint (combinational sweep + sequential transfer across
register boundaries), and report taint reaching the critical register
itself, primary outputs, or other registers' write enables. Zero SAT
calls; sub-second per design; findings fuse into
:class:`~repro.core.report.DetectionReport` as ``ift_evidence``.

Public surface::

    analyze_design(netlist, spec, design=...)  -> IftReport
    derive_sources(netlist, spec, register, analysis) -> TaintSources
    propagate(netlist, sources)                -> TaintResult
    to_sarif / write_sarif / merged_sarif      -> SARIF 2.1.0
"""

from repro.ift.analyze import IftConfig, analyze_design
from repro.ift.engine import TaintResult, propagate, shortest_taint_path
from repro.ift.findings import (
    IFT_RULES,
    IftFinding,
    IftReport,
    RegisterIftStats,
)
from repro.ift.lattice import MAYBE, TAINTED, UNTAINTED, join, weaken
from repro.ift.sarif import merged_sarif, to_sarif, write_sarif
from repro.ift.sources import TaintSources, derive_sources

__all__ = [
    "IFT_RULES",
    "IftConfig",
    "IftFinding",
    "IftReport",
    "MAYBE",
    "RegisterIftStats",
    "TAINTED",
    "TaintResult",
    "TaintSources",
    "UNTAINTED",
    "analyze_design",
    "derive_sources",
    "join",
    "merged_sarif",
    "propagate",
    "shortest_taint_path",
    "to_sarif",
    "weaken",
    "write_sarif",
]
