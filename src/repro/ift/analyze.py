"""Top-level IFT screen: sources -> fixpoint -> sink findings.

:func:`analyze_design` screens every critical register of a design: it
derives the register's undocumented taint sources from the ValidWays
spec (:mod:`repro.ift.sources`), runs the forward fixpoint
(:mod:`repro.ift.engine`), and checks three sink families:

* the critical register's own D pins (``taint-reaches-critical``,
  ``suspicious``) — an undocumented influence can steer the register's
  next value, possibly without ever corrupting it in a way Eq. 2's
  bounded check observes;
* primary outputs (``taint-reaches-output``, ``warn``) — the classic
  leakage channel;
* other registers' write-enable selects (``taint-reaches-enable``,
  ``warn``) — undocumented control over neighbouring state.

Every finding carries the shortest taint path (net names, source to
sink) as evidence. A register whose documented support covers its whole
write-port support contributes no sources, so clean designs come back
with zero findings of any severity — there is nothing to weigh or
threshold.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.ift.engine import propagate, shortest_taint_path
from repro.ift.findings import (
    IftReport,
    RegisterIftStats,
    make_finding,
)
from repro.ift.lattice import MAYBE, level_name
from repro.ift.sources import derive_sources
from repro.lint.analysis import DesignAnalysis
from repro.netlist.traversal import fanout_map, topological_cells
from repro.obs.tracer import get_tracer

# evidence lists are capped so findings stay readable and reports stay
# small; the caps are recorded in the evidence itself when they bite
_MAX_EVIDENCE_NETS = 12


@dataclass(frozen=True)
class IftConfig:
    """Tuning knobs of the IFT screen.

    ``weak_selects`` keeps the three-level lattice semantics (select
    taint demotes to ``maybe``); it exists as a knob so the conservative
    two-level reading — select taint propagates at full strength — stays
    one flag away for experiments. Both settings flag the same
    registers (the criterion is ``>= maybe``); only the reported level
    differs.
    """

    weak_selects: bool = True


def _names(netlist: Any, nets: Any) -> list:
    return [netlist.net_name(net) for net in nets]


def _capped(names: list) -> list:
    return names[:_MAX_EVIDENCE_NETS]


def analyze_design(
    netlist: Any,
    spec: Any,
    design: str = "",
    config: "IftConfig | None" = None,
    analysis: "DesignAnalysis | None" = None,
) -> IftReport:
    """Run the static IFT screen over every critical register."""
    if config is None:
        config = IftConfig()
    started = time.perf_counter()
    tracer = get_tracer()
    if analysis is None:
        analysis = DesignAnalysis(netlist, spec)
    report = IftReport(design=design)
    fanout = fanout_map(netlist)
    order = topological_cells(netlist)
    with tracer.span("ift", design=design) as span:
        for register in sorted(spec.critical):
            _screen_register(
                netlist,
                spec,
                design,
                register,
                analysis,
                fanout,
                order,
                config,
                report,
                tracer,
            )
        span["findings"] = len(report.findings)
    report.elapsed = time.perf_counter() - started
    return report


def _screen_register(
    netlist: Any,
    spec: Any,
    design: str,
    register: str,
    analysis: Any,
    fanout: Any,
    order: Any,
    config: IftConfig,
    report: IftReport,
    tracer: Any,
) -> None:
    with tracer.span("ift.register", register=register) as span:
        sources = derive_sources(netlist, spec, register, analysis)
        tracer.metrics.counter("ift.sources").inc(len(sources.sources))
        stats = RegisterIftStats(
            register=register, num_sources=len(sources.sources)
        )
        report.register_stats[register] = stats
        span["sources"] = len(sources.sources)
        if sources.is_clean:
            return
        result = propagate(
            netlist,
            sources.sources,
            fanout=fanout,
            order=order,
            weak_selects=config.weak_selects,
        )
        stats.rounds = result.rounds
        stats.round_limit = result.round_limit
        stats.reach = len(result.reach)
        span["rounds"] = result.rounds
        base_evidence = {
            "sources": _capped(_names(netlist, sources.sources)),
            "num_sources": len(sources.sources),
            "anchors": sources.anchor_names,
            "rounds": result.rounds,
        }
        before = len(report.findings)
        _check_critical(
            netlist, design, register, sources, result, fanout,
            base_evidence, report,
        )
        _check_outputs(
            netlist, design, register, sources, result, fanout,
            base_evidence, report,
        )
        _check_enables(
            netlist, design, register, sources, result, fanout,
            analysis, base_evidence, report,
        )
        added = len(report.findings) - before
        tracer.metrics.counter("ift.findings").inc(added)
        span["findings"] = added


def _path_evidence(
    netlist: Any, sources: Any, sinks: Any, result: Any, fanout: Any
) -> "dict[str, Any]":
    path = shortest_taint_path(
        netlist, sources.sources, sinks, result, fanout=fanout
    )
    return {
        "taint_path": _names(netlist, path),
        "path_length": len(path),
    }


def _check_critical(
    netlist: Any,
    design: str,
    register: str,
    sources: Any,
    result: Any,
    fanout: Any,
    base_evidence: dict,
    report: IftReport,
) -> None:
    d_nets = netlist.register_d_nets(register)
    level = result.max_level(d_nets)
    if level < MAYBE:
        return
    tainted = [net for net in d_nets if result.level(net) >= MAYBE]
    evidence = dict(base_evidence)
    evidence["taint_level"] = level_name(level)
    evidence["tainted_bits"] = len(tainted)
    evidence.update(
        _path_evidence(netlist, sources, tainted, result, fanout)
    )
    report.findings.append(
        make_finding(
            "taint-reaches-critical",
            "{} undocumented source net(s) taint the D pins of "
            "critical register {!r} (level {}, {}/{} bits)".format(
                len(sources.sources),
                register,
                level_name(level),
                len(tainted),
                len(d_nets),
            ),
            design,
            register,
            nets=tainted[:_MAX_EVIDENCE_NETS],
            net_names=_capped(_names(netlist, tainted)),
            evidence=evidence,
        )
    )


def _check_outputs(
    netlist: Any,
    design: str,
    register: str,
    sources: Any,
    result: Any,
    fanout: Any,
    base_evidence: dict,
    report: IftReport,
) -> None:
    ports = []
    tainted_nets: list[int] = []
    for name in sorted(netlist.outputs):
        nets = netlist.outputs[name]
        hit = [net for net in nets if result.level(net) >= MAYBE]
        if hit:
            ports.append(name)
            tainted_nets.extend(hit)
    if not ports:
        return
    evidence = dict(base_evidence)
    evidence["ports"] = ports
    evidence["taint_level"] = level_name(result.max_level(tainted_nets))
    evidence.update(
        _path_evidence(netlist, sources, tainted_nets, result, fanout)
    )
    report.findings.append(
        make_finding(
            "taint-reaches-output",
            "taint from undocumented sources of {!r} reaches output "
            "port(s) {}".format(register, ", ".join(ports)),
            design,
            register,
            nets=tainted_nets[:_MAX_EVIDENCE_NETS],
            net_names=_capped(_names(netlist, tainted_nets)),
            evidence=evidence,
        )
    )


def _check_enables(
    netlist: Any,
    design: str,
    register: str,
    sources: Any,
    result: Any,
    fanout: Any,
    analysis: Any,
    base_evidence: dict,
    report: IftReport,
) -> None:
    affected = []
    tainted_nets: list[int] = []
    for other in sorted(netlist.registers):
        if other == register:
            continue
        selects = analysis.mux_tree(other).select_nets
        hit = [net for net in selects if result.level(net) >= MAYBE]
        if hit:
            affected.append(other)
            tainted_nets.extend(hit)
    if not affected:
        return
    evidence = dict(base_evidence)
    evidence["registers"] = affected
    evidence["taint_level"] = level_name(result.max_level(tainted_nets))
    evidence.update(
        _path_evidence(netlist, sources, tainted_nets, result, fanout)
    )
    report.findings.append(
        make_finding(
            "taint-reaches-enable",
            "taint from undocumented sources of {!r} reaches the "
            "write-enable logic of register(s) {}".format(
                register, ", ".join(affected)
            ),
            design,
            register,
            nets=tainted_nets[:_MAX_EVIDENCE_NETS],
            net_names=_capped(_names(netlist, tainted_nets)),
            evidence=evidence,
        )
    )
