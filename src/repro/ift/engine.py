"""Forward dataflow fixpoint engine over the gate-level netlist.

Taint propagates from source nets through the combinational graph and
across register boundaries until nothing changes:

* a plain gate joins the taint of its inputs — any tainted input can
  flip the output;
* a ``MUX`` joins its **data** arms at full strength and its **select**
  at :func:`~repro.ift.lattice.weaken`-ed strength (control-only
  influence is ``MAYBE``, see the lattice module);
* a flop transfers its D taint to its Q at the round boundary, which is
  the sequential step that lets taint cross pipeline stages and close
  register-only cycles.

Each *round* is one full combinational sweep in topological order
followed by one flop transfer. The sweep itself is a complete forward
pass, so a round moves taint across exactly one register boundary;
levels only increase (the lattice is a finite join-semilattice and every
transfer function is monotone), hence the fixpoint arrives within
``2 * |flops in reach| + 4`` rounds — each flop's taint can rise at
most twice (untainted -> maybe -> tainted), a rise propagates to the
next stage one round later, and the constant covers the initial comb
sweep plus the final no-change round. The engine asserts that bound
(:data:`round_limit`) and raises :class:`~repro.errors.IftError` if it
is ever exceeded, so non-termination is impossible by construction; the
actual ``rounds`` count is reported for the termination tests.

Everything is restricted to the forward-reachable slice of the sources
(``fanout_cone`` through flops): on a design whose spec documents all
write-port sources there are no taint sources, the reach is empty and
the engine is a no-op. Zero solver calls anywhere — this is the
portfolio's cheap static modality.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import IftError
from repro.ift.lattice import MAYBE, TAINTED, UNTAINTED, Level, join, weaken
from repro.netlist.cells import Kind
from repro.netlist.traversal import fanout_cone, fanout_map, topological_cells


@dataclass
class TaintResult:
    """Fixpoint of one propagation: taint map plus engine accounting."""

    taint: dict = field(default_factory=dict)  # net id -> Level (sparse)
    rounds: int = 0
    round_limit: int = 0
    reach: frozenset = frozenset()  # forward-reachable net set

    def level(self, net: int) -> Level:
        """Taint level of a net (UNTAINTED when never touched)."""
        return self.taint.get(net, UNTAINTED)

    def max_level(self, nets: Iterable[int]) -> Level:
        """Join of the taint levels of several nets."""
        out = UNTAINTED
        for net in nets:
            level = self.taint.get(net, UNTAINTED)
            if level > out:
                out = level
                if out == TAINTED:
                    break
        return out


def _cell_taint(cell: Any, taint: dict, weak_selects: bool) -> Level:
    """Transfer function of one combinational cell."""
    ins = cell.inputs
    if cell.kind is Kind.MUX:
        sel, d0, d1 = ins
        level = join(
            taint.get(d0, UNTAINTED), taint.get(d1, UNTAINTED)
        )
        sel_level = taint.get(sel, UNTAINTED)
        if weak_selects:
            sel_level = weaken(sel_level)
        return join(level, sel_level)
    out = UNTAINTED
    for net in ins:
        level = taint.get(net, UNTAINTED)
        if level > out:
            out = level
            if out == TAINTED:
                break
    return out


def propagate(
    netlist: Any,
    sources: Iterable[int],
    fanout: Any = None,
    order: Any = None,
    weak_selects: bool = True,
) -> TaintResult:
    """Run taint from ``sources`` to fixpoint; returns the taint map.

    ``fanout``/``order`` accept precomputed
    :func:`~repro.netlist.traversal.fanout_map` /
    :func:`~repro.netlist.traversal.topological_cells` results so a
    caller screening many registers of one design pays for them once.
    ``weak_selects=False`` switches to the conservative two-level
    reading where mux-select taint propagates at full strength.
    """
    source_list = sorted(set(sources))
    if not source_list:
        return TaintResult(round_limit=1)
    if fanout is None:
        fanout = fanout_map(netlist)
    reach = fanout_cone(
        netlist, source_list, through_flops=True, fanout=fanout
    )
    if order is None:
        order = topological_cells(netlist)
    # the slice the sweep actually evaluates, already topologically sorted
    cell_slice = [
        netlist.cells[idx]
        for idx in order
        if netlist.cells[idx].output in reach
    ]
    flop_slice = [
        flop for flop in netlist.flops if flop.q in reach
    ]
    taint: dict[int, Level] = {net: TAINTED for net in source_list}
    round_limit = 2 * len(flop_slice) + 4
    rounds = 0
    changed = True
    while changed:
        rounds += 1
        if rounds > round_limit:
            raise IftError(
                "taint fixpoint exceeded its round bound "
                "({} rounds, {} flops in reach) — the lattice transfer "
                "functions are no longer monotone".format(
                    rounds, len(flop_slice)
                )
            )
        changed = False
        for cell in cell_slice:
            if cell.output in taint and taint[cell.output] == TAINTED:
                continue  # already at top, cannot rise
            level = _cell_taint(cell, taint, weak_selects)
            if level > taint.get(cell.output, UNTAINTED):
                taint[cell.output] = level
                changed = True
        for flop in flop_slice:
            level = taint.get(flop.d, UNTAINTED)
            if level > taint.get(flop.q, UNTAINTED):
                taint[flop.q] = level
                changed = True
    return TaintResult(
        taint=taint,
        rounds=rounds,
        round_limit=round_limit,
        reach=frozenset(reach),
    )


def shortest_taint_path(
    netlist: Any,
    sources: Iterable[int],
    targets: Iterable[int],
    result: TaintResult,
    fanout: Any = None,
) -> list:
    """Shortest source-to-target chain through tainted nets.

    BFS over forward edges (cell input -> output, flop D -> Q)
    restricted to nets the fixpoint marked at least :data:`MAYBE`.
    Deterministic: sources and per-net successors expand in sorted
    order, so equal-length paths always resolve the same way. Returns
    the path as a list of net ids (source first, target last), or an
    empty list when no tainted target is reachable.
    """
    target_set = {
        net for net in targets if result.level(net) >= MAYBE
    }
    if not target_set:
        return []
    if fanout is None:
        fanout = fanout_map(netlist)
    start = sorted(set(sources))
    parent: dict[int, int | None] = {net: None for net in start}
    queue = deque(start)
    while queue:
        net = queue.popleft()
        if net in target_set:
            path = [net]
            while parent[path[-1]] is not None:
                path.append(parent[path[-1]])  # type: ignore[arg-type]
            path.reverse()
            return path
        successors = []
        for kind, payload in fanout.get(net, ()):
            if kind == "cell":
                successors.append(netlist.cells[payload].output)
            elif kind == "flop":
                successors.append(netlist.flops[payload].q)
        for succ in sorted(successors):
            if succ in parent or result.level(succ) < MAYBE:
                continue
            parent[succ] = net
            queue.append(succ)
    return []
