"""Structured results of the static IFT screen.

Findings reuse the lint severity ladder and field shape
(:class:`~repro.lint.findings.LintFinding`) so every downstream
consumer — Algorithm 1 register prioritization, the shared SARIF
writer, the fused audit report — handles lint and IFT evidence with the
same code. An :class:`IftReport` aggregates one design's findings with
per-register engine accounting (source counts, fixpoint rounds, reach
sizes) that the bench harness and the termination tests read.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.lint.findings import (
    SEVERITIES,
    SEVERITY_WEIGHT,
    SUSPICIOUS,
    WARN,
    LintFinding,
    severity_rank,
)

# Rule registry of the IFT screen: id -> (severity, description). Kept
# as data (not classes) because IFT is one analysis with three sink
# kinds, not a family of independent structural patterns.
IFT_RULES = {
    "taint-reaches-critical": (
        SUSPICIOUS,
        "Taint from an undocumented write-port source reaches the "
        "critical register's D pins — a valid-way violation the "
        "corruption property may not express.",
    ),
    "taint-reaches-output": (
        WARN,
        "Taint from an undocumented source of a critical register "
        "reaches a primary output — a potential leakage channel.",
    ),
    "taint-reaches-enable": (
        WARN,
        "Taint from an undocumented source of a critical register "
        "reaches another register's write-enable logic.",
    ),
}


@dataclass
class IftFinding(LintFinding):
    """One IFT sink hit; shares the lint finding shape end to end."""


@dataclass
class RegisterIftStats:
    """Engine accounting for one screened critical register."""

    register: str
    num_sources: int = 0
    rounds: int = 0
    round_limit: int = 0
    reach: int = 0

    def to_dict(self) -> dict:
        return {
            "register": self.register,
            "num_sources": self.num_sources,
            "rounds": self.rounds,
            "round_limit": self.round_limit,
            "reach": self.reach,
        }


@dataclass
class IftReport:
    """All IFT findings for one design."""

    design: str
    findings: list = field(default_factory=list)
    register_stats: dict = field(default_factory=dict)  # name -> stats
    elapsed: float = 0.0

    # ------------------------------------------------------------- queries

    def findings_for(self, register: str) -> list:
        """Findings implicating one register."""
        return [f for f in self.findings if f.register == register]

    @property
    def max_severity(self) -> "str | None":
        if not self.findings:
            return None
        return max(
            self.findings, key=lambda f: severity_rank(f.severity)
        ).severity

    @property
    def severity_counts(self) -> dict:
        counts = {name: 0 for name in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    @property
    def rule_hits(self) -> dict:
        """Per-rule hit counts (every IFT rule, zero included)."""
        counts = {rule: 0 for rule in IFT_RULES}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    @property
    def tainted_registers(self) -> list:
        """Screened registers with at least one finding, sorted."""
        return sorted({f.register for f in self.findings if f.register})

    def register_scores(self) -> dict:
        """Priority score per implicated register (higher = audit first)."""
        scores: dict[str, int] = {}
        for finding in self.findings:
            if finding.register is None:
                continue
            scores[finding.register] = (
                scores.get(finding.register, 0)
                + SEVERITY_WEIGHT[finding.severity]
            )
        return scores

    # ------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "elapsed": self.elapsed,
            "findings": [f.to_dict() for f in self.findings],
            "register_stats": {
                name: st.to_dict()
                for name, st in self.register_stats.items()
            },
            "severity_counts": self.severity_counts,
            "register_scores": self.register_scores(),
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """Human-readable multi-line report."""
        counts = self.severity_counts
        screened = len(self.register_stats)
        sourced = sum(
            1
            for st in self.register_stats.values()
            if st.num_sources
        )
        lines = [
            "ift {!r}: {} finding{} ({}) over {} register{} "
            "({} with undocumented sources) in {:.2f}s".format(
                self.design,
                len(self.findings),
                "" if len(self.findings) == 1 else "s",
                ", ".join(
                    "{} {}".format(counts[name], name)
                    for name in reversed(SEVERITIES)
                    if counts[name]
                )
                or "clean",
                screened,
                "" if screened == 1 else "s",
                sourced,
                self.elapsed,
            )
        ]
        for finding in sorted(
            self.findings,
            key=lambda f: -severity_rank(f.severity),
        ):
            lines.append("  {}".format(finding))
        return "\n".join(lines)


def make_finding(
    rule: str,
    message: str,
    design: str,
    register: str,
    nets: Any = (),
    net_names: Any = (),
    evidence: "dict | None" = None,
) -> IftFinding:
    """Build a finding for a registered IFT rule."""
    severity, _description = IFT_RULES[rule]
    return IftFinding(
        rule=rule,
        severity=severity,
        message=message,
        design=design,
        register=register,
        nets=list(nets),
        net_names=list(net_names),
        evidence=dict(evidence or {}),
    )
