"""The three-level taint lattice of the static IFT screen.

``UNTAINTED < MAYBE < TAINTED`` — a finite join-semilattice over plain
ints, so the fixpoint engine's monotonicity argument is just "levels
only go up and there are three of them".

The middle level exists for *control-only* influence. A mux whose
**data** arm carries taint propagates :data:`TAINTED` (the secret's bits
flow through); a mux whose **select** carries taint but whose data arms
are clean propagates at most :data:`MAYBE` (the attacker chooses *which*
clean value appears — an implicit flow). Trojan payload splices are
exactly the second shape: the inserted mux selects between the original
D logic and a constant/redirected value under a trigger-derived select,
so the critical register's D pin typically sees ``MAYBE``, not
``TAINTED``. Both levels are flagged; the distinction is kept as
evidence because it tells the auditor whether data *content* or only
data *choice* is attacker-controlled.

Since the netlist IR is bit-level (every net is one bit), the analysis
is inherently per-bit; no word-level refinement pass is needed.
"""

from __future__ import annotations

UNTAINTED = 0
MAYBE = 1
TAINTED = 2

LEVEL_NAMES = {UNTAINTED: "untainted", MAYBE: "maybe", TAINTED: "tainted"}

Level = int


def join(a: Level, b: Level) -> Level:
    """Least upper bound of two taint levels."""
    return a if a >= b else b


def join_all(levels: "list[Level] | tuple[Level, ...]") -> Level:
    """Least upper bound of a non-empty collection (empty -> UNTAINTED)."""
    out = UNTAINTED
    for level in levels:
        if level > out:
            out = level
            if out == TAINTED:
                break
    return out


def weaken(level: Level) -> Level:
    """Demote data taint to control taint (select-arm propagation).

    ``TAINTED`` through a mux select becomes ``MAYBE``: the tainted
    signal decides between clean values but its bits do not flow.
    ``MAYBE`` and ``UNTAINTED`` are unchanged.
    """
    return MAYBE if level > MAYBE else level


def level_name(level: Level) -> str:
    """Human-readable name of a taint level."""
    return LEVEL_NAMES[level]
