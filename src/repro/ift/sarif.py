"""SARIF 2.1.0 export of IFT reports, via the shared writer.

One :class:`~repro.ift.findings.IftReport` becomes one ``run`` under
driver ``repro-ift``. :func:`merged_sarif` is what the CLI writes by
default: the lint runs and the IFT runs of the same designs in a single
multi-run log, so a scanning UI shows both modalities side by side.
"""

from __future__ import annotations

from typing import Any

from repro.ift.findings import IFT_RULES
from repro.report.sarif import (
    driver_rule,
    make_log,
    make_run,
    write_log,
)

__all__ = ["ift_runs", "to_sarif", "write_sarif", "merged_sarif"]


def _driver_rules() -> list:
    return [
        driver_rule(rule_id, description, severity)
        for rule_id, (severity, description) in IFT_RULES.items()
    ]


def _run(report: Any) -> dict:
    return make_run(
        "repro-ift",
        _driver_rules(),
        report.findings,
        {
            "design": report.design,
            "elapsed": report.elapsed,
            "ruleHits": report.rule_hits,
            "registerStats": {
                name: stats.to_dict()
                for name, stats in report.register_stats.items()
            },
        },
    )


def ift_runs(reports: Any) -> list:
    """SARIF runs (one per report) for merging with other modalities."""
    if not isinstance(reports, (list, tuple)):
        reports = [reports]
    return [_run(report) for report in reports]


def to_sarif(reports: Any) -> dict:
    """SARIF log dict of IFT runs only."""
    return make_log(ift_runs(reports))


def merged_sarif(
    ift_reports: Any, lint_reports: Any = None
) -> dict:
    """One multi-run log: lint runs (if any) followed by IFT runs."""
    from repro.lint.sarif import lint_runs

    runs: list = []
    if lint_reports:
        runs.extend(lint_runs(lint_reports))
    runs.extend(ift_runs(ift_reports))
    return make_log(runs)


def write_sarif(
    path: Any, reports: Any, lint_reports: Any = None
) -> Any:
    """Write IFT (optionally merged with lint) SARIF to ``path``."""
    return write_log(path, merged_sarif(reports, lint_reports))
