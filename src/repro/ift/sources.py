"""Taint-source derivation from a ValidWays specification.

The IFT screen's threat model mirrors the paper's: the defender knows,
from the datasheet, the *valid ways* a critical register may be updated.
Every signal those documented ways are allowed to read is trusted; any
**other** source net feeding the register's write port is an
undocumented influence and becomes a taint source.

Concretely, for critical register ``R``:

* the spec's :class:`~repro.properties.valid_ways.ValidWay` callables
  are evaluated against a :class:`RecordingCtx` — a
  :class:`~repro.properties.valid_ways.MonitorCtx` that records every
  design signal (input port, register Q, probe) the conditions and
  expected-value expressions touch. Evaluation happens on a **clone** of
  the netlist so monitor gates built by the callables never pollute the
  design under analysis; net ids are preserved by
  :meth:`~repro.netlist.netlist.Netlist.clone`, so recorded ids are
  valid in the original.
* the *documented support* is the union of the combinational supports of
  those recorded anchors (a probe is an internal net — it stands for
  whatever inputs/state compute it), plus ``R``'s own Q nets (holding or
  recirculating your own value is always authorized) and the constants.
* the *taint sources* are ``comb_support(R's D pins) - documented``:
  source nets that structurally feed the write port but that no
  documented way accounts for.

On the bundled clean designs this set is empty — the specs were written
against the honest RTL — so the fixpoint engine never runs and the
screen is silent by construction. On the Trojaned designs the trigger
counters/latch flops spliced into the D logic are exactly the nets this
subtraction isolates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.netlist.builder import BitVec, Circuit
from repro.netlist.cells import CONST0, CONST1
from repro.properties.valid_ways import MonitorCtx


class RecordingCtx(MonitorCtx):
    """A MonitorCtx that records which design signals the spec reads."""

    def __init__(self, circuit: Circuit) -> None:
        super().__init__(circuit)
        self.anchors: set[int] = set()
        self.anchor_names: set[str] = set()

    def input(self, name: str) -> BitVec:
        value = super().input(name)
        self.anchors.update(value.nets)
        self.anchor_names.add("input:{}".format(name))
        return value

    def reg(self, name: str) -> BitVec:
        value = super().reg(name)
        self.anchors.update(value.nets)
        self.anchor_names.add("reg:{}".format(name))
        return value

    def probe(self, name: str) -> BitVec:
        value = super().probe(name)
        self.anchors.update(value.nets)
        self.anchor_names.add("probe:{}".format(name))
        return value


@dataclass
class TaintSources:
    """Derived taint sources for one critical register."""

    register: str
    sources: list = field(default_factory=list)  # net ids, sorted
    documented: frozenset = frozenset()  # trusted source nets
    anchor_names: list = field(default_factory=list)  # spec signals read

    @property
    def is_clean(self) -> bool:
        return not self.sources


def documented_support(
    netlist: Any, spec: Any, register: str, analysis: Any
) -> "tuple[frozenset[int], list[str]]":
    """Trusted source nets of ``register`` per its ValidWays spec.

    Returns ``(documented, anchor_names)`` where ``documented`` is the
    set of input/flop-Q/const nets the documented ways may read (plus the
    register's own Q and the constants) and ``anchor_names`` lists the
    spec signals that contributed, for evidence.
    """
    reg_spec = spec.spec_for(register)
    # evaluate the way-callables on a clone: they build monitor gates,
    # and those must not leak into the netlist under analysis
    scratch = netlist.clone()
    ctx = RecordingCtx(Circuit.attach(scratch))
    width = netlist.register_width(register)
    for way in reg_spec.ways:
        way.condition(ctx)
        way.expected(ctx, width)
    documented: set[int] = {CONST0, CONST1}
    documented.update(netlist.register_q_nets(register))
    if ctx.anchors:
        # a probe anchor is an internal net; expand it to the inputs /
        # flop Qs that compute it (comb_support passes through
        # input/flop/const anchors unchanged)
        documented.update(analysis.comb_support(sorted(ctx.anchors)))
    return frozenset(documented), sorted(ctx.anchor_names)


def derive_sources(
    netlist: Any, spec: Any, register: str, analysis: Any
) -> TaintSources:
    """Taint sources for ``register``: undocumented write-port support."""
    documented, anchor_names = documented_support(
        netlist, spec, register, analysis
    )
    d_nets = netlist.register_d_nets(register)
    support = analysis.comb_support(d_nets)
    return TaintSources(
        register=register,
        sources=sorted(support - documented),
        documented=documented,
        anchor_names=anchor_names,
    )
