"""Static lint pre-pass over gate-level netlists.

A rule-based structural analyzer that screens designs for Trojan-shaped
structure *before* Algorithm 1 spends any formal-engine budget: extra
write ports contradicting the valid-way set, wide trigger comparators,
low-influence counters wired into write selects, dominator flops on
critical enables, bypass muxes in output cones, plus netlist hygiene
(dead logic, floating/unread nets, pathological depth).

Typical use::

    from repro.lint import lint_design

    report = lint_design(netlist, spec)
    ordered = report.prioritize(list(spec.critical))  # audit these first
"""

from repro.lint.analysis import DesignAnalysis, MuxArm, RegisterMuxTree
from repro.lint.engine import LintConfig, LintConfigError, Linter, lint_design
from repro.lint.findings import (
    ERROR,
    INFO,
    SEVERITIES,
    SUSPICIOUS,
    WARN,
    LintFinding,
    LintReport,
    RuleStats,
    severity_rank,
)
from repro.lint.rules import RULE_REGISTRY, Rule, RuleContext, all_rules, rule
from repro.lint.sarif import to_sarif, write_sarif

__all__ = [
    "DesignAnalysis",
    "MuxArm",
    "RegisterMuxTree",
    "LintConfig",
    "LintConfigError",
    "Linter",
    "lint_design",
    "ERROR",
    "INFO",
    "SEVERITIES",
    "SUSPICIOUS",
    "WARN",
    "LintFinding",
    "LintReport",
    "RuleStats",
    "severity_rank",
    "RULE_REGISTRY",
    "Rule",
    "RuleContext",
    "all_rules",
    "rule",
    "to_sarif",
    "write_sarif",
]
