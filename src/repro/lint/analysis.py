"""Structural analysis core shared by every lint rule.

One :class:`DesignAnalysis` instance per linted netlist, computing (and
caching) the structural facts the rules query:

* per-net combinational fan-in cones and source supports,
* the register-to-register dependency graph (who reads whom,
  combinationally),
* per-net combinational depth (via :func:`~repro.netlist.traversal.levelize`),
* the mux tree in front of each register's D pins — the structural
  "write ports" of the register (:class:`RegisterMuxTree`),
* dominator tests on write-enable logic (does a single flop's Q gate
  every path into a select?),
* structural counter classification (self-incrementing flop groups, the
  shape of every multi-cycle Trojan trigger in the benchmark suite).

Everything here is pure structure: no simulation, no solver calls. The
heavy primitives come from :mod:`repro.netlist.traversal` and
:func:`repro.netlist.stats.stats` so lint and bench share one source of
design numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.cells import CONST0, CONST1, Kind
from repro.netlist.stats import stats
from repro.netlist.traversal import (
    fanin_cone,
    fanout_cone,
    fanout_map,
    levelize,
    topological_cells,
)

_CONSTS = (CONST0, CONST1)


@dataclass
class MuxArm:
    """One structural write port of a register.

    ``select`` is the 1-bit net enabling the arm; ``values`` maps bit
    position -> the net written into that bit when the arm is selected.
    ``is_hold`` marks arms that recirculate the register's own Q (an
    enable that *keeps* the value is not a way to *update* it).
    """

    select: int
    values: dict = field(default_factory=dict)  # bit -> net id
    is_hold: bool = True


@dataclass
class RegisterMuxTree:
    """The priority-mux chain feeding one register's D pins."""

    register: str
    arms: list = field(default_factory=list)  # MuxArm, outermost first
    default: dict = field(default_factory=dict)  # bit -> terminal net
    default_holds: bool = True  # terminal recirculates Q on every bit

    @property
    def update_arms(self):
        """Arms that can change the register's value."""
        return [arm for arm in self.arms if not arm.is_hold]

    @property
    def select_nets(self):
        return [arm.select for arm in self.arms]

    @property
    def num_write_ports(self):
        """Structural ways to update: non-hold arms plus a non-hold default."""
        return len(self.update_arms) + (0 if self.default_holds else 1)


class DesignAnalysis:
    """Cached structural queries over one netlist (plus optional spec)."""

    def __init__(self, netlist, spec=None):
        self.netlist = netlist
        self.spec = spec
        self._order = None
        self._level = None
        self._fanout = None
        self._stats = None
        self._register_d_cones = None
        self._register_reads = None
        self._register_readers = None
        self._q_to_register = None
        self._input_bits = None
        self._mux_trees = {}
        self._counters = None
        self._live_nets = None

    # ------------------------------------------------------------- basics

    @property
    def critical_registers(self):
        """Registers named critical by the spec (empty without a spec)."""
        if self.spec is None:
            return ()
        return tuple(self.spec.critical)

    @property
    def order(self):
        if self._order is None:
            self._order = topological_cells(self.netlist)
        return self._order

    @property
    def level(self):
        """Net id -> combinational depth."""
        if self._level is None:
            self._level = levelize(self.netlist, self.order)
        return self._level

    @property
    def fanout(self):
        if self._fanout is None:
            self._fanout = fanout_map(self.netlist)
        return self._fanout

    @property
    def stats(self):
        """The shared :class:`~repro.netlist.stats.NetlistStats`."""
        if self._stats is None:
            self._stats = stats(self.netlist)
        return self._stats

    @property
    def input_bits(self):
        if self._input_bits is None:
            self._input_bits = self.netlist.input_net_set()
        return self._input_bits

    @property
    def q_to_register(self):
        """Flop Q net -> (register name, bit); ungrouped flops absent."""
        if self._q_to_register is None:
            mapping = {}
            for name, idxs in self.netlist.registers.items():
                for bit, idx in enumerate(idxs):
                    mapping[self.netlist.flops[idx].q] = (name, bit)
            self._q_to_register = mapping
        return self._q_to_register

    # -------------------------------------------------------------- cones

    def comb_cone(self, nets):
        """Combinational fan-in cone (flop Qs are frontier sources)."""
        return fanin_cone(self.netlist, nets, through_flops=False)

    def comb_support(self, nets):
        """Source nets (inputs / flop Qs / constants) of a comb cone."""
        cone = self.comb_cone(nets)
        support = set()
        for net in cone:
            kind, _ = self.netlist.driver_of(net)
            if kind in ("input", "flop", "const"):
                support.add(net)
        return support

    def seq_fanout(self, nets):
        """Transitive fan-out, crossing register boundaries."""
        return fanout_cone(
            self.netlist, nets, through_flops=True, fanout=self.fanout
        )

    @property
    def register_d_cones(self):
        """Register name -> comb fan-in cone of its D pins."""
        if self._register_d_cones is None:
            self._register_d_cones = {
                name: self.comb_cone(self.netlist.register_d_nets(name))
                for name in self.netlist.registers
            }
        return self._register_d_cones

    # -------------------------------------------- register dependency graph

    @property
    def register_reads(self):
        """Register name -> set of register names its D logic reads."""
        if self._register_reads is None:
            reads = {}
            for name, cone in self.register_d_cones.items():
                sources = set()
                for net in cone:
                    entry = self.q_to_register.get(net)
                    if entry is not None:
                        sources.add(entry[0])
                reads[name] = sources
            self._register_reads = reads
        return self._register_reads

    @property
    def register_readers(self):
        """Register name -> set of register names reading its Q."""
        if self._register_readers is None:
            readers = {name: set() for name in self.netlist.registers}
            for name, sources in self.register_reads.items():
                for source in sources:
                    readers[source].add(name)
            self._register_readers = readers
        return self._register_readers

    # ----------------------------------------------------------- mux trees

    def _resolve_buffers(self, net):
        """Follow BUF cells back to the buffered source."""
        while True:
            kind, payload = self.netlist.driver_of(net)
            if kind != "cell":
                return net
            cell = self.netlist.cells[payload]
            if cell.kind is not Kind.BUF:
                return net
            net = cell.inputs[0]

    def mux_tree(self, register):
        """Extract the priority-mux spine feeding ``register``'s D pins.

        Walks each bit's D net down the mux chain's *else* branch
        (``d0``): every mux on the spine contributes one arm ``(select,
        value-when-selected)``; the terminal net is the default. Data
        muxes *inside* arm values (register-file read ports, S-box LUT
        trees) are deliberately not entered — they select data, not write
        authorization. Arms are merged across bits by select net, in
        outermost-first order.
        """
        if register in self._mux_trees:
            return self._mux_trees[register]
        netlist = self.netlist
        q_nets = netlist.register_q_nets(register)
        d_nets = netlist.register_d_nets(register)
        arms = {}  # select net -> MuxArm
        arm_order = []
        tree = RegisterMuxTree(register=register)
        for bit, d_net in enumerate(d_nets):
            node = self._resolve_buffers(d_net)
            while True:
                kind, payload = netlist.driver_of(node)
                if kind != "cell":
                    break
                cell = netlist.cells[payload]
                if cell.kind is not Kind.MUX:
                    break
                sel, d0, d1 = cell.inputs
                arm = arms.get(sel)
                if arm is None:
                    arm = MuxArm(select=sel)
                    arms[sel] = arm
                    arm_order.append(sel)
                arm.values[bit] = d1
                if self._resolve_buffers(d1) != q_nets[bit]:
                    arm.is_hold = False
                node = self._resolve_buffers(d0)
            tree.default[bit] = node
            if node != q_nets[bit]:
                tree.default_holds = False
        tree.arms = [arms[sel] for sel in arm_order]
        self._mux_trees[register] = tree
        return tree

    # ---------------------------------------------------------- dominators

    def dominates(self, blocker, root, cone=None):
        """Does ``blocker`` gate every variable path into ``root``?

        True when removing net ``blocker`` disconnects ``root`` from every
        variable source (input bit or flop Q) of its combinational fan-in
        cone. This is the write-enable dominator test: a flop whose Q
        dominates a critical register's update select single-handedly
        decides whether the update fires — exactly the role of a Trojan
        trigger latch (and of the paper's pseudo-critical registers).
        """
        if root == blocker:
            return True
        if cone is None:
            cone = self.comb_cone([root])
        if blocker not in cone:
            return False
        netlist = self.netlist
        seen = {blocker}
        stack = [root]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            kind, payload = netlist.driver_of(net)
            if kind in ("input", "flop"):
                return False  # reached a variable source around the blocker
            if kind == "cell":
                stack.extend(netlist.cells[payload].inputs)
        return True

    # ------------------------------------------------------------ counters

    @property
    def counters(self):
        """Registers structurally shaped like counters.

        A counter is a flop group (width >= 2) whose D logic contains an
        XOR cell computing purely over the group's own Q bits — the
        tell-tale sum bit of a self-increment. This is the shape of every
        multi-cycle trigger in the benchmark suite (consecutive-
        instruction counters, free-running cycle counters) as well as of
        legitimate sequencers; the rules separate the two by fan-out
        breadth and by what the counter feeds.
        """
        if self._counters is None:
            found = []
            for name, idxs in self.netlist.registers.items():
                if len(idxs) < 2:
                    continue
                own_q = {self.netlist.flops[i].q for i in idxs}
                cone = self.register_d_cones[name]
                if self._has_self_xor(cone, own_q):
                    found.append(name)
            self._counters = found
        return self._counters

    def _has_self_xor(self, cone, own_q):
        netlist = self.netlist
        for net in cone:
            kind, payload = netlist.driver_of(net)
            if kind != "cell":
                continue
            cell = netlist.cells[payload]
            if cell.kind is not Kind.XOR:
                continue
            if self._support_within(cell.inputs, own_q):
                return True
        return False

    def _support_within(self, nets, allowed):
        """Is the comb support of ``nets`` nonempty and within ``allowed``?"""
        netlist = self.netlist
        seen = set()
        stack = list(nets)
        hit = False
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            if net in _CONSTS:
                continue
            kind, payload = netlist.driver_of(net)
            if kind == "cell":
                stack.extend(netlist.cells[payload].inputs)
            elif net in allowed:
                hit = True
            else:
                return False
        return hit

    # ------------------------------------------------------------ liveness

    @property
    def live_nets(self):
        """Nets with a structural path to an output port or probe.

        Computed once as the through-flop fan-in cone of every output and
        probe net. A cell output missing from this set drives nothing the
        design's interface can ever observe — dead logic.
        """
        if self._live_nets is None:
            sinks = []
            for nets in self.netlist.outputs.values():
                sinks.extend(nets)
            for nets in self.netlist.probes.values():
                sinks.extend(nets)
            self._live_nets = fanin_cone(
                self.netlist, sinks, through_flops=True
            )
        return self._live_nets
