"""The lint engine: configuration, rule dispatch, report assembly.

:class:`Linter` runs every registered rule against one design and
assembles a :class:`~repro.lint.findings.LintReport` with per-rule hit
counts and runtimes (the bench harness records both).
:class:`LintConfig` carries the rule thresholds, disabled-rule set,
severity overrides and ``(rule glob, subject glob)`` suppressions.
"""

from __future__ import annotations

import fnmatch
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.lint.analysis import DesignAnalysis
from repro.lint.findings import (
    ERROR,
    LintFinding,
    LintReport,
    RuleStats,
    severity_rank,
)
from repro.lint.rules import RULE_REGISTRY, RuleContext, all_rules


class LintConfigError(ReproError):
    """A lint configuration references unknown rules or severities."""


@dataclass
class LintConfig:
    """Thresholds and per-rule policy for one lint run.

    ``suppressions`` are ``(rule glob, subject glob)`` pairs matched with
    :mod:`fnmatch` against a finding's rule name and subject (its
    register, else its first net name): ``("unread-net", "*")`` silences
    a rule design-wide, ``("*", "scratch_*")`` silences everything about
    scratch registers. ``severity_overrides`` maps rule name to a
    severity, letting a deployment promote or demote rules without code.
    """

    # rule thresholds, defaults calibrated on the bundled clean designs
    # (max clean comparator width 8, max clean depth 24)
    wide_comparator_width: int = 16
    counter_influence_limit: int = 4
    shadow_extra_support: int = 2
    max_depth: int = 48
    # policy
    disabled: list = field(default_factory=list)
    suppressions: list = field(default_factory=list)
    severity_overrides: dict = field(default_factory=dict)

    def __post_init__(self):
        for name in self.disabled:
            if name not in RULE_REGISTRY:
                raise LintConfigError(
                    "cannot disable unknown rule {!r}; known: {}".format(
                        name, ", ".join(RULE_REGISTRY)
                    )
                )
        for name, severity in self.severity_overrides.items():
            if name not in RULE_REGISTRY:
                raise LintConfigError(
                    "severity override for unknown rule {!r}".format(name)
                )
            try:
                severity_rank(severity)
            except ValueError as exc:
                raise LintConfigError(str(exc)) from None

    def enabled(self, rule_name):
        return rule_name not in self.disabled

    def suppressed(self, finding):
        subject = finding.register or (
            finding.net_names[0] if finding.net_names else ""
        )
        return any(
            fnmatch.fnmatch(finding.rule, rule_glob)
            and fnmatch.fnmatch(subject, subject_glob)
            for rule_glob, subject_glob in self.suppressions
        )


class Linter:
    """Runs the registered rules over one netlist."""

    def __init__(self, config=None, rules=None):
        self.config = config or LintConfig()
        self.rules = list(rules) if rules is not None else all_rules()

    def run(self, netlist, spec=None, design=None):
        """Lint one design; returns a :class:`LintReport`."""
        started = time.perf_counter()
        analysis = DesignAnalysis(netlist, spec)
        name = design or (spec.name if spec is not None else netlist.name)
        ctx = RuleContext(analysis, self.config, design=name)
        report = LintReport(design=name)
        for rule in self.rules:
            if not self.config.enabled(rule.name):
                continue
            rule_started = time.perf_counter()
            # A rule that needs structure a broken netlist cannot provide
            # (e.g. a topological order when a read net is undriven) fails
            # alone; the hygiene rules that diagnose the breakage still
            # run, so a broken design gets a report instead of a traceback.
            try:
                produced = rule.run(ctx)
            except ReproError as exc:
                produced = [
                    LintFinding(
                        rule=rule.name,
                        severity=ERROR,
                        message="rule could not run on this netlist: "
                        "{}".format(exc),
                        design=name,
                        evidence={"crashed": type(exc).__name__},
                    )
                ]
            kept = []
            for finding in produced:
                override = self.config.severity_overrides.get(rule.name)
                if override is not None:
                    finding.severity = override
                if not self.config.suppressed(finding):
                    kept.append(finding)
            report.findings.extend(kept)
            report.rule_stats[rule.name] = RuleStats(
                rule=rule.name,
                hits=len(kept),
                elapsed=time.perf_counter() - rule_started,
            )
        try:
            report.stats = analysis.stats
        except ReproError:
            report.stats = None  # stats need a sortable netlist
        report.elapsed = time.perf_counter() - started
        return report


def lint_design(netlist, spec=None, config=None, design=None):
    """One-call convenience: lint ``netlist`` with default rules."""
    return Linter(config=config).run(netlist, spec=spec, design=design)
