"""Structured results of the static lint pass.

A :class:`LintFinding` is one rule hit: which rule fired, how severe it
is, which register/nets it implicates and machine-readable ``evidence``
for downstream consumers (Algorithm 1 ordering, the bench harness, SARIF
export). A :class:`LintReport` aggregates the findings of one design
together with per-rule runtime/hit accounting and the register priority
scores the detector uses to order its property checks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

# Severity ladder. ``error`` marks structural brokenness (a netlist that
# downstream tools cannot trust); ``suspicious`` marks Trojan-shaped
# structure; ``warn``/``info`` are advisory.
INFO = "info"
WARN = "warn"
SUSPICIOUS = "suspicious"
ERROR = "error"

SEVERITIES = (INFO, WARN, SUSPICIOUS, ERROR)
SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

# Contribution of one finding to its register's priority score. Trojan-
# shaped structure dominates; structural errors still outrank advisories
# (a register whose logic is broken deserves early scrutiny).
SEVERITY_WEIGHT = {INFO: 1, WARN: 4, SUSPICIOUS: 16, ERROR: 8}


def severity_rank(severity):
    """Numeric rank of a severity name (higher = more severe)."""
    try:
        return SEVERITY_RANK[severity]
    except KeyError:
        raise ValueError(
            "unknown severity {!r}; expected one of {}".format(
                severity, ", ".join(SEVERITIES)
            )
        ) from None


@dataclass
class LintFinding:
    """One rule hit on one design."""

    rule: str
    severity: str
    message: str
    design: str = ""
    register: str | None = None  # implicated register, when identifiable
    nets: list = field(default_factory=list)  # implicated net ids
    net_names: list = field(default_factory=list)  # matching debug names
    evidence: dict = field(default_factory=dict)  # JSON-safe details

    def __post_init__(self):
        severity_rank(self.severity)  # validate eagerly

    def to_dict(self):
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "design": self.design,
            "register": self.register,
            "nets": list(self.nets),
            "net_names": list(self.net_names),
            "evidence": dict(self.evidence),
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            rule=data["rule"],
            severity=data["severity"],
            message=data["message"],
            design=data.get("design", ""),
            register=data.get("register"),
            nets=list(data.get("nets", [])),
            net_names=list(data.get("net_names", [])),
            evidence=dict(data.get("evidence", {})),
        )

    def __str__(self):
        subject = self.register or (
            self.net_names[0] if self.net_names else ""
        )
        prefix = "[{}] {}".format(self.severity, self.rule)
        if subject:
            prefix += " @ {}".format(subject)
        return "{}: {}".format(prefix, self.message)


@dataclass
class RuleStats:
    """Runtime accounting for one rule over one design."""

    rule: str
    hits: int = 0
    elapsed: float = 0.0

    def to_dict(self):
        return {"rule": self.rule, "hits": self.hits, "elapsed": self.elapsed}


@dataclass
class LintReport:
    """All lint findings for one design."""

    design: str
    findings: list = field(default_factory=list)
    rule_stats: dict = field(default_factory=dict)  # rule -> RuleStats
    elapsed: float = 0.0
    stats: object = None  # NetlistStats of the linted design

    # ------------------------------------------------------------- queries

    def findings_for(self, register):
        """Findings implicating one register."""
        return [f for f in self.findings if f.register == register]

    def by_severity(self, minimum=INFO):
        floor = severity_rank(minimum)
        return [
            f for f in self.findings if severity_rank(f.severity) >= floor
        ]

    @property
    def max_severity(self):
        if not self.findings:
            return None
        return max(self.findings, key=lambda f: severity_rank(f.severity)).severity

    @property
    def severity_counts(self):
        counts = {name: 0 for name in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    @property
    def rule_hits(self):
        """Per-rule hit counts (every registered rule, zero included)."""
        return {rule: st.hits for rule, st in self.rule_stats.items()}

    def register_scores(self):
        """Priority score per implicated register (higher = audit first)."""
        scores = {}
        for finding in self.findings:
            if finding.register is None:
                continue
            scores[finding.register] = (
                scores.get(finding.register, 0)
                + SEVERITY_WEIGHT[finding.severity]
            )
        return scores

    def prioritize(self, registers):
        """Order ``registers`` most-suspicious first (stable for ties).

        This is the ordering :class:`~repro.core.detector.TrojanDetector`
        applies to Algorithm 1's outer loop under ``--lint-prioritize``:
        the supervised runner's wall-clock/retry budget goes to the
        registers the static pass implicated before the clean-looking
        majority.
        """
        scores = self.register_scores()
        order = {name: index for index, name in enumerate(registers)}
        return sorted(
            registers, key=lambda name: (-scores.get(name, 0), order[name])
        )

    # ------------------------------------------------------- serialization

    def to_dict(self):
        data = {
            "design": self.design,
            "elapsed": self.elapsed,
            "findings": [f.to_dict() for f in self.findings],
            "rule_stats": {
                rule: st.to_dict() for rule, st in self.rule_stats.items()
            },
            "severity_counts": self.severity_counts,
            "register_scores": self.register_scores(),
        }
        if self.stats is not None:
            data["netlist"] = {
                "cells": self.stats.num_cells,
                "flops": self.stats.num_flops,
                "registers": self.stats.num_registers,
                "depth": self.stats.depth,
                "max_fanout": self.stats.max_fanout,
            }
        return data

    def to_json(self, indent=1):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self):
        """Human-readable multi-line report."""
        counts = self.severity_counts
        lines = [
            "lint {!r}: {} finding{} ({}) in {:.2f}s".format(
                self.design,
                len(self.findings),
                "" if len(self.findings) == 1 else "s",
                ", ".join(
                    "{} {}".format(counts[name], name)
                    for name in reversed(SEVERITIES)
                    if counts[name]
                )
                or "clean",
                self.elapsed,
            )
        ]
        for finding in sorted(
            self.findings,
            key=lambda f: -severity_rank(f.severity),
        ):
            lines.append("  {}".format(finding))
        ranked = self.prioritize(sorted(self.register_scores()))
        if ranked:
            lines.append(
                "  priority: {}".format(
                    ", ".join(
                        "{} ({})".format(name, self.register_scores()[name])
                        for name in ranked
                    )
                )
            )
        return "\n".join(lines)
