"""The lint rule set: Trojan-shaped structure and netlist hygiene.

Each :class:`Rule` queries the shared :class:`~repro.lint.analysis.
DesignAnalysis` and emits :class:`~repro.lint.findings.LintFinding`
objects. Rules register themselves in :data:`RULE_REGISTRY` via the
:func:`rule` decorator; the engine instantiates every registered rule
unless the config disables it.

The ``suspicious`` rules encode the structural signatures of the
benchmark Trojans (DAC'15 Table 1 families) without peeking at ground
truth: an extra write port the datasheet never documented, a wide
rarely-true comparator, a low-influence counter wired into a critical
register's write select, a single flop gating a critical update, a mux
spliced between a critical register and an output port. The ``warn`` /
``info`` / ``error`` rules are general netlist hygiene (dead logic,
floating and unread nets, pathological depth) absorbed from
:mod:`repro.netlist.validate`.
"""

from __future__ import annotations

from repro.netlist.cells import CONST0, CONST1, Kind
from repro.lint.findings import ERROR, INFO, SUSPICIOUS, WARN, LintFinding

_VARIADIC = {Kind.AND, Kind.OR, Kind.XOR, Kind.XNOR, Kind.NAND, Kind.NOR}
_CONSTS = {CONST0, CONST1}

# rule name -> Rule subclass, in registration order
RULE_REGISTRY = {}


def rule(cls):
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not cls.name:
        raise ValueError("rule class {} has no name".format(cls.__name__))
    if cls.name in RULE_REGISTRY:
        raise ValueError("duplicate rule name {!r}".format(cls.name))
    RULE_REGISTRY[cls.name] = cls
    return cls


def all_rules():
    """Fresh instances of every registered rule, registration order."""
    return [cls() for cls in RULE_REGISTRY.values()]


class RuleContext:
    """What a rule sees: the analysis, the spec, and the config."""

    def __init__(self, analysis, config, design=""):
        self.analysis = analysis
        self.config = config
        self.design = design

    @property
    def netlist(self):
        return self.analysis.netlist

    @property
    def spec(self):
        return self.analysis.spec

    def names(self, nets):
        return [self.netlist.net_name(net) for net in nets]


class Rule:
    """Base class: one structural check producing zero or more findings."""

    name = ""
    severity = WARN
    description = ""

    def run(self, ctx):  # pragma: no cover - interface
        raise NotImplementedError

    def finding(self, ctx, message, register=None, nets=(), evidence=None):
        nets = list(nets)
        return LintFinding(
            rule=self.name,
            severity=self.severity,
            message=message,
            design=ctx.design,
            register=register,
            nets=nets,
            net_names=ctx.names(nets),
            evidence=evidence or {},
        )


# --------------------------------------------------------------------------
# Trojan-shaped structure
# --------------------------------------------------------------------------


@rule
class UndocumentedWritePort(Rule):
    """More structural write ports than the spec's valid-way set ``V``.

    The paper's whole premise is that the datasheet enumerates every
    valid way to update a critical register. The splice pattern shared by
    all bundled Trojans adds one more mux arm (a new select in front of
    the target's D pins) — structurally countable without any formal
    check. Hold arms (recirculating Q) and a holding default are not
    write ports; a non-hold default (e.g. a free-running increment)
    counts as one implicit way.
    """

    name = "undocumented-write-port"
    severity = SUSPICIOUS
    description = (
        "a critical register has more structural write ports than "
        "documented valid ways"
    )

    def run(self, ctx):
        if ctx.spec is None:
            return []
        findings = []
        for name, reg_spec in ctx.spec.critical.items():
            tree = ctx.analysis.mux_tree(name)
            structural = tree.num_write_ports
            declared = len(reg_spec.ways)
            if structural <= declared:
                continue
            selects = [arm.select for arm in tree.update_arms]
            findings.append(
                self.finding(
                    ctx,
                    "register {!r} has {} structural write ports but the "
                    "spec documents {} valid ways".format(
                        name, structural, declared
                    ),
                    register=name,
                    nets=selects,
                    evidence={
                        "structural": structural,
                        "declared": declared,
                        "default_holds": tree.default_holds,
                        "selects": ctx.names(selects),
                    },
                )
            )
        return findings


@rule
class WideComparator(Rule):
    """A reduction gate over very many distinct signals.

    Trojan triggers activate on rare events, and the cheapest rare event
    is a wide equality compare (a 128-bit plaintext match reduces to one
    128-input AND). No functional gate in the clean benchmark designs is
    anywhere near that wide.
    """

    name = "wide-comparator"
    severity = SUSPICIOUS
    description = "a reduction gate compares an unusually wide signal set"

    def run(self, ctx):
        threshold = ctx.config.wide_comparator_width
        critical_cones = {
            name: ctx.analysis.register_d_cones[name]
            for name in ctx.analysis.critical_registers
        }
        findings = []
        for cell in ctx.netlist.cells:
            if cell.kind not in _VARIADIC:
                continue
            width = len(set(cell.inputs) - _CONSTS)
            if width < threshold:
                continue
            register = next(
                (
                    name
                    for name, cone in critical_cones.items()
                    if cell.output in cone
                ),
                None,
            )
            findings.append(
                self.finding(
                    ctx,
                    "{}-input {} gate at {!r} looks like a trigger "
                    "comparator".format(
                        width, cell.kind, ctx.netlist.net_name(cell.output)
                    ),
                    register=register,
                    nets=[cell.output],
                    evidence={"width": width, "kind": str(cell.kind)},
                )
            )
        return findings


@rule
class CounterFeedsPayloadMux(Rule):
    """A low-influence counter gates a critical register's write select.

    Multi-cycle triggers count events and arm a payload once the count
    saturates. Structurally: a self-incrementing flop group read by
    almost nothing (legitimate sequencers fan out broadly) whose value
    reaches — possibly through trigger latches — the select logic of a
    critical register's write mux.
    """

    name = "counter-feeds-payload-mux"
    severity = SUSPICIOUS
    description = (
        "a narrowly-read counter reaches a critical register's write select"
    )

    def run(self, ctx):
        analysis = ctx.analysis
        critical = set(analysis.critical_registers)
        if not critical:
            return []
        limit = ctx.config.counter_influence_limit
        select_cones = {}
        for name in critical:
            selects = analysis.mux_tree(name).select_nets
            if selects:
                select_cones[name] = analysis.comb_cone(selects)
        findings = []
        for counter in analysis.counters:
            if counter in critical:
                continue
            readers = analysis.register_readers[counter] - {counter}
            if len(readers) > limit:
                continue
            reach = analysis.seq_fanout(
                ctx.netlist.register_q_nets(counter)
            )
            for name, cone in select_cones.items():
                if not (reach & cone):
                    continue
                findings.append(
                    self.finding(
                        ctx,
                        "counter {!r} (read by only {} register{}) feeds "
                        "the write select of critical register "
                        "{!r}".format(
                            counter,
                            len(readers),
                            "" if len(readers) == 1 else "s",
                            name,
                        ),
                        register=name,
                        nets=ctx.netlist.register_q_nets(counter),
                        evidence={
                            "counter": counter,
                            "influence": sorted(readers),
                        },
                    )
                )
        return findings


@rule
class PseudoCriticalCandidate(Rule):
    """A register positioned to act as a pseudo-critical register.

    Two signatures of Section 3.3's pseudo-critical attack: (a) a single
    non-critical flop whose Q *dominates* an update select of a critical
    register — that flop alone authorizes the write, exactly the role of
    a Trojan's armed latch; (b) a non-critical register that is a
    structural shadow copy of a critical one (same width, D support
    covering every bit of the critical Q with almost nothing else).
    """

    name = "pseudo-critical-candidate"
    severity = SUSPICIOUS
    description = (
        "a non-critical register dominates a critical register's write "
        "enable or shadows its value"
    )

    def run(self, ctx):
        findings = []
        findings.extend(self._dominators(ctx))
        findings.extend(self._shadow_copies(ctx))
        return findings

    def _dominators(self, ctx):
        analysis = ctx.analysis
        netlist = ctx.netlist
        critical = set(analysis.critical_registers)
        findings = []
        for name in analysis.critical_registers:
            own_q = set(netlist.register_q_nets(name))
            flagged = set()
            for arm in analysis.mux_tree(name).update_arms:
                cone = analysis.comb_cone([arm.select])
                for net in cone:
                    kind, _ = netlist.driver_of(net)
                    if kind != "flop" or net in own_q or net in flagged:
                        continue
                    entry = analysis.q_to_register.get(net)
                    if entry is not None and entry[0] in critical:
                        continue
                    if not analysis.dominates(net, arm.select, cone):
                        continue
                    flagged.add(net)
                    owner = entry[0] if entry else netlist.net_name(net)
                    findings.append(
                        self.finding(
                            ctx,
                            "flop {!r} single-handedly gates a write "
                            "select of critical register {!r} "
                            "(pseudo-critical candidate)".format(
                                netlist.net_name(net), name
                            ),
                            register=name,
                            nets=[net, arm.select],
                            evidence={
                                "dominator": owner,
                                "select": netlist.net_name(arm.select),
                            },
                        )
                    )
        return findings

    def _shadow_copies(self, ctx):
        analysis = ctx.analysis
        netlist = ctx.netlist
        critical = set(analysis.critical_registers)
        limit = ctx.config.shadow_extra_support
        findings = []
        for name in netlist.registers:
            if name in critical:
                continue
            support = None
            for target in analysis.critical_registers:
                if netlist.register_width(target) != netlist.register_width(
                    name
                ):
                    continue
                if support is None:
                    support = analysis.comb_support(
                        netlist.register_d_nets(name)
                    )
                target_q = set(netlist.register_q_nets(target))
                if not target_q <= support:
                    continue
                extra = support - target_q - _CONSTS
                if len(extra) > limit:
                    continue
                findings.append(
                    self.finding(
                        ctx,
                        "register {!r} is a structural shadow copy of "
                        "critical register {!r} (pseudo-critical "
                        "candidate)".format(name, target),
                        register=target,
                        nets=netlist.register_q_nets(name),
                        evidence={
                            "candidate": name,
                            "extra_support": ctx.names(sorted(extra)),
                        },
                    )
                )
        return findings


@rule
class BypassRegisterCandidate(Rule):
    """A mux between a register boundary and an output port.

    Section 3.3's bypass attack reroutes a critical register's fan-out
    through a rogue register via a mux spliced into the cone feeding an
    output port. The bundled clean designs drive every output port
    directly from flop Qs; any mux in an output port's combinational
    fan-in is a reconvergence around a register boundary.
    """

    name = "bypass-register-candidate"
    severity = SUSPICIOUS
    description = (
        "a mux inside an output port's combinational cone reconverges "
        "around a register"
    )

    def run(self, ctx):
        analysis = ctx.analysis
        netlist = ctx.netlist
        critical_q = {
            net: name
            for name in analysis.critical_registers
            for net in netlist.register_q_nets(name)
        }
        port_nets = []
        for nets in netlist.outputs.values():
            port_nets.extend(nets)
        if not port_nets:
            return []
        cone = analysis.comb_cone(port_nets)
        findings = []
        for cell in netlist.cells:
            if cell.kind is not Kind.MUX or cell.output not in cone:
                continue
            _sel, d0, d1 = cell.inputs
            arms = [
                analysis._resolve_buffers(d0),
                analysis._resolve_buffers(d1),
            ]
            register = next(
                (critical_q[a] for a in arms if a in critical_q), None
            )
            detail = (
                "selects between critical register {!r} and another "
                "source".format(register)
                if register
                else "selects between register sources"
            )
            findings.append(
                self.finding(
                    ctx,
                    "mux at {!r} in the cone of an output port {} "
                    "(bypass candidate)".format(
                        netlist.net_name(cell.output), detail
                    ),
                    register=register,
                    nets=[cell.output],
                    evidence={
                        "arms": ctx.names(arms),
                        "outputs": sorted(
                            name
                            for name, nets in netlist.outputs.items()
                            if set(nets)
                            & analysis.seq_fanout([cell.output])
                        ),
                    },
                )
            )
        return findings


@rule
class TaintIntoEnable(Rule):
    """Undocumented logic inside a critical register's write-enable cone.

    The valid-way spec pins down every signal a critical register's
    update conditions may read. Any other input or flop Q reaching the
    register's write selects can arm or suppress writes the datasheet
    never mentions — the classic placement for a Trojan's trigger latch.
    This is the enable-focused slice of the IFT screen's source
    derivation (:mod:`repro.ift.sources`), surfaced as a lint warning so
    pure-lint runs still see it.
    """

    name = "taint-into-enable"
    severity = WARN
    description = (
        "a critical register's write-enable cone reads signals outside "
        "the documented valid-way support"
    )

    def run(self, ctx):
        if ctx.spec is None:
            return []
        # imported lazily: repro.ift.findings imports repro.lint.findings,
        # so a module-level import here would close a cycle
        from repro.ift.sources import documented_support

        analysis = ctx.analysis
        netlist = ctx.netlist
        findings = []
        for name in analysis.critical_registers:
            selects = analysis.mux_tree(name).select_nets
            if not selects:
                continue
            try:
                documented, anchors = documented_support(
                    netlist, ctx.spec, name, analysis
                )
            except Exception:
                # the spec's way-callables reference signals this netlist
                # does not have; without an evaluable spec there is no
                # documented cone to compare against
                continue
            undocumented = sorted(
                analysis.comb_support(selects) - documented
            )
            if not undocumented:
                continue
            findings.append(
                self.finding(
                    ctx,
                    "write enable of critical register {!r} reads {} "
                    "signal{} outside the documented valid-way support "
                    "(first: {})".format(
                        name,
                        len(undocumented),
                        "" if len(undocumented) == 1 else "s",
                        ctx.names(undocumented[:5]),
                    ),
                    register=name,
                    nets=undocumented[:10],
                    evidence={
                        "undocumented": len(undocumented),
                        "anchors": anchors,
                    },
                )
            )
        return findings


# --------------------------------------------------------------------------
# Netlist hygiene
# --------------------------------------------------------------------------


@rule
class DeadLogic(Rule):
    """Cells or flops with no structural path to any output or probe."""

    name = "dead-logic"
    severity = WARN
    description = "logic that cannot influence any output port or probe"

    def run(self, ctx):
        live = ctx.analysis.live_nets
        netlist = ctx.netlist
        dead_cells = [
            cell.output for cell in netlist.cells if cell.output not in live
        ]
        dead_flops = [
            flop.q for flop in netlist.flops if flop.q not in live
        ]
        dead = dead_cells + dead_flops
        if not dead:
            return []
        sample = sorted(dead)[:10]
        return [
            self.finding(
                ctx,
                "{} cell{} and {} flop{} drive nothing observable at "
                "any output or probe".format(
                    len(dead_cells),
                    "" if len(dead_cells) == 1 else "s",
                    len(dead_flops),
                    "" if len(dead_flops) == 1 else "s",
                ),
                nets=sample,
                evidence={
                    "dead_cells": len(dead_cells),
                    "dead_flops": len(dead_flops),
                },
            )
        ]


@rule
class FloatingNet(Rule):
    """Nets that are read but undriven, or allocated and abandoned.

    The read-but-undriven case is the hard error
    :func:`repro.netlist.validate.validate` raises on; lint reports it
    instead of raising so a broken netlist still gets a full report.
    """

    name = "floating-net"
    severity = ERROR
    description = "a net is read without a driver, or allocated and unused"

    def run(self, ctx):
        netlist = ctx.netlist
        read = set()
        for cell in netlist.cells:
            read.update(cell.inputs)
        for flop in netlist.flops:
            read.add(flop.d)
        for nets in netlist.outputs.values():
            read.update(nets)
        undriven = netlist.undriven_nets()
        broken = sorted(n for n in undriven if n in read)
        floating = sorted(n for n in undriven if n not in read)
        findings = []
        if broken:
            findings.append(
                self.finding(
                    ctx,
                    "{} net{} read but never driven (first: {})".format(
                        len(broken),
                        " is" if len(broken) == 1 else "s are",
                        ctx.names(broken[:5]),
                    ),
                    nets=broken[:10],
                    evidence={"read_undriven": len(broken)},
                )
            )
        if floating:
            finding = self.finding(
                ctx,
                "{} allocated net{} floating (first: {})".format(
                    len(floating),
                    " is" if len(floating) == 1 else "s are",
                    ctx.names(floating[:5]),
                ),
                nets=floating[:10],
                evidence={"floating": len(floating)},
            )
            finding.severity = WARN  # tolerated scratch allocations
            findings.append(finding)
        return findings


@rule
class UnreadNet(Rule):
    """Driven nets nothing consumes (excluding outputs and probes)."""

    name = "unread-net"
    severity = INFO
    description = "a driven net is never read by any cell, flop or port"

    def run(self, ctx):
        netlist = ctx.netlist
        read = set(_CONSTS)
        for cell in netlist.cells:
            read.update(cell.inputs)
        for flop in netlist.flops:
            read.add(flop.d)
        for nets in netlist.outputs.values():
            read.update(nets)
        for nets in netlist.probes.values():
            read.update(nets)
        driven = set(netlist.input_net_set()) | netlist.flop_q_set()
        driven.update(cell.output for cell in netlist.cells)
        unread = sorted(driven - read)
        if not unread:
            return []
        return [
            self.finding(
                ctx,
                "{} driven net{} never read (first: {})".format(
                    len(unread),
                    " is" if len(unread) == 1 else "s are",
                    ctx.names(unread[:5]),
                ),
                nets=unread[:10],
                evidence={"unread": len(unread)},
            )
        ]


@rule
class ExcessiveDepth(Rule):
    """Combinational depth far beyond the benchmark designs' norm."""

    name = "excessive-depth"
    severity = WARN
    description = "combinational depth exceeds the configured ceiling"

    def run(self, ctx):
        threshold = ctx.config.max_depth
        level = ctx.analysis.level
        depth = max(level.values(), default=0)
        if depth <= threshold:
            return []
        deepest = max(level, key=level.get)
        return [
            self.finding(
                ctx,
                "combinational depth {} exceeds ceiling {} (deepest net "
                "{!r})".format(
                    depth, threshold, ctx.netlist.net_name(deepest)
                ),
                nets=[deepest],
                evidence={"depth": depth, "threshold": threshold},
            )
        ]
