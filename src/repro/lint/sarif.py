"""SARIF 2.1.0 export of lint reports.

Thin adapter over the shared writer in :mod:`repro.report.sarif`: this
module contributes only the lint tool descriptor (driver ``repro-lint``,
rules from :data:`~repro.lint.rules.RULE_REGISTRY`) and the per-report
run properties. One :class:`~repro.lint.findings.LintReport` becomes one
``run``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.lint.rules import RULE_REGISTRY
from repro.report.sarif import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    driver_rule,
    make_log,
    make_run,
    write_log,
)

__all__ = [
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "lint_runs",
    "to_sarif",
    "write_sarif",
]


def _driver_rules() -> list[dict[str, Any]]:
    """The tool.driver.rules array, one entry per registered rule."""
    return [
        driver_rule(name, cls.description, cls.severity)
        for name, cls in RULE_REGISTRY.items()
    ]


def _run(report: Any) -> dict[str, Any]:
    return make_run(
        "repro-lint",
        _driver_rules(),
        report.findings,
        {
            "design": report.design,
            "elapsed": report.elapsed,
            "ruleHits": report.rule_hits,
        },
    )


def lint_runs(reports: Any) -> list[dict[str, Any]]:
    """SARIF runs (one per report) for merging with other modalities."""
    if not isinstance(reports, (list, tuple)):
        reports = [reports]
    return [_run(report) for report in reports]


def to_sarif(reports: Any) -> dict[str, Any]:
    """SARIF log dict for one report or a list of reports (one run each)."""
    return make_log(lint_runs(reports))


def write_sarif(path: Any, reports: Sequence[Any]) -> Any:
    """Serialize :func:`to_sarif` to ``path``; returns the path."""
    return write_log(path, to_sarif(reports))
