"""SARIF 2.1.0 export of lint reports.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest; exporting it lets the CI lint job upload netlist findings as
a scan artifact. One :class:`~repro.lint.findings.LintReport` becomes
one ``run``; gate-level designs have no source files, so findings carry
*logical* locations (``design/register`` or ``design/net``) instead of
physical ones, which the spec explicitly allows.
"""

from __future__ import annotations

import json

from repro.lint.findings import ERROR, INFO, SUSPICIOUS, WARN
from repro.lint.rules import RULE_REGISTRY

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

# SARIF defines note/warning/error; the Trojan-shaped ``suspicious``
# severity maps to error so scanning UIs surface it as blocking.
_LEVEL = {INFO: "note", WARN: "warning", SUSPICIOUS: "error", ERROR: "error"}


def _driver_rules():
    """The tool.driver.rules array, one entry per registered rule."""
    rules = []
    for name, cls in RULE_REGISTRY.items():
        rules.append(
            {
                "id": name,
                "shortDescription": {"text": cls.description},
                "defaultConfiguration": {"level": _LEVEL[cls.severity]},
                "properties": {"severity": cls.severity},
            }
        )
    return rules


def _result(finding, rule_index):
    subject = finding.register or (
        finding.net_names[0] if finding.net_names else finding.design
    )
    fq_name = (
        "{}/{}".format(finding.design, subject)
        if finding.design
        else subject
    )
    result = {
        "ruleId": finding.rule,
        "level": _LEVEL[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "logicalLocations": [
                    {
                        "name": subject,
                        "fullyQualifiedName": fq_name,
                        "kind": "member",
                    }
                ]
            }
        ],
        "properties": {
            "severity": finding.severity,
            "design": finding.design,
            "register": finding.register,
            "netNames": list(finding.net_names),
            "evidence": dict(finding.evidence),
        },
    }
    if rule_index is not None:
        result["ruleIndex"] = rule_index
    return result


def _run(report):
    rules = _driver_rules()
    index = {entry["id"]: i for i, entry in enumerate(rules)}
    return {
        "tool": {
            "driver": {
                "name": "repro-lint",
                "informationUri": (
                    "https://github.com/paper-repro/conf-dac-trojan"
                ),
                "version": "0.2.0",
                "rules": rules,
            }
        },
        "results": [
            _result(finding, index.get(finding.rule))
            for finding in report.findings
        ],
        "properties": {
            "design": report.design,
            "elapsed": report.elapsed,
            "ruleHits": report.rule_hits,
        },
    }


def to_sarif(reports):
    """SARIF log dict for one report or a list of reports (one run each)."""
    if not isinstance(reports, (list, tuple)):
        reports = [reports]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [_run(report) for report in reports],
    }


def write_sarif(path, reports):
    """Serialize :func:`to_sarif` to ``path``; returns the path."""
    with open(path, "w") as handle:
        json.dump(to_sarif(reports), handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path
