"""Gate-level netlist IR and word-level construction front-end."""

from repro.netlist.builder import BitVec, Circuit, Reg
from repro.netlist.cells import CONST0, CONST1, Cell, Flop, Kind
from repro.netlist.fingerprint import (
    config_fingerprint,
    netlist_fingerprint,
    objective_fingerprint,
)
from repro.netlist.netlist import Netlist
from repro.netlist.stats import NetlistStats, stats
from repro.netlist.traversal import (
    cone_of_influence,
    fanin_cone,
    fanout_cone,
    fanout_map,
    levelize,
    registers_reading,
    topological_cells,
    transitive_fanout_outputs,
)
from repro.netlist.validate import ValidationReport, validate

__all__ = [
    "BitVec",
    "Circuit",
    "Reg",
    "CONST0",
    "CONST1",
    "Cell",
    "Flop",
    "Kind",
    "Netlist",
    "NetlistStats",
    "stats",
    "config_fingerprint",
    "netlist_fingerprint",
    "objective_fingerprint",
    "cone_of_influence",
    "fanin_cone",
    "fanout_cone",
    "fanout_map",
    "levelize",
    "registers_reading",
    "topological_cells",
    "transitive_fanout_outputs",
    "ValidationReport",
    "validate",
]

from repro.netlist.equiv import EquivResult, check_equivalence  # noqa: E402
from repro.netlist.optimize import OptimizeStats, optimize  # noqa: E402

__all__ += [
    "EquivResult",
    "check_equivalence",
    "OptimizeStats",
    "optimize",
]
