"""Word-level circuit builder on top of the gate-level netlist IR.

:class:`Circuit` is the construction front-end used by every design in this
repository. It exposes multi-bit values as :class:`BitVec` (an immutable,
LSB-first tuple of net ids with operator overloads) and registers as
:class:`Reg` (a named flop group whose next-state logic is connected after
the fact with :meth:`Reg.drive`).

All arithmetic is unsigned; widths must match exactly (no implicit
extension) — use :meth:`BitVec.zext` explicitly. The builder lowers
everything to the primitive cell library (AND/OR/NOT/XOR/XNOR/NAND/NOR/
BUF/MUX + DFF), including a truth-table LUT synthesizer with memoized
Shannon cofactoring used for the AES S-box.
"""

from __future__ import annotations

from repro.errors import NetlistError, WidthError
from repro.netlist.cells import CONST0, CONST1, Kind
from repro.netlist.netlist import Netlist


class BitVec:
    """An immutable word of nets, LSB first, bound to a :class:`Circuit`."""

    __slots__ = ("circuit", "nets")

    def __init__(self, circuit, nets):
        self.circuit = circuit
        self.nets = tuple(nets)

    # ---------------------------------------------------------------- basics

    @property
    def width(self):
        return len(self.nets)

    def __len__(self):
        return len(self.nets)

    def __iter__(self):
        return iter(self.nets)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return BitVec(self.circuit, self.nets[index])
        return BitVec(self.circuit, (self.nets[index],))

    def bit(self, index):
        """Net id of a single bit."""
        return self.nets[index]

    def _check_same(self, other):
        if not isinstance(other, BitVec):
            raise WidthError("expected BitVec, got {!r}".format(type(other)))
        if other.circuit is not self.circuit:
            raise NetlistError("operands belong to different circuits")
        if other.width != self.width:
            raise WidthError(
                "width mismatch: {} vs {}".format(self.width, other.width)
            )

    # ------------------------------------------------------------- bitwise

    def _map2(self, other, kind):
        self._check_same(other)
        c = self.circuit
        return BitVec(
            c,
            [c.gate(kind, a, b) for a, b in zip(self.nets, other.nets)],
        )

    def __and__(self, other):
        return self._map2(other, Kind.AND)

    def __or__(self, other):
        return self._map2(other, Kind.OR)

    def __xor__(self, other):
        return self._map2(other, Kind.XOR)

    def __invert__(self):
        c = self.circuit
        return BitVec(c, [c.gate(Kind.NOT, n) for n in self.nets])

    # ----------------------------------------------------------- reductions

    def reduce_and(self):
        """1-bit AND of all bits."""
        return BitVec(self.circuit, (self.circuit.gate(Kind.AND, *self.nets),))

    def reduce_or(self):
        """1-bit OR of all bits."""
        return BitVec(self.circuit, (self.circuit.gate(Kind.OR, *self.nets),))

    def reduce_xor(self):
        """1-bit XOR (parity) of all bits."""
        return BitVec(self.circuit, (self.circuit.gate(Kind.XOR, *self.nets),))

    # ----------------------------------------------------------- comparison

    def __eq__(self, other):  # noqa: D105 - circuit equality, not identity
        self._check_same(other)
        c = self.circuit
        bits = [c.gate(Kind.XNOR, a, b) for a, b in zip(self.nets, other.nets)]
        return BitVec(c, (c.gate(Kind.AND, *bits),))

    def __ne__(self, other):
        self._check_same(other)
        c = self.circuit
        bits = [c.gate(Kind.XOR, a, b) for a, b in zip(self.nets, other.nets)]
        return BitVec(c, (c.gate(Kind.OR, *bits),))

    __hash__ = None

    def eq_const(self, value):
        """1-bit signal: ``self == value`` (constant folded to literals)."""
        c = self.circuit
        bits = []
        for i, net in enumerate(self.nets):
            if (value >> i) & 1:
                bits.append(net)
            else:
                bits.append(c.gate(Kind.NOT, net))
        return BitVec(c, (c.gate(Kind.AND, *bits),))

    def ult(self, other):
        """Unsigned less-than: 1-bit ``self < other``."""
        self._check_same(other)
        # a < b  <=>  borrow out of a - b
        _, borrow = self.circuit._ripple_sub(self, other)
        return borrow

    def ule(self, other):
        """Unsigned less-or-equal: 1-bit ``self <= other``."""
        return ~other.ult(self)

    def in_range(self, lo, hi):
        """1-bit signal: ``lo <= self <= hi`` for integer constants."""
        c = self.circuit
        lo_bv = c.const(lo, self.width)
        hi_bv = c.const(hi, self.width)
        return lo_bv.ule(self) & self.ule(hi_bv)

    # ----------------------------------------------------------- arithmetic

    def __add__(self, other):
        if isinstance(other, int):
            other = self.circuit.const(other, self.width)
        self._check_same(other)
        total, _carry = self.circuit._ripple_add(self, other, CONST0)
        return total

    def __sub__(self, other):
        if isinstance(other, int):
            other = self.circuit.const(other, self.width)
        self._check_same(other)
        diff, _borrow = self.circuit._ripple_sub(self, other)
        return diff

    # ------------------------------------------------------------ structure

    def cat(self, *others):
        """Concatenate: ``self`` provides the low bits."""
        nets = list(self.nets)
        for other in others:
            if other.circuit is not self.circuit:
                raise NetlistError("operands belong to different circuits")
            nets.extend(other.nets)
        return BitVec(self.circuit, nets)

    def zext(self, width):
        """Zero-extend to ``width`` bits."""
        if width < self.width:
            raise WidthError("zext target narrower than value")
        pad = (CONST0,) * (width - self.width)
        return BitVec(self.circuit, self.nets + pad)

    def repeat(self, count):
        """Replicate a 1-bit value ``count`` times."""
        if self.width != 1:
            raise WidthError("repeat() needs a 1-bit value")
        return BitVec(self.circuit, self.nets * count)

    def shl_const(self, amount):
        """Logical shift left by a constant, width preserved."""
        pad = (CONST0,) * min(amount, self.width)
        return BitVec(self.circuit, (pad + self.nets)[: self.width])

    def shr_const(self, amount):
        """Logical shift right by a constant, width preserved."""
        pad = (CONST0,) * min(amount, self.width)
        return BitVec(self.circuit, (self.nets + pad)[amount : amount + self.width])

    def named(self, name):
        """Attach debug names ``name[i]`` to the nets; returns self."""
        for i, net in enumerate(self.nets):
            self.circuit.netlist.set_net_name(net, "{}[{}]".format(name, i))
        return self


class Reg:
    """A named register: flops created eagerly, next-state connected later.

    The D pins are placeholder nets; :meth:`drive` buffers the final
    next-state word onto them. Every register must be driven exactly once
    before the circuit is finalized.
    """

    __slots__ = ("circuit", "name", "q", "_d_nets", "_driven", "flop_indexes")

    def __init__(self, circuit, name, width, init):
        netlist = circuit.netlist
        d_nets = netlist.new_nets(width, "{}_d".format(name))
        flop_indexes = []
        q_nets = []
        for bit in range(width):
            q = netlist.add_flop(
                d_nets[bit],
                init=(init >> bit) & 1,
                name="{}[{}]".format(name, bit),
            )
            q_nets.append(q)
            flop_indexes.append(len(netlist.flops) - 1)
        netlist.add_register(name, flop_indexes)
        self.circuit = circuit
        self.name = name
        self.q = BitVec(circuit, q_nets)
        self._d_nets = d_nets
        self._driven = False
        self.flop_indexes = flop_indexes

    @property
    def width(self):
        return self.q.width

    def drive(self, next_value):
        """Connect the register's next-state logic (exactly once)."""
        if self._driven:
            raise NetlistError("register {!r} already driven".format(self.name))
        if next_value.width != self.width:
            raise WidthError(
                "register {!r} is {} bits, next value is {}".format(
                    self.name, self.width, next_value.width
                )
            )
        netlist = self.circuit.netlist
        for d_net, src in zip(self._d_nets, next_value.nets):
            netlist.add_cell(Kind.BUF, (src,), output=d_net)
        self._driven = True

    def hold_unless(self, *updates):
        """Drive with a priority mux chain: ``updates`` are (cond, value).

        The first matching condition wins; with no match the register holds
        its value. This is the idiom for "valid ways to update a register".
        """
        value = self.q
        for cond, new in reversed(updates):
            value = self.circuit.mux(cond, value, new)
        self.drive(value)


class Circuit:
    """Word-level builder wrapping a :class:`Netlist`."""

    def __init__(self, name="top"):
        self.netlist = Netlist(name)
        self._regs = {}
        # structural-hashing caches
        self._gate_cache = {}
        self._lut_cache = {}

    @classmethod
    def attach(cls, netlist):
        """Wrap an *existing* netlist so more logic can be added to it.

        Used by the monitor synthesizers: they clone a finished design and
        attach a fresh builder to append shadow registers and comparators.
        Structural-hash caches start empty (existing gates are not reused,
        which only costs a few duplicate gates).
        """
        circuit = cls.__new__(cls)
        circuit.netlist = netlist
        circuit._regs = {}
        circuit._gate_cache = {}
        circuit._lut_cache = {}
        return circuit

    def probe(self, name, value):
        """Expose a :class:`BitVec` as a named probe on the netlist."""
        self.netlist.add_probe(name, value.nets)
        return value

    # ----------------------------------------------------------- primitives

    def gate(self, kind, *inputs):
        """Add (or reuse, via structural hashing) a gate; returns output net.

        Constant folding handles the easy identities so generated designs do
        not drown in const-fed gates.
        """
        kind = Kind(kind)
        inputs = self._fold(kind, list(inputs))
        if isinstance(inputs, int):  # folded to a constant / existing net
            return inputs
        key = (kind, tuple(inputs))
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        out = self.netlist.add_cell(kind, inputs)
        self._gate_cache[key] = out
        return out

    def _fold(self, kind, ins):
        """Constant folding; returns a net id (int) when folded."""
        if kind is Kind.NOT:
            if ins[0] == CONST0:
                return CONST1
            if ins[0] == CONST1:
                return CONST0
            return ins
        if kind is Kind.BUF:
            return ins[0]
        if kind is Kind.MUX:
            sel, d0, d1 = ins
            if sel == CONST0:
                return d0
            if sel == CONST1:
                return d1
            if d0 == d1:
                return d0
            if d0 == CONST0 and d1 == CONST1:
                return sel
            return ins
        if kind is Kind.AND:
            if CONST0 in ins:
                return CONST0
            ins = sorted({n for n in ins if n != CONST1})
            if not ins:
                return CONST1
            if len(ins) == 1:
                return ins[0]
            return ins
        if kind is Kind.OR:
            if CONST1 in ins:
                return CONST1
            ins = sorted({n for n in ins if n != CONST0})
            if not ins:
                return CONST0
            if len(ins) == 1:
                return ins[0]
            return ins
        if kind is Kind.XOR:
            parity = ins.count(CONST1) & 1
            live = sorted(n for n in ins if n not in (CONST0, CONST1))
            # x ^ x = 0: drop pairs
            dedup = []
            for net in live:
                if dedup and dedup[-1] == net:
                    dedup.pop()
                else:
                    dedup.append(net)
            if not dedup:
                return CONST1 if parity else CONST0
            if parity:
                if len(dedup) == 1:
                    return self.gate(Kind.NOT, dedup[0])
                return self.gate(
                    Kind.NOT, self.gate(Kind.XOR, *dedup)
                )
            if len(dedup) == 1:
                return dedup[0]
            return dedup
        # NAND / NOR / XNOR: build as inverted base gate through the cache
        if kind is Kind.NAND:
            return self.gate(Kind.NOT, self.gate(Kind.AND, *ins))
        if kind is Kind.NOR:
            return self.gate(Kind.NOT, self.gate(Kind.OR, *ins))
        if kind is Kind.XNOR:
            return self.gate(Kind.NOT, self.gate(Kind.XOR, *ins))
        raise NetlistError("unknown gate kind {!r}".format(kind))  # pragma: no cover

    # -------------------------------------------------------------- values

    def input(self, name, width=1):
        """Declare an input port; returns its :class:`BitVec`."""
        return BitVec(self, self.netlist.add_input(name, width))

    def output(self, name, value):
        """Declare an output port driven by ``value``."""
        self.netlist.add_output(name, value.nets)
        return value

    def const(self, value, width):
        """Constant word (two's-complement truncation for negatives)."""
        value &= (1 << width) - 1
        return BitVec(
            self, [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]
        )

    def reg(self, name, width, init=0):
        """Declare a named register; connect it later with ``drive``."""
        reg = Reg(self, name, width, init)
        self._regs[name] = reg
        return reg

    def bv(self, nets):
        """Wrap raw net ids into a :class:`BitVec`."""
        return BitVec(self, nets)

    # ------------------------------------------------------------ operators

    def mux(self, sel, if_false, if_true):
        """Word-level mux: ``if_true`` when ``sel`` (1-bit) is 1."""
        if sel.width != 1:
            raise WidthError("mux select must be 1 bit")
        if if_false.width != if_true.width:
            raise WidthError(
                "mux arm widths differ: {} vs {}".format(
                    if_false.width, if_true.width
                )
            )
        s = sel.nets[0]
        return BitVec(
            self,
            [
                self.gate(Kind.MUX, s, a, b)
                for a, b in zip(if_false.nets, if_true.nets)
            ],
        )

    def select(self, default, *arms):
        """Priority select: ``arms`` are (cond, value); first match wins."""
        value = default
        for cond, arm in reversed(arms):
            value = self.mux(cond, value, arm)
        return value

    def word_select(self, sel, values):
        """Mux tree: returns ``values[sel]`` (register-file read port).

        ``values`` must have ``2**sel.width`` entries of equal width.
        """
        if len(values) != (1 << sel.width):
            raise WidthError(
                "need {} values for a {}-bit select, got {}".format(
                    1 << sel.width, sel.width, len(values)
                )
            )
        layer = list(values)
        for bit in range(sel.width):
            sel_bit = sel[bit]
            layer = [
                self.mux(sel_bit, layer[2 * i], layer[2 * i + 1])
                for i in range(len(layer) // 2)
            ]
        return layer[0]

    def _ripple_add(self, a, b, carry_in):
        """Ripple-carry adder; returns (sum BitVec, carry-out net)."""
        carry = carry_in
        bits = []
        for x, y in zip(a.nets, b.nets):
            bits.append(self.gate(Kind.XOR, x, y, carry))
            carry = self.gate(
                Kind.OR,
                self.gate(Kind.AND, x, y),
                self.gate(Kind.AND, carry, self.gate(Kind.OR, x, y)),
            )
        return BitVec(self, bits), BitVec(self, (carry,))

    def _ripple_sub(self, a, b):
        """a - b; returns (difference, borrow-out as 1-bit BitVec)."""
        diff, carry = self._ripple_add(a, ~b, CONST1)
        borrow = self.gate(Kind.NOT, carry.nets[0])
        return diff, BitVec(self, (borrow,))

    def true(self):
        return BitVec(self, (CONST1,))

    def false(self):
        return BitVec(self, (CONST0,))

    def any_of(self, *conds):
        """1-bit OR of 1-bit conditions."""
        return BitVec(self, (self.gate(Kind.OR, *(c.nets[0] for c in conds)),))

    def all_of(self, *conds):
        """1-bit AND of 1-bit conditions."""
        return BitVec(self, (self.gate(Kind.AND, *(c.nets[0] for c in conds)),))

    # ----------------------------------------------------------------- LUTs

    def lut(self, inputs, table):
        """Synthesize ``f(inputs)`` from a truth table (one output bit).

        ``table`` is an integer whose bit ``k`` is the function value for the
        input assignment ``k`` (inputs LSB-first). Synthesis is Shannon
        cofactoring on the highest variable with global memoization, which
        shares cofactors ROBDD-style across calls — this keeps the 16+4
        AES S-boxes to a few thousand gates instead of tens of thousands.
        """
        if isinstance(inputs, BitVec):
            inputs = list(inputs.nets)
        n = len(inputs)
        mask = (1 << (1 << n)) - 1
        return BitVec(self, (self._lut_node(tuple(inputs), table & mask),))

    def lut_word(self, inputs, values, out_width):
        """Synthesize a multi-bit LUT: ``values[k]`` is the output word."""
        if isinstance(inputs, BitVec):
            input_nets = list(inputs.nets)
        else:
            input_nets = list(inputs)
        n = len(input_nets)
        if len(values) != (1 << n):
            raise WidthError(
                "need {} table entries, got {}".format(1 << n, len(values))
            )
        bits = []
        for bit in range(out_width):
            table = 0
            for k, value in enumerate(values):
                if (value >> bit) & 1:
                    table |= 1 << k
            bits.append(self.lut(input_nets, table).nets[0])
        return BitVec(self, bits)

    def _lut_node(self, inputs, table):
        n = len(inputs)
        if n == 0:
            return CONST1 if table & 1 else CONST0
        full = (1 << (1 << n)) - 1
        if table == 0:
            return CONST0
        if table == full:
            return CONST1
        key = (inputs, table)
        cached = self._lut_cache.get(key)
        if cached is not None:
            return cached
        top = inputs[-1]
        rest = inputs[:-1]
        half = 1 << (n - 1)
        lo_mask = (1 << half) - 1
        f0 = table & lo_mask  # top = 0 cofactor
        f1 = (table >> half) & lo_mask  # top = 1 cofactor
        if f0 == f1:
            node = self._lut_node(rest, f0)
        else:
            n0 = self._lut_node(rest, f0)
            n1 = self._lut_node(rest, f1)
            node = self.gate(Kind.MUX, top, n0, n1)
        self._lut_cache[key] = node
        return node

    # ------------------------------------------------------------- finalize

    def finalize(self):
        """Check the circuit is fully built; returns the netlist.

        Verifies every register was driven and no allocated net is left
        floating (undriven nets that are never read are tolerated only if
        unnamed scratch).
        """
        for name, reg in self._regs.items():
            if not reg._driven:
                raise NetlistError("register {!r} never driven".format(name))
        return self.netlist
