"""Primitive cells of the netlist IR.

The IR is a flat gate-level netlist. Nets are integer ids; two ids are
reserved for the constants (``CONST0 = 0`` and ``CONST1 = 1``). Combinational
cells are instances of :class:`Cell`; state is held exclusively in
:class:`Flop` (a D flip-flop with an initial/reset value). Enables and
synchronous resets are expressed with muxes in front of the D pin, which
keeps the sequential primitive trivial for the formal engines.

Cell semantics (``MUX`` selects ``d1`` when ``sel`` is 1)::

    AND/OR/XOR/...   variadic (>= 1 input) reduction gates
    NOT/BUF          exactly one input
    MUX              inputs = (sel, d0, d1)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import NetlistError

CONST0 = 0
CONST1 = 1


class Kind(str, Enum):
    """Combinational cell kinds supported by the IR."""

    AND = "and"
    OR = "or"
    NOT = "not"
    BUF = "buf"
    XOR = "xor"
    XNOR = "xnor"
    NAND = "nand"
    NOR = "nor"
    MUX = "mux"

    def __str__(self):
        return self.value


_VARIADIC = {Kind.AND, Kind.OR, Kind.XOR, Kind.XNOR, Kind.NAND, Kind.NOR}
_UNARY = {Kind.NOT, Kind.BUF}


@dataclass(frozen=True, slots=True)
class Cell:
    """A combinational gate: ``output = kind(*inputs)``."""

    kind: Kind
    inputs: tuple
    output: int

    def __post_init__(self):
        if self.kind in _UNARY:
            if len(self.inputs) != 1:
                raise NetlistError(
                    "{} takes exactly 1 input, got {}".format(
                        self.kind, len(self.inputs)
                    )
                )
        elif self.kind is Kind.MUX:
            if len(self.inputs) != 3:
                raise NetlistError(
                    "mux takes (sel, d0, d1), got {} inputs".format(
                        len(self.inputs)
                    )
                )
        elif self.kind in _VARIADIC:
            if not self.inputs:
                raise NetlistError("{} needs at least one input".format(self.kind))
        else:  # pragma: no cover - enum is closed
            raise NetlistError("unknown cell kind {!r}".format(self.kind))

    def eval(self, values):
        """Evaluate on a mapping/sequence of net id -> word (Python int).

        Words are bit-parallel pattern vectors: bit ``k`` of every word is
        pattern ``k``. The caller masks results to the pattern width; this
        method returns an un-masked word for the inverting gates (callers
        apply ``& mask``).
        """
        kind = self.kind
        ins = self.inputs
        if kind is Kind.AND:
            acc = values[ins[0]]
            for net in ins[1:]:
                acc &= values[net]
            return acc
        if kind is Kind.OR:
            acc = values[ins[0]]
            for net in ins[1:]:
                acc |= values[net]
            return acc
        if kind is Kind.XOR:
            acc = values[ins[0]]
            for net in ins[1:]:
                acc ^= values[net]
            return acc
        if kind is Kind.NOT:
            return ~values[ins[0]]
        if kind is Kind.BUF:
            return values[ins[0]]
        if kind is Kind.MUX:
            sel = values[ins[0]]
            return (values[ins[1]] & ~sel) | (values[ins[2]] & sel)
        if kind is Kind.NAND:
            acc = values[ins[0]]
            for net in ins[1:]:
                acc &= values[net]
            return ~acc
        if kind is Kind.NOR:
            acc = values[ins[0]]
            for net in ins[1:]:
                acc |= values[net]
            return ~acc
        if kind is Kind.XNOR:
            acc = values[ins[0]]
            for net in ins[1:]:
                acc ^= values[net]
            return ~acc
        raise NetlistError("unknown cell kind {!r}".format(kind))  # pragma: no cover

    @property
    def is_inverting(self):
        return self.kind in (Kind.NOT, Kind.NAND, Kind.NOR, Kind.XNOR)


@dataclass(frozen=True, slots=True)
class Flop:
    """A D flip-flop: ``q`` takes the value of ``d`` at every clock edge.

    ``init`` is the power-on/reset value of ``q`` (0 or 1). The formal
    engines assume a known reset state, as the paper does (designs are reset
    before the bounded check and re-reset every T cycles, Section 3.2).
    """

    d: int
    q: int
    init: int = 0

    def __post_init__(self):
        if self.init not in (0, 1):
            raise NetlistError("flop init must be 0 or 1, got {!r}".format(self.init))
