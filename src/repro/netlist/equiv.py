"""SAT-based combinational equivalence checking (miter construction).

Used to verify netlist transformations (the optimizer, Verilog round
trips) preserve behaviour: both netlists' combinational functions — output
ports *and* flop next-state functions, over input ports and flop current
states — are compared with a miter. For netlists with matching register
structure this implies full sequential equivalence (same state transition
function and same initial state).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetlistError
from repro.sat.solver import SAT, UNSAT, Solver
from repro.sat.tseitin import CombEncoder, encode_xor2


@dataclass
class EquivResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    status: str  # "equivalent" / "different" / "unknown"
    mismatch: dict | None = None  # input/state assignment exposing the diff
    checked_points: int = 0

    def __bool__(self):
        return self.equivalent


def _comparison_points(netlist):
    """(label, net) pairs: every output bit and every flop D, plus the
    flop Q and input nets that form the shared support."""
    points = []
    for name, nets in netlist.outputs.items():
        for bit, net in enumerate(nets):
            points.append(("out:{}[{}]".format(name, bit), net))
    for index, flop in enumerate(netlist.flops):
        points.append(("flop{}:d".format(index), flop.d))
    return points


def check_equivalence(golden, revised, time_budget=None):
    """Prove the two netlists' transition/output functions identical.

    Requirements: same input ports (names and widths), same flop count in
    the same order with the same init values. Raises on structural
    mismatch; returns :class:`EquivResult` for functional verdicts.
    """
    if {n: len(v) for n, v in golden.inputs.items()} != {
        n: len(v) for n, v in revised.inputs.items()
    }:
        raise NetlistError("input port mismatch")
    if len(golden.flops) != len(revised.flops):
        raise NetlistError(
            "flop count mismatch: {} vs {}".format(
                len(golden.flops), len(revised.flops)
            )
        )
    for a, b in zip(golden.flops, revised.flops):
        if a.init != b.init:
            raise NetlistError("flop init mismatch")
    if sorted(golden.outputs) != sorted(revised.outputs):
        raise NetlistError("output port mismatch")

    solver = Solver()
    enc_a = CombEncoder(golden, solver)
    enc_b = CombEncoder(revised, solver)

    # tie the shared support together: inputs and flop Qs
    def tie(lit_a, lit_b):
        solver.add_clause([-lit_a, lit_b])
        solver.add_clause([lit_a, -lit_b])

    for name, nets in golden.inputs.items():
        for net_a, net_b in zip(nets, revised.inputs[name]):
            tie(enc_a.lit(net_a), enc_b.lit(net_b))
    for flop_a, flop_b in zip(golden.flops, revised.flops):
        tie(enc_a.lit(flop_a.q), enc_b.lit(flop_b.q))

    # miter: OR of XORs over all comparison points
    points_a = _comparison_points(golden)
    points_b = _comparison_points(revised)
    if [label for label, _ in points_a] != [label for label, _ in points_b]:
        raise NetlistError("comparison point mismatch")
    diffs = []
    for (label, net_a), (_label, net_b) in zip(points_a, points_b):
        diff = solver.new_var()
        encode_xor2(solver, diff, enc_a.lit(net_a), enc_b.lit(net_b))
        diffs.append(diff)
    solver.add_clause(diffs)

    result = solver.solve(time_budget=time_budget)
    if result.status == UNSAT:
        return EquivResult(
            equivalent=True, status="equivalent",
            checked_points=len(diffs),
        )
    if result.status != SAT:
        return EquivResult(
            equivalent=False, status="unknown", checked_points=len(diffs)
        )
    # decode the distinguishing assignment
    mismatch = {}
    model = result.model

    def value_of(lit):
        truth = model[abs(lit)]
        return int(truth if lit > 0 else not truth)

    for name, nets in golden.inputs.items():
        mismatch[name] = sum(
            value_of(enc_a.lit(net)) << bit for bit, net in enumerate(nets)
        )
    for index, flop in enumerate(golden.flops):
        mismatch["flop{}".format(index)] = value_of(enc_a.lit(flop.q))
    return EquivResult(
        equivalent=False, status="different", mismatch=mismatch,
        checked_points=len(diffs),
    )
