"""Canonical structural fingerprints of netlists.

The outcome cache (:mod:`repro.cache`) is content-addressed: a cached
verdict is only ever replayed for a design that is *structurally
identical* to the one it was computed on. :func:`netlist_fingerprint`
produces that identity — a SHA-256 over a canonical serialization of
everything that affects the semantics of a :class:`Netlist`:

* the net-id space (``num_nets``; ids are allocated deterministically by
  the builders, so equal construction order implies equal ids),
* every combinational cell (kind, input nets, output net, in order),
* every flop (D net, Q net, reset value, in order),
* input and output ports — names, widths and net bindings, *in
  declaration order* (port order is part of the witness format),
* named registers and probes — their flop indexes / nets in declaration
  order, **without** their names.

Deliberately **excluded**: debug net names and register/probe names.
Monitor synthesis prefixes its nets and registers with a process-global
counter (``__mon<N>_...``), so two builds of the same monitor in one
process carry different names while being bit-for-bit the same circuit;
names never affect a verdict.

Any structural edit — one extra gate, a rewired flop D, a changed reset
value, a reordered port — yields a different fingerprint, which is the
cache-invalidation story: there is none, because a modified design is a
different key.
"""

from __future__ import annotations

import hashlib

_FINGERPRINT_VERSION = "nlfp1"


def _hash_update(h, *parts):
    for part in parts:
        h.update(str(part).encode("utf-8"))
        h.update(b"\x1f")  # unit separator: no concatenation ambiguity


def netlist_fingerprint(netlist):
    """Stable hex digest of a netlist's structure (names excluded)."""
    h = hashlib.sha256()
    _hash_update(h, _FINGERPRINT_VERSION, netlist.num_nets)
    _hash_update(h, "cells", len(netlist.cells))
    for cell in netlist.cells:
        _hash_update(h, cell.kind.name, cell.output, *cell.inputs)
    _hash_update(h, "flops", len(netlist.flops))
    for flop in netlist.flops:
        _hash_update(h, flop.d, flop.q, flop.init)
    for section in ("inputs", "outputs"):
        ports = getattr(netlist, section)
        _hash_update(h, section, len(ports))
        for name, nets in ports.items():
            _hash_update(h, name, *nets)
    # register/probe *names* are reporting metadata and carry the monitor
    # builders' per-process unique prefixes — hash only their structure
    _hash_update(h, "registers", len(netlist.registers))
    for idxs in netlist.registers.values():
        _hash_update(h, "r", *idxs)
    _hash_update(h, "probes", len(netlist.probes))
    for nets in netlist.probes.values():
        _hash_update(h, "p", *nets)
    return h.hexdigest()


def objective_fingerprint(objective_net, pinned_inputs=None):
    """Digest of *what is being asked* of a design: the 1-bit objective
    net plus any pinned input words (they constrain the reachable space,
    so a check with ``reset`` pinned must never satisfy one without)."""
    h = hashlib.sha256()
    _hash_update(h, "obj1", objective_net)
    pinned = pinned_inputs or {}
    for name in sorted(pinned):
        _hash_update(h, name, pinned[name])
    return h.hexdigest()


def config_fingerprint(engine, use_coi=True, **extra):
    """Digest of the engine configuration a verdict depends on.

    Budgets are deliberately not part of the key: a ``proved``/
    ``violated`` verdict is valid however long it took, and an
    ``unknown`` is never cached. ``use_coi`` is included defensively —
    cone reduction is sound, but keying on it keeps an ablation run from
    polluting the default-config cache.
    """
    h = hashlib.sha256()
    _hash_update(h, "cfg1", engine, int(bool(use_coi)))
    for name in sorted(extra):
        _hash_update(h, name, extra[name])
    return h.hexdigest()
