"""Flat gate-level netlist container.

A :class:`Netlist` owns:

* a pool of nets (integer ids; ids 0 and 1 are the constants),
* combinational :class:`~repro.netlist.cells.Cell` instances,
* sequential :class:`~repro.netlist.cells.Flop` instances,
* named multi-bit input/output ports, and
* named *registers* — ordered groups of flops (LSB first). Registers are the
  unit the paper's properties talk about ("the stack pointer", "the key
  register"); grouping them here lets the detector enumerate candidate
  critical / pseudo-critical registers by name.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.cells import CONST0, CONST1, Cell, Flop, Kind


class Netlist:
    """A flat gate-level design with named ports and registers."""

    def __init__(self, name="top"):
        self.name = name
        self._num_nets = 2  # nets 0 and 1 are const0/const1
        self._net_names = {CONST0: "1'b0", CONST1: "1'b1"}
        self.cells = []
        self.flops = []
        # port name -> list of net ids, LSB first
        self.inputs = {}
        self.outputs = {}
        # register name -> list of flop indexes, LSB first
        self.registers = {}
        # named probe points: internal signals a spec's conditions refer to
        # (decoded opcodes, phase indicators, ...), name -> list of net ids
        self.probes = {}
        # net id -> ("cell"|"flop"|"input"|"const", index) driver record
        self._driver = {
            CONST0: ("const", 0),
            CONST1: ("const", 1),
        }

    # ------------------------------------------------------------------ nets

    @property
    def num_nets(self):
        return self._num_nets

    def new_net(self, name=None):
        """Allocate a fresh net id, optionally recording a debug name."""
        net = self._num_nets
        self._num_nets += 1
        if name is not None:
            self._net_names[net] = name
        return net

    def new_nets(self, count, name=None):
        """Allocate ``count`` nets; named ``name[i]`` when a name is given."""
        if name is None:
            return [self.new_net() for _ in range(count)]
        return [self.new_net("{}[{}]".format(name, i)) for i in range(count)]

    def reserve_nets(self, count):
        """Grow the net pool so ids ``[0, count)`` all exist.

        Importers (design bundles, pragma-preserving Verilog) re-create
        netlists whose net ids were fixed by the original allocation;
        they reserve the pool up front and then attach drivers to
        explicit ids via ``add_cell(output=...)`` / ``add_flop(q=...)``
        / :meth:`bind_input`.
        """
        count = int(count)
        if count > self._num_nets:
            self._num_nets = count
        return self._num_nets

    def bind_input(self, name, nets):
        """Declare an input port over *existing* undriven nets.

        The importer counterpart of :meth:`add_input`, which would
        allocate fresh ids.
        """
        if name in self.inputs or name in self.outputs:
            raise NetlistError("duplicate port name {!r}".format(name))
        nets = list(nets)
        for net in nets:
            self._check_net(net)
            if net in self._driver:
                raise NetlistError(
                    "net {} ({}) already driven".format(
                        net, self.net_name(net)
                    )
                )
        for net in nets:
            self._driver[net] = ("input", name)
        self.inputs[name] = nets
        return nets

    def net_name(self, net):
        return self._net_names.get(net, "n{}".format(net))

    def set_net_name(self, net, name):
        self._check_net(net)
        self._net_names[net] = name

    def _check_net(self, net):
        if not isinstance(net, int) or not 0 <= net < self._num_nets:
            raise NetlistError("invalid net id {!r}".format(net))

    # ----------------------------------------------------------------- cells

    def add_cell(self, kind, inputs, output=None, name=None):
        """Add a combinational gate; returns its output net id."""
        if output is None:
            output = self.new_net(name)
        else:
            self._check_net(output)
        for net in inputs:
            self._check_net(net)
        if output in self._driver:
            raise NetlistError(
                "net {} ({}) already driven".format(output, self.net_name(output))
            )
        cell = Cell(Kind(kind), tuple(inputs), output)
        self._driver[output] = ("cell", len(self.cells))
        self.cells.append(cell)
        return output

    def add_flop(self, d, q=None, init=0, name=None):
        """Add a D flip-flop; returns its q net id."""
        self._check_net(d)
        if q is None:
            q = self.new_net(name)
        else:
            self._check_net(q)
        if q in self._driver:
            raise NetlistError(
                "net {} ({}) already driven".format(q, self.net_name(q))
            )
        flop = Flop(d, q, init)
        self._driver[q] = ("flop", len(self.flops))
        self.flops.append(flop)
        return q

    def rewire_flop_d(self, flop_index, new_d):
        """Replace the D input of a flop (used by Trojan payload insertion)."""
        self._check_net(new_d)
        old = self.flops[flop_index]
        self.flops[flop_index] = Flop(new_d, old.q, old.init)

    # ----------------------------------------------------------------- ports

    def add_input(self, name, width=1):
        """Declare an input port; returns its net ids (LSB first)."""
        if name in self.inputs or name in self.outputs:
            raise NetlistError("duplicate port name {!r}".format(name))
        nets = self.new_nets(width, name)
        for net in nets:
            self._driver[net] = ("input", name)
        self.inputs[name] = nets
        return nets

    def add_output(self, name, nets):
        """Declare an output port over existing nets (LSB first)."""
        if name in self.inputs or name in self.outputs:
            raise NetlistError("duplicate port name {!r}".format(name))
        nets = list(nets)
        for net in nets:
            self._check_net(net)
        self.outputs[name] = nets
        return nets

    # ------------------------------------------------------------- registers

    def add_register(self, name, flop_indexes):
        """Group existing flops into a named register (LSB first)."""
        if name in self.registers:
            raise NetlistError("duplicate register name {!r}".format(name))
        flop_indexes = list(flop_indexes)
        for idx in flop_indexes:
            if not 0 <= idx < len(self.flops):
                raise NetlistError("invalid flop index {!r}".format(idx))
        self.registers[name] = flop_indexes
        return flop_indexes

    def register_q_nets(self, name):
        """Q nets of a named register, LSB first."""
        return [self.flops[i].q for i in self._register(name)]

    def register_d_nets(self, name):
        """D nets of a named register, LSB first."""
        return [self.flops[i].d for i in self._register(name)]

    def register_width(self, name):
        return len(self._register(name))

    def register_init(self, name):
        """Reset value of a register as an integer."""
        value = 0
        for bit, idx in enumerate(self._register(name)):
            value |= self.flops[idx].init << bit
        return value

    def _register(self, name):
        try:
            return self.registers[name]
        except KeyError:
            raise NetlistError("no register named {!r}".format(name)) from None

    # ---------------------------------------------------------------- probes

    def add_probe(self, name, nets):
        """Expose internal nets under a name for property conditions."""
        if name in self.probes:
            raise NetlistError("duplicate probe name {!r}".format(name))
        nets = list(nets)
        for net in nets:
            self._check_net(net)
        self.probes[name] = nets
        return nets

    def probe_nets(self, name):
        try:
            return self.probes[name]
        except KeyError:
            raise NetlistError("no probe named {!r}".format(name)) from None

    # ----------------------------------------------------------------- clone

    def clone(self):
        """Deep-enough copy: cells/flops are immutable and shared; all
        containers are fresh, so the clone can be augmented or rewired
        without touching the original."""
        twin = Netlist(self.name)
        twin._num_nets = self._num_nets
        twin._net_names = dict(self._net_names)
        twin.cells = list(self.cells)
        twin.flops = list(self.flops)
        twin.inputs = {k: list(v) for k, v in self.inputs.items()}
        twin.outputs = {k: list(v) for k, v in self.outputs.items()}
        twin.registers = {k: list(v) for k, v in self.registers.items()}
        twin.probes = {k: list(v) for k, v in self.probes.items()}
        twin._driver = dict(self._driver)
        return twin

    # ----------------------------------------------------------------- query

    def driver_of(self, net):
        """Driver record ``(kind, payload)`` of a net.

        ``kind`` is one of ``"cell"`` (payload = cell index), ``"flop"``
        (payload = flop index), ``"input"`` (payload = port name),
        ``"const"`` (payload = 0/1). Undriven nets raise.
        """
        self._check_net(net)
        try:
            return self._driver[net]
        except KeyError:
            raise NetlistError(
                "net {} ({}) has no driver".format(net, self.net_name(net))
            ) from None

    def is_driven(self, net):
        return net in self._driver

    def undriven_nets(self):
        """Net ids that were allocated but never driven."""
        return [n for n in range(self._num_nets) if n not in self._driver]

    def input_net_set(self):
        nets = set()
        for bits in self.inputs.values():
            nets.update(bits)
        return nets

    def flop_q_set(self):
        return {f.q for f in self.flops}

    def register_of_flop(self):
        """Map flop index -> (register name, bit position); ungrouped flops absent."""
        mapping = {}
        for name, idxs in self.registers.items():
            for bit, idx in enumerate(idxs):
                mapping[idx] = (name, bit)
        return mapping

    def __repr__(self):
        return (
            "Netlist({!r}: {} nets, {} cells, {} flops, "
            "{} inputs, {} outputs, {} registers)".format(
                self.name,
                self._num_nets,
                len(self.cells),
                len(self.flops),
                len(self.inputs),
                len(self.outputs),
                len(self.registers),
            )
        )
