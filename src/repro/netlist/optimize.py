"""Netlist optimization: constant propagation, dead-logic sweep, and
structural hashing over finished netlists.

Monitor synthesis, Trojan splicing and the attack transformations all
leave redundancy behind (constant-fed gates, duplicated comparators,
unread scratch logic). :func:`optimize` cleans a netlist in place-like
fashion — it returns a *new* netlist plus a net remap — which shrinks the
engines' encodings. The pass is verified by the SAT equivalence checker in
the test suite: optimization must never change the sequential behaviour.

Passes (to fixpoint):

1. constant propagation — gates with constant inputs fold (same rules the
   builder applies during construction, now applicable after rewiring);
2. structural hashing — identical (kind, inputs) gates merge;
3. dead sweep — cells/flops driving nothing observable (outputs, probes,
   register groups) are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.cells import CONST0, CONST1, Kind
from repro.netlist.netlist import Netlist
from repro.netlist.traversal import topological_cells


@dataclass
class OptimizeStats:
    """What the optimizer removed."""

    cells_before: int = 0
    cells_after: int = 0
    flops_before: int = 0
    flops_after: int = 0
    folded: int = 0
    merged: int = 0
    swept: int = 0
    rounds: int = 0
    net_map: dict = field(default_factory=dict)

    def __str__(self):
        return (
            "optimize: cells {} -> {} (folded {}, merged {}, swept {}), "
            "flops {} -> {}, {} rounds".format(
                self.cells_before, self.cells_after, self.folded,
                self.merged, self.swept, self.flops_before,
                self.flops_after, self.rounds,
            )
        )


def _fold_cell(kind, ins):
    """Return a replacement net id if the cell folds, else None."""
    if kind is Kind.BUF:
        return ins[0]
    if kind is Kind.NOT:
        if ins[0] == CONST0:
            return CONST1
        if ins[0] == CONST1:
            return CONST0
        return None
    if kind is Kind.AND:
        if CONST0 in ins:
            return CONST0
        live = [n for n in ins if n != CONST1]
        if not live:
            return CONST1
        if len(set(live)) == 1:
            return live[0]
        return None
    if kind is Kind.OR:
        if CONST1 in ins:
            return CONST1
        live = [n for n in ins if n != CONST0]
        if not live:
            return CONST0
        if len(set(live)) == 1:
            return live[0]
        return None
    if kind is Kind.XOR:
        if all(n in (CONST0, CONST1) for n in ins):
            parity = sum(1 for n in ins if n == CONST1) & 1
            return CONST1 if parity else CONST0
        if len(ins) == 2:
            if ins[0] == CONST0:
                return ins[1]
            if ins[1] == CONST0:
                return ins[0]
            if ins[0] == ins[1]:
                return CONST0
        return None
    if kind is Kind.MUX:
        sel, d0, d1 = ins
        if sel == CONST0:
            return d0
        if sel == CONST1:
            return d1
        if d0 == d1:
            return d0
        return None
    return None  # NAND/NOR/XNOR left to hashing (rare after the builder)


def optimize(netlist, keep_probes=True, max_rounds=8):
    """Return ``(optimized netlist, OptimizeStats)``.

    Ports, register groups and (by default) probes are preserved; their
    nets are the sweep roots.
    """
    stats = OptimizeStats(
        cells_before=len(netlist.cells),
        flops_before=len(netlist.flops),
    )
    # net -> replacement net (union-find-ish, path compressed on read)
    replace = {}

    def resolve(net):
        while net in replace:
            net = replace[net]
        return net

    cells = {cell.output: (cell.kind, tuple(cell.inputs))
             for cell in netlist.cells}
    flops = [(flop.d, flop.q, flop.init) for flop in netlist.flops]

    for round_index in range(max_rounds):
        changed = False
        hashed = {}
        for out in list(cells):
            kind, ins = cells[out]
            new_ins = tuple(resolve(n) for n in ins)
            folded = _fold_cell(kind, new_ins)
            if folded is not None:
                replace[out] = folded
                del cells[out]
                stats.folded += 1
                changed = True
                continue
            key = (kind, new_ins)
            twin = hashed.get(key)
            if twin is not None and twin != out:
                replace[out] = twin
                del cells[out]
                stats.merged += 1
                changed = True
                continue
            hashed[key] = out
            if new_ins != ins:
                cells[out] = (kind, new_ins)
                changed = True
        stats.rounds = round_index + 1
        if not changed:
            break

    # roots: outputs, register flops, probes
    roots = set()
    for nets in netlist.outputs.values():
        roots.update(resolve(n) for n in nets)
    kept_flop_idx = set()
    for idxs in netlist.registers.values():
        kept_flop_idx.update(idxs)
    if keep_probes:
        for nets in netlist.probes.values():
            roots.update(resolve(n) for n in nets)
    for idx in kept_flop_idx:
        roots.add(resolve(flops[idx][1]))

    # mark live cells/flops backwards
    live = set(roots)
    frontier = list(roots)
    flop_by_q = {resolve(q): (resolve(d), idx)
                 for idx, (d, q, _i) in enumerate(flops)}
    live_flops = set(kept_flop_idx)
    while frontier:
        net = frontier.pop()
        entry = cells.get(net)
        if entry is not None:
            for source in entry[1]:
                source = resolve(source)
                if source not in live:
                    live.add(source)
                    frontier.append(source)
            continue
        flop_entry = flop_by_q.get(net)
        if flop_entry is not None:
            d_net, idx = flop_entry
            live_flops.add(idx)
            if d_net not in live:
                live.add(d_net)
                frontier.append(d_net)
    # flops kept alive need their d-cones too
    pending = list(live_flops)
    seen_flops = set()
    while pending:
        idx = pending.pop()
        if idx in seen_flops:
            continue
        seen_flops.add(idx)
        d_net = resolve(flops[idx][0])
        if d_net not in live:
            live.add(d_net)
            frontier = [d_net]
            while frontier:
                net = frontier.pop()
                entry = cells.get(net)
                if entry is not None:
                    for source in entry[1]:
                        source = resolve(source)
                        if source not in live:
                            live.add(source)
                            frontier.append(source)
                    continue
                flop_entry = flop_by_q.get(net)
                if flop_entry is not None:
                    _d, fidx = flop_entry
                    if fidx not in seen_flops:
                        live_flops.add(fidx)
                        pending.append(fidx)

    # rebuild
    out = Netlist(netlist.name)
    net_map = {CONST0: CONST0, CONST1: CONST1}
    for name, nets in netlist.inputs.items():
        new_nets = out.add_input(name, len(nets))
        for old, new in zip(nets, new_nets):
            net_map[old] = new

    def mapped(net):
        net = resolve(net)
        if net not in net_map:
            net_map[net] = out.new_net(netlist.net_name(net))
        return net_map[net]

    # flops first (q nets must exist before cells read them)
    flop_index_map = {}
    for idx in sorted(seen_flops):
        d, q, init = flops[idx]
        q_new = mapped(q)
        # d filled later; reserve with a placeholder net now
        flop_index_map[idx] = (d, q_new, init)
    # order cells topologically in the ORIGINAL netlist and emit live ones
    order = topological_cells(netlist)
    emitted = 0
    for cell_idx in order:
        cell = netlist.cells[cell_idx]
        if cell.output in replace or cell.output not in cells:
            continue
        if resolve(cell.output) not in live:
            continue
        kind, ins = cells[cell.output]
        out.add_cell(kind, tuple(mapped(n) for n in ins),
                     output=mapped(cell.output))
        emitted += 1
    for idx in sorted(seen_flops):
        d, q_new, init = flop_index_map[idx]
        out.add_flop(mapped(d), q=q_new, init=init)
    # flop index remap for register groups
    new_flop_of_old = {
        old: position for position, old in enumerate(sorted(seen_flops))
    }
    for name, idxs in netlist.registers.items():
        out.add_register(name, [new_flop_of_old[i] for i in idxs])
    for name, nets in netlist.outputs.items():
        out.add_output(name, [mapped(n) for n in nets])
    if keep_probes:
        for name, nets in netlist.probes.items():
            out.add_probe(name, [mapped(n) for n in nets])

    stats.cells_after = emitted
    stats.flops_after = len(seen_flops)
    stats.swept = stats.cells_before - stats.folded - stats.merged - emitted
    stats.net_map = net_map
    return out, stats
