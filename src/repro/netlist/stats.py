"""Netlist statistics: gate counts, depth, register inventory.

These are the numbers a hardware engineer quotes about a design ("~8k gates,
depth 42, 19 registers / 310 flops") and what the benchmark harness records
next to every experiment.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.netlist.traversal import fanout_map, levelize, topological_cells


@dataclass
class NetlistStats:
    """Summary statistics for a netlist."""

    name: str
    num_nets: int
    num_cells: int
    num_flops: int
    num_registers: int
    depth: int
    cells_by_kind: dict = field(default_factory=dict)
    registers: dict = field(default_factory=dict)  # name -> width
    input_bits: int = 0
    output_bits: int = 0
    max_fanout: int = 0
    max_fanout_net: str = ""

    def __str__(self):
        kinds = ", ".join(
            "{}:{}".format(k, v) for k, v in sorted(self.cells_by_kind.items())
        )
        return (
            "{}: {} cells ({}), {} flops in {} registers, depth {}, "
            "max fan-out {} ({}), {} input bits, {} output bits".format(
                self.name,
                self.num_cells,
                kinds,
                self.num_flops,
                self.num_registers,
                self.depth,
                self.max_fanout,
                self.max_fanout_net or "-",
                self.input_bits,
                self.output_bits,
            )
        )


def stats(netlist):
    """Compute :class:`NetlistStats` for a netlist."""
    order = topological_cells(netlist)
    level = levelize(netlist, order)
    depth = max(level.values(), default=0)
    kinds = Counter(str(cell.kind) for cell in netlist.cells)
    max_fanout = 0
    max_fanout_net = ""
    for net, consumers in fanout_map(netlist).items():
        if net in (0, 1):
            continue  # constant fan-out is not a design property
        if len(consumers) > max_fanout:
            max_fanout = len(consumers)
            max_fanout_net = netlist.net_name(net)
    return NetlistStats(
        name=netlist.name,
        num_nets=netlist.num_nets,
        num_cells=len(netlist.cells),
        num_flops=len(netlist.flops),
        num_registers=len(netlist.registers),
        depth=depth,
        cells_by_kind=dict(kinds),
        registers={
            name: len(idxs) for name, idxs in netlist.registers.items()
        },
        input_bits=sum(len(v) for v in netlist.inputs.values()),
        output_bits=sum(len(v) for v in netlist.outputs.values()),
        max_fanout=max_fanout,
        max_fanout_net=max_fanout_net,
    )
