"""Netlist traversal: levelization, cones, and cone-of-influence.

The formal engines never unroll the whole design; they unroll the
*cone of influence* (COI) of the property nets. This module provides the
structural queries everything else is built on:

* :func:`topological_cells` — combinational cells in evaluation order
  (raises on combinational loops),
* :func:`levelize` — per-net logic depth,
* :func:`fanin_cone` / :func:`fanout_cone` — combinational cones,
* :func:`cone_of_influence` — sequential COI (follows flops backwards),
* :func:`transitive_fanout_outputs` — output ports reachable from nets.
"""

from __future__ import annotations

from collections import deque

from repro.errors import CombinationalLoopError


def topological_cells(netlist):
    """Indexes of combinational cells in a valid evaluation order.

    Kahn's algorithm over the cell dependency graph. Inputs, constants and
    flop Q pins are sources. Raises :class:`CombinationalLoopError` if the
    combinational logic is cyclic.
    """
    cells = netlist.cells
    # net -> list of cell indexes that consume it
    consumers = {}
    indegree = [0] * len(cells)
    for idx, cell in enumerate(cells):
        for net in set(cell.inputs):
            kind, _ = netlist.driver_of(net)
            if kind == "cell":
                indegree[idx] += 1
                consumers.setdefault(net, []).append(idx)
    ready = deque(idx for idx, deg in enumerate(indegree) if deg == 0)
    order = []
    while ready:
        idx = ready.popleft()
        order.append(idx)
        for consumer in consumers.get(cells[idx].output, ()):
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                ready.append(consumer)
    if len(order) != len(cells):
        looped = [cells[i].output for i, d in enumerate(indegree) if d > 0]
        raise CombinationalLoopError(looped)
    return order


def levelize(netlist, order=None):
    """Map net id -> combinational depth (sources are level 0)."""
    if order is None:
        order = topological_cells(netlist)
    level = {0: 0, 1: 0}
    for nets in netlist.inputs.values():
        for net in nets:
            level[net] = 0
    for flop in netlist.flops:
        level[flop.q] = 0
    for idx in order:
        cell = netlist.cells[idx]
        level[cell.output] = 1 + max(level[net] for net in cell.inputs)
    return level


def fanin_cone(netlist, nets, through_flops=False):
    """Set of nets in the transitive fan-in of ``nets``.

    With ``through_flops`` the traversal continues from a flop's Q to its D
    (i.e. crosses register boundaries); otherwise flop Q pins are frontier
    sources, which gives the purely combinational cone.
    """
    seen = set()
    stack = list(nets)
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        kind, payload = netlist.driver_of(net)
        if kind == "cell":
            stack.extend(netlist.cells[payload].inputs)
        elif kind == "flop" and through_flops:
            stack.append(netlist.flops[payload].d)
    return seen


def cone_of_influence(netlist, nets):
    """Sequential cone of influence of ``nets``.

    Returns ``(net_set, cell_indexes, flop_indexes)`` where ``cell_indexes``
    is in topological order restricted to the cone. This is the slice of the
    design the BMC/ATPG engines unroll for a property over ``nets``.
    """
    net_set = fanin_cone(netlist, nets, through_flops=True)
    flop_indexes = [
        idx for idx, flop in enumerate(netlist.flops) if flop.q in net_set
    ]
    order = topological_cells(netlist)
    cell_indexes = [
        idx for idx in order if netlist.cells[idx].output in net_set
    ]
    return net_set, cell_indexes, flop_indexes


def fanout_map(netlist):
    """Map net id -> list of (consumer kind, index) records.

    Consumer kinds are ``"cell"`` (cell index), ``"flop"`` (flop index) and
    ``"output"`` (port name).
    """
    fanout = {}
    for idx, cell in enumerate(netlist.cells):
        for net in cell.inputs:
            fanout.setdefault(net, []).append(("cell", idx))
    for idx, flop in enumerate(netlist.flops):
        fanout.setdefault(flop.d, []).append(("flop", idx))
    for name, nets in netlist.outputs.items():
        for net in nets:
            fanout.setdefault(net, []).append(("output", name))
    return fanout


def fanout_cone(netlist, nets, through_flops=True, fanout=None):
    """Set of nets in the transitive fan-out of ``nets``."""
    if fanout is None:
        fanout = fanout_map(netlist)
    seen = set()
    stack = list(nets)
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        for kind, payload in fanout.get(net, ()):
            if kind == "cell":
                stack.append(netlist.cells[payload].output)
            elif kind == "flop" and through_flops:
                stack.append(netlist.flops[payload].q)
    return seen


def transitive_fanout_outputs(netlist, nets, through_flops=True):
    """Names of output ports reachable from ``nets``."""
    cone = fanout_cone(netlist, nets, through_flops=through_flops)
    reached = []
    for name, port_nets in netlist.outputs.items():
        if any(net in cone for net in port_nets):
            reached.append(name)
    return reached


def registers_reading(netlist, register_name):
    """Register names whose D logic reads the Q of ``register_name``.

    Used by the detector to rank pseudo-critical candidates: a register fed
    combinationally by the critical register is the natural suspect.
    """
    q_nets = set(netlist.register_q_nets(register_name))
    readers = []
    for name, idxs in netlist.registers.items():
        if name == register_name:
            continue
        d_nets = [netlist.flops[i].d for i in idxs]
        cone = fanin_cone(netlist, d_nets, through_flops=False)
        if cone & q_nets:
            readers.append(name)
    return readers
