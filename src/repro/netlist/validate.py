"""Structural validation of netlists.

:func:`validate` performs the checks a downstream tool relies on before
simulation or formal analysis: every read net is driven, no net has two
drivers (enforced at construction), the combinational logic is acyclic, and
port/register bookkeeping is consistent. It returns a :class:`ValidationReport`
and raises on hard errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetlistError
from repro.netlist.traversal import topological_cells


@dataclass
class ValidationReport:
    """Outcome of :func:`validate`."""

    ok: bool = True
    floating_nets: list = field(default_factory=list)
    unread_nets: list = field(default_factory=list)
    messages: list = field(default_factory=list)

    def __str__(self):
        lines = ["valid" if self.ok else "INVALID"]
        lines.extend(self.messages)
        if self.floating_nets:
            lines.append("floating nets: {}".format(self.floating_nets[:10]))
        if self.unread_nets:
            lines.append("{} unread nets".format(len(self.unread_nets)))
        return "\n".join(lines)


def validate(netlist, allow_floating=False):
    """Validate a netlist; raises :class:`NetlistError` on hard problems.

    Hard problems: a *read* net without a driver, or a combinational loop
    (raised by the topological sort). Allocated-but-undriven nets that are
    also never read are reported but tolerated (scratch allocations).
    """
    report = ValidationReport()

    read = set()
    for cell in netlist.cells:
        read.update(cell.inputs)
    for flop in netlist.flops:
        read.add(flop.d)
    for nets in netlist.outputs.values():
        read.update(nets)

    for net in read:
        if not netlist.is_driven(net):
            raise NetlistError(
                "net {} ({}) is read but has no driver".format(
                    net, netlist.net_name(net)
                )
            )

    floating = [n for n in netlist.undriven_nets() if n not in read]
    if floating:
        report.floating_nets = floating
        if not allow_floating:
            raise NetlistError(
                "{} allocated nets are floating (first: {})".format(
                    len(floating),
                    [netlist.net_name(n) for n in floating[:5]],
                )
            )

    driven = set(range(2)) | netlist.input_net_set() | netlist.flop_q_set()
    driven.update(cell.output for cell in netlist.cells)
    report.unread_nets = sorted(driven - read - set(range(2)))

    # raises CombinationalLoopError on cyclic logic
    topological_cells(netlist)

    for name, idxs in netlist.registers.items():
        for idx in idxs:
            if not 0 <= idx < len(netlist.flops):
                raise NetlistError(
                    "register {!r} references invalid flop {}".format(name, idx)
                )

    report.messages.append(
        "{} cells, {} flops, {} registers".format(
            len(netlist.cells), len(netlist.flops), len(netlist.registers)
        )
    )
    return report
