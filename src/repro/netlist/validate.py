"""Structural validation of netlists.

:func:`validate` performs the checks a downstream tool relies on before
simulation or formal analysis: every read net is driven, no net has two
drivers (enforced at construction), the combinational logic is acyclic, and
port/register bookkeeping is consistent. It returns a :class:`ValidationReport`
and raises on hard errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetlistError
from repro.netlist.traversal import topological_cells


@dataclass
class ValidationReport:
    """Outcome of :func:`validate`."""

    ok: bool = True
    floating_nets: list = field(default_factory=list)
    unread_nets: list = field(default_factory=list)
    messages: list = field(default_factory=list)
    # net id -> debug name, filled by validate() so describe(verbose=True)
    # can print names without holding the netlist
    net_names: dict = field(default_factory=dict)

    def _name(self, net):
        return self.net_names.get(net, "n{}".format(net))

    def describe(self, verbose=False):
        """Multi-line report; ``verbose`` lists every net by name.

        The default shows a sample of at most 10 floating nets *and* the
        total count, so a thousand-net problem is never mistaken for a
        ten-net one.
        """
        lines = ["valid" if self.ok else "INVALID"]
        lines.extend(self.messages)
        if self.floating_nets:
            shown = self.floating_nets if verbose else self.floating_nets[:10]
            lines.append(
                "{} floating nets{}: {}{}".format(
                    len(self.floating_nets),
                    "" if verbose else " (showing {})".format(len(shown)),
                    [self._name(n) for n in shown],
                    "" if verbose or len(shown) == len(self.floating_nets)
                    else " ...",
                )
            )
        if self.unread_nets:
            line = "{} unread nets".format(len(self.unread_nets))
            if verbose:
                line += ": {}".format(
                    [self._name(n) for n in self.unread_nets]
                )
            lines.append(line)
        return "\n".join(lines)

    def __str__(self):
        return self.describe(verbose=False)


def validate(netlist, allow_floating=False):
    """Validate a netlist; raises :class:`NetlistError` on hard problems.

    Hard problems: a *read* net without a driver, or a combinational loop
    (raised by the topological sort). Allocated-but-undriven nets that are
    also never read are reported but tolerated (scratch allocations).
    """
    report = ValidationReport()

    read = set()
    for cell in netlist.cells:
        read.update(cell.inputs)
    for flop in netlist.flops:
        read.add(flop.d)
    for nets in netlist.outputs.values():
        read.update(nets)

    for net in read:
        if not netlist.is_driven(net):
            raise NetlistError(
                "net {} ({}) is read but has no driver".format(
                    net, netlist.net_name(net)
                )
            )

    floating = [n for n in netlist.undriven_nets() if n not in read]
    if floating:
        report.floating_nets = floating
        if not allow_floating:
            raise NetlistError(
                "{} allocated nets are floating (first: {})".format(
                    len(floating),
                    [netlist.net_name(n) for n in floating[:5]],
                )
            )

    driven = set(range(2)) | netlist.input_net_set() | netlist.flop_q_set()
    driven.update(cell.output for cell in netlist.cells)
    report.unread_nets = sorted(driven - read - set(range(2)))

    for net in report.floating_nets + report.unread_nets:
        report.net_names[net] = netlist.net_name(net)

    # raises CombinationalLoopError on cyclic logic
    topological_cells(netlist)

    for name, idxs in netlist.registers.items():
        for idx in idxs:
            if not 0 <= idx < len(netlist.flops):
                raise NetlistError(
                    "register {!r} references invalid flop {}".format(name, idx)
                )

    report.messages.append(
        "{} cells, {} flops, {} registers".format(
            len(netlist.cells), len(netlist.flops), len(netlist.registers)
        )
    )
    return report
