"""Structured telemetry: span tracing, metrics, trace summaries.

Dependency-free by design (stdlib only, no imports from the rest of
``repro``) so the SAT core and the worker bootstrap can import it
without joining the ``repro.sat`` / ``repro.netlist`` import cycle.
"""

from repro.obs.metrics import Metrics, NULL_METRICS, NullMetrics
from repro.obs.profiling import profiled
from repro.obs.tracer import (
    NULL_TRACER,
    BufferTracer,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "BufferTracer",
    "Metrics",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Tracer",
    "get_tracer",
    "profiled",
    "set_tracer",
    "tracing",
]
