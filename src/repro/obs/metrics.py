"""In-process metrics: counters, gauges and histograms.

The registry is deliberately tiny and dependency-free — the engines run
millions of tight-loop iterations, so an instrument must cost a dict
lookup plus an integer add, nothing more. Instruments are created on
first use and live for the registry's lifetime; :meth:`Metrics.snapshot`
renders everything to plain JSON-serializable dicts (the shape the trace
file and the bench harness consume).

A :class:`NullMetrics` twin backs the disabled-telemetry path: every
operation is a no-op on a shared singleton, so instrumented code never
branches on "is telemetry on?" — it just talks to whichever registry the
current tracer carries.
"""

from __future__ import annotations

import math


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class Gauge:
    """Last-write-wins sampled value (plus a high-water mark)."""

    __slots__ = ("value", "high")

    def __init__(self):
        self.value = 0
        self.high = 0

    def set(self, value):
        self.value = value
        if value > self.high:
            self.high = value


class Histogram:
    """Power-of-two bucketed distribution of non-negative samples.

    Buckets are ``< 2**(i + _SHIFT)`` so sub-millisecond latencies and
    million-conflict counts share one shape; count/total/min/max are
    exact, buckets are for the summary's rough percentiles.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    _SHIFT = -20  # first bucket boundary 2**-20 (~1e-6)
    _BUCKETS = 64

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.buckets = {}

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0:
            index = 0
        else:
            index = min(
                self._BUCKETS - 1,
                max(0, int(math.log2(value)) - self._SHIFT + 1),
            )
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0


class Metrics:
    """Create-on-first-use registry of named instruments."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    def counter(self, name):
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name):
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name):
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    def snapshot(self):
        """Plain-dict view of every instrument (JSON-serializable)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": g.value, "high": g.high}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                    "mean": h.mean,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge_counters(self, counters):
        """Fold a ``{name: value}`` mapping into this registry's counters
        (used to absorb a worker process's totals into the supervisor's)."""
        for name, value in counters.items():
            self.counter(name).inc(value)


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()
    value = 0
    high = 0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Registry twin whose instruments do nothing (telemetry disabled)."""

    __slots__ = ()

    def counter(self, name):
        return _NULL_INSTRUMENT

    def gauge(self, name):
        return _NULL_INSTRUMENT

    def histogram(self, name):
        return _NULL_INSTRUMENT

    def snapshot(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_counters(self, counters):
        pass


NULL_METRICS = NullMetrics()
