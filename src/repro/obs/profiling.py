"""Opt-in cProfile wrapper for per-check deterministic profiling.

Tracing answers *where the wall-clock went* between phases; this module
answers *which Python frames burned it* inside one check. It is opt-in
(``repro audit --profile``) because cProfile's per-call hook costs real
time on the solver's hot loops — never leave it on for benchmarking.

Dumps are binary pstats files written next to the trace, one per
profiled section, readable with ``python -m pstats`` or
``pstats.Stats(path).sort_stats("cumulative").print_stats(20)``.
"""

from __future__ import annotations

import cProfile
import os
import re
from contextlib import contextmanager


def _safe_name(name):
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name) or "profile"


@contextmanager
def profiled(directory, name):
    """Profile the enclosed block and dump pstats to
    ``directory/<name>.pstats``. A ``None`` directory disables profiling
    (the block runs bare), so call sites need no conditional."""
    if not directory:
        yield None
        return
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, _safe_name(name) + ".pstats")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield path
    finally:
        profiler.disable()
        profiler.dump_stats(path)
