"""Trace-file reader and summarizer for ``repro trace summarize``.

Consumes the JSONL stream :mod:`repro.obs.tracer` writes and rebuilds
the span forest, tolerating the damage real traces carry: torn final
lines from a killed process, spans that never ended, worker events whose
buffers were dropped. Bad lines are counted, never fatal — the same
degrade-to-partial policy the outcome cache uses.
"""

from __future__ import annotations

import json


class Span:
    """One reconstructed span (or point event, with ``end is None`` and
    ``point=True``)."""

    __slots__ = ("id", "parent", "name", "start", "end", "attrs",
                 "end_attrs", "children", "point")

    def __init__(self, span_id, parent, name, start, attrs, point=False):
        self.id = span_id
        self.parent = parent
        self.name = name
        self.start = start
        self.end = None
        self.attrs = attrs
        self.end_attrs = {}
        self.children = []
        self.point = point

    @property
    def duration(self):
        if self.point:
            return 0.0
        if self.end is None:
            return None  # unterminated (killed process)
        return self.end - self.start


def load_trace(path):
    """Parse a trace file.

    Returns ``(events, meta, bad_lines)`` where *events* is the list of
    parsed event dicts in file order, *meta* the header dict (or ``{}``),
    and *bad_lines* the number of lines that failed to parse.

    The file is read as **bytes** and decoded line by line. The
    crash-tolerant writer guarantees only a readable *prefix* — a killed
    process can tear the final record anywhere, including mid-way
    through a multi-byte UTF-8 sequence. Decoding the whole file at once
    would turn that torn tail into a ``UnicodeDecodeError`` that loses
    every good record before it; per-line decoding consumes exactly the
    readable prefix and counts the tail as one bad line.
    """
    events = []
    meta = {}
    bad_lines = 0
    with open(path, "rb") as handle:
        raw = handle.read()
    for raw_line in raw.split(b"\n"):
        if not raw_line.strip():
            continue
        try:
            line = raw_line.decode("utf-8").strip()
            event = json.loads(line)
        except (UnicodeDecodeError, ValueError):
            bad_lines += 1
            continue
        if not isinstance(event, dict) or "ev" not in event:
            bad_lines += 1
            continue
        if event["ev"] == "meta":
            meta = event
        else:
            events.append(event)
    return events, meta, bad_lines


def build_tree(events):
    """Reconstruct the span forest from parsed events.

    Returns ``(roots, spans_by_id, dropped)``: *roots* are spans with no
    (known) parent, *dropped* counts events that could not be linked
    (end without begin, child of an unknown parent gets promoted to a
    root rather than lost).
    """
    spans = {}
    roots = []
    dropped = 0
    for event in events:
        kind = event.get("ev")
        if kind in ("begin", "point"):
            span = Span(
                event.get("id"),
                event.get("parent"),
                event.get("name", "?"),
                event.get("t", 0.0),
                event.get("attrs") or {},
                point=(kind == "point"),
            )
            spans[span.id] = span
            parent = spans.get(span.parent)
            if parent is None:
                roots.append(span)
            else:
                parent.children.append(span)
        elif kind == "end":
            span = spans.get(event.get("id"))
            if span is None:
                dropped += 1
                continue
            span.end = event.get("t", 0.0)
            span.end_attrs = event.get("attrs") or {}
        else:
            dropped += 1
    return roots, spans, dropped


def _walk(spans):
    stack = list(spans)
    while stack:
        span = stack.pop()
        yield span
        stack.extend(span.children)


def _aggregate(children, clock_end):
    """Fold sibling spans into per-name rows: count, total duration,
    recursively aggregated children. Unterminated spans are charged up
    to ``clock_end`` (the last timestamp seen anywhere in the trace)."""
    by_name = {}
    order = []
    for span in children:
        if span.point:
            continue
        row = by_name.get(span.name)
        if row is None:
            row = by_name[span.name] = {
                "name": span.name,
                "count": 0,
                "total": 0.0,
                "unterminated": 0,
                "_children": [],
            }
            order.append(row)
        row["count"] += 1
        duration = span.duration
        if duration is None:
            duration = max(0.0, clock_end - span.start)
            row["unterminated"] += 1
        row["total"] += duration
        row["_children"].extend(span.children)
    for row in order:
        row["children"] = _aggregate(row.pop("_children"), clock_end)
    return order


def summarize(path, top=10):
    """Build the full summary dict for one trace file."""
    events, meta, bad_lines = load_trace(path)
    roots, spans, dropped = build_tree(events)
    clock_times = [e.get("t", 0.0) for e in events]
    clock_start = min(clock_times) if clock_times else 0.0
    clock_end = max(clock_times) if clock_times else 0.0

    # ------------------------------------------------- per-phase tree
    phase_tree = _aggregate(roots, clock_end)

    # --------------------------------------------- slowest check spans
    checks = []
    for span in _walk(roots):
        if span.name != "runner.check":
            continue
        duration = span.duration
        if duration is None:
            duration = max(0.0, clock_end - span.start)
        checks.append({
            "name": span.attrs.get("check", "?"),
            "seconds": duration,
            "status": span.end_attrs.get("status"),
            "attempts": span.end_attrs.get("attempts"),
        })
    checks.sort(key=lambda row: row["seconds"], reverse=True)

    # -------------------------------------- cache / retry / kill tallies
    tallies = {"cache": {}, "retries": 0, "kills": {}, "restarts": 0}
    for span in _walk(roots):
        if span.name.startswith("cache."):
            outcome = span.name.split(".", 1)[1]
            tallies["cache"][outcome] = tallies["cache"].get(outcome, 0) + 1
        elif span.name == "runner.retry":
            tallies["retries"] += 1
        elif span.name == "runner.kill":
            reason = span.attrs.get("reason", "?")
            tallies["kills"][reason] = tallies["kills"].get(reason, 0) + 1
        elif span.name == "sat.restart":
            tallies["restarts"] += 1

    metrics = {}
    for event in events:
        if event.get("ev") == "point" and event.get("name") == "metrics.snapshot":
            metrics = event.get("attrs") or {}

    return {
        "path": str(path),
        "meta": meta,
        "events": len(events),
        "bad_lines": bad_lines,
        "dropped_events": dropped,
        "wall_seconds": max(0.0, clock_end - clock_start),
        "phases": phase_tree,
        "slowest_checks": checks[:top],
        "tallies": tallies,
        "metrics": metrics,
    }


def render(summary, out):
    """Human-readable rendering of :func:`summarize`'s dict."""
    out.write(f"trace: {summary['path']}\n")
    out.write(
        f"  {summary['events']} events, "
        f"{summary['wall_seconds']:.3f}s wall"
    )
    if summary["bad_lines"] or summary["dropped_events"]:
        out.write(
            f" ({summary['bad_lines']} unparseable line(s), "
            f"{summary['dropped_events']} unlinked event(s))"
        )
    out.write("\n\nphase tree (count x name: total seconds):\n")

    def emit(rows, depth):
        for row in rows:
            flag = (
                f"  [{row['unterminated']} unterminated]"
                if row["unterminated"] else ""
            )
            out.write(
                f"{'  ' * depth}  {row['count']:>4}x {row['name']}: "
                f"{row['total']:.3f}s{flag}\n"
            )
            emit(row["children"], depth + 1)

    emit(summary["phases"], 0)

    if summary["slowest_checks"]:
        out.write("\nslowest checks:\n")
        for row in summary["slowest_checks"]:
            status = row["status"] or "?"
            attempts = row["attempts"]
            out.write(
                f"  {row['seconds']:8.3f}s  {row['name']}  "
                f"[{status}, "
                f"{'?' if attempts is None else attempts} attempt(s)]\n"
            )

    tallies = summary["tallies"]
    cache = ", ".join(
        f"{count} {name}" for name, count in sorted(tallies["cache"].items())
    ) or "no cache activity"
    out.write(f"\ncache: {cache}\n")
    out.write(f"retries: {tallies['retries']}\n")
    if tallies["kills"]:
        kills = ", ".join(
            f"{count} {reason}"
            for reason, count in sorted(tallies["kills"].items())
        )
        out.write(f"worker kills: {kills}\n")
    out.write(f"solver restarts: {tallies['restarts']}\n")

    counters = summary.get("metrics", {}).get("counters") or {}
    if counters:
        out.write("\ncounters:\n")
        for name, value in sorted(counters.items()):
            out.write(f"  {name}: {value}\n")
