"""Hierarchical span tracer writing append-only JSONL event streams.

One trace file is one audit: a ``meta`` header line followed by
``begin``/``end``/``point`` events. Every event carries a monotonic
timestamp (``time.perf_counter``), an id, and a parent id, so a reader
can rebuild the span tree without any knowledge of the code that emitted
it. The schema (one JSON object per line):

``{"ev": "meta",  "version": 1, "pid": ..., "wall": ..., "mono": ...}``
``{"ev": "begin", "id": N, "parent": P|null, "name": ..., "t": ..., "attrs": {...}}``
``{"ev": "end",   "id": N, "t": ..., "attrs": {...}}``
``{"ev": "point", "id": N, "parent": P|null, "name": ..., "t": ..., "attrs": {...}}``

Three tracer flavours share one interface:

* :class:`Tracer` — writes events to a file handle as they happen and
  maintains an implicit current-span stack (``span()`` is a context
  manager; nested spans parent automatically).
* :class:`NullTracer` — the disabled path. Every method is a no-op and
  ``enabled`` is ``False``; hot loops gate per-conflict bookkeeping on
  that flag so disabled tracing costs one attribute read.
* :class:`BufferTracer` — records events to an in-memory list instead of
  a file. Worker processes use it and ship the list back over the result
  pipe; the supervisor re-parents the buffer under its own attempt span
  with :meth:`Tracer.absorb`.

The *current* tracer is scoped per **thread**, with a process-wide
default (``get_tracer``/``set_tracer`` and the ``tracing()`` context
manager). The engines are synchronous, so within one thread of control
the old process-global behaviour is unchanged: a single-threaded
process (the CLI, a pool worker child) sees exactly one tracer. The
thread dimension exists for the audit service (:mod:`repro.serve`),
whose worker *threads* run concurrent audits in one process — each
installs its own per-job tracer without the streams crossing. A tracer
installed on the main thread before threads are spawned still acts as
the process default: threads that never call ``set_tracer`` read it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager

from repro.obs.metrics import Metrics, NULL_METRICS

SCHEMA_VERSION = 1


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Instrumented code holds a reference to *some* tracer at all times and
    never branches on configuration; this class is that reference when
    telemetry is off. ``metrics`` is the null registry so counter bumps
    vanish too.
    """

    enabled = False

    def __init__(self):
        self.metrics = NULL_METRICS

    @contextmanager
    def span(self, name, **attrs):
        # yields a real dict so call sites may update it unconditionally
        yield {}

    def begin(self, name, **attrs):
        return None

    def end(self, span_id, **attrs):
        pass

    def point(self, name, **attrs):
        pass

    def absorb(self, events, parent=None):
        pass

    def close(self):
        pass


NULL_TRACER = NullTracer()


class _TracerBase:
    """Shared event construction for file- and buffer-backed tracers."""

    enabled = True

    def __init__(self, metrics=None):
        self.metrics = Metrics() if metrics is None else metrics
        self._next_id = 1
        self._stack = []  # open span ids, innermost last

    # Subclasses provide _emit(event_dict).

    def _new_id(self):
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def begin(self, name, **attrs):
        """Open a span explicitly; returns its id for a later ``end``."""
        span_id = self._new_id()
        parent = self._stack[-1] if self._stack else None
        self._emit({
            "ev": "begin",
            "id": span_id,
            "parent": parent,
            "name": name,
            "t": time.perf_counter(),
            "attrs": attrs,
        })
        self._stack.append(span_id)
        return span_id

    def end(self, span_id, **attrs):
        """Close a span opened with ``begin``.

        Closing an outer span force-closes anything still open inside it
        (a crashed child, an exception that skipped a handler): the trace
        stays a well-formed tree even when the code did not unwind
        cleanly.
        """
        while self._stack:
            top = self._stack.pop()
            if top == span_id:
                break
            self._emit({"ev": "end", "id": top,
                        "t": time.perf_counter(), "attrs": {}})
        self._emit({
            "ev": "end",
            "id": span_id,
            "t": time.perf_counter(),
            "attrs": attrs,
        })

    @contextmanager
    def span(self, name, **attrs):
        span_id = self.begin(name, **attrs)
        extra = {}
        try:
            yield extra
        except BaseException:
            extra.setdefault("error", True)
            raise
        finally:
            self.end(span_id, **extra)

    def point(self, name, **attrs):
        """Instantaneous event (a restart, a cache hit, a kill)."""
        self._emit({
            "ev": "point",
            "id": self._new_id(),
            "parent": self._stack[-1] if self._stack else None,
            "name": name,
            "t": time.perf_counter(),
            "attrs": attrs,
        })

    def absorb(self, events, parent=None):
        """Graft a worker's buffered events into this trace.

        Ids are remapped into this tracer's id space and every root
        event (``parent is None``) is re-parented under ``parent`` —
        structurally, under the span that launched the worker. Unknown
        event kinds and malformed entries are dropped rather than
        corrupting the trace. Returns the number of events written.
        """
        if parent is None:
            parent = self._stack[-1] if self._stack else None
        id_map = {}
        written = 0
        for event in events or ():
            if not isinstance(event, dict):
                continue
            kind = event.get("ev")
            if kind == "meta":
                continue
            old_id = event.get("id")
            if kind in ("begin", "point"):
                if old_id in id_map:
                    continue  # duplicate id: drop rather than mis-link
                new_id = id_map[old_id] = self._new_id()
                old_parent = event.get("parent")
                self._emit({
                    "ev": kind,
                    "id": new_id,
                    "parent": id_map.get(old_parent, parent),
                    "name": event.get("name", "?"),
                    "t": event.get("t", 0.0),
                    "attrs": event.get("attrs") or {},
                })
                written += 1
            elif kind == "end":
                new_id = id_map.get(old_id)
                if new_id is None:
                    continue  # end without a begin we kept
                self._emit({
                    "ev": "end",
                    "id": new_id,
                    "t": event.get("t", 0.0),
                    "attrs": event.get("attrs") or {},
                })
                written += 1
        return written

    def close(self):
        """Close any spans still open (crash/early-exit safety net)."""
        while self._stack:
            self._emit({"ev": "end", "id": self._stack.pop(),
                        "t": time.perf_counter(), "attrs": {}})


class Tracer(_TracerBase):
    """File-backed tracer: every event is one JSON line, written
    immediately so a killed process leaves a readable prefix."""

    def __init__(self, path, metrics=None):
        super().__init__(metrics=metrics)
        self.path = str(path)
        parent_dir = os.path.dirname(self.path)
        if parent_dir:
            os.makedirs(parent_dir, exist_ok=True)
        self._handle = open(self.path, "w")
        self._emit({
            "ev": "meta",
            "version": SCHEMA_VERSION,
            "pid": os.getpid(),
            "wall": time.time(),
            "mono": time.perf_counter(),
        })

    def _emit(self, event):
        self._handle.write(json.dumps(event, separators=(",", ":"),
                                      default=str) + "\n")
        self._handle.flush()

    def close(self):
        if self._handle.closed:
            return
        super().close()
        # final metrics snapshot rides in the trace itself so `repro
        # trace summarize` needs exactly one file
        self._emit({
            "ev": "point",
            "id": self._new_id(),
            "parent": None,
            "name": "metrics.snapshot",
            "t": time.perf_counter(),
            "attrs": self.metrics.snapshot(),
        })
        self._handle.close()


class BufferTracer(_TracerBase):
    """In-memory tracer for worker processes: events accumulate in
    ``events`` and travel back over the result pipe."""

    def __init__(self, metrics=None):
        super().__init__(metrics=metrics)
        self.events = []

    def _emit(self, event):
        self.events.append(event)

    def drain(self):
        """Close open spans and hand over the event list."""
        self.close()
        events, self.events = self.events, []
        return events


_default = NULL_TRACER  # process-wide fallback (main-thread installs)
_local = threading.local()


def get_tracer():
    """The current tracer for this thread (never ``None``).

    A thread that has installed its own tracer sees that; every other
    thread sees the process default — the tracer the main thread (or
    the most recent caller on a thread with no local install) set.
    """
    return getattr(_local, "tracer", None) or _default


def set_tracer(tracer):
    """Install ``tracer`` (or the null tracer for ``None``); returns the
    previous one so callers can restore it.

    On the main thread this sets the process default (preserving the
    pre-thread-local behaviour: child threads inherit it); on any other
    thread it sets only that thread's tracer.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    if threading.current_thread() is threading.main_thread():
        global _default
        previous = getattr(_local, "tracer", None) or _default
        _default = tracer
        _local.tracer = None
        return previous
    previous = getattr(_local, "tracer", None) or _default
    _local.tracer = tracer
    return previous


@contextmanager
def tracing(tracer):
    """Scoped ``set_tracer``: installs on entry, restores on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
