"""Security properties: valid-way specs, monitors (Eq. 2/3), bypass (Eq. 4),
and Verilog assertion generation."""

from repro.properties.bypass import BypassChecker, BypassResult, validate_bypass
from repro.properties.monitors import (
    MonitorBuild,
    build_corruption_monitor,
    build_tracking_monitor,
)
from repro.properties.sva import (
    bypass_comment,
    corruption_assertion,
    render_spec,
    tracking_assertion,
)
from repro.properties.valid_ways import (
    DesignSpec,
    MonitorCtx,
    RegisterSpec,
    TrojanInfo,
    ValidWay,
    on_input,
    on_probe,
)

__all__ = [
    "BypassChecker",
    "BypassResult",
    "validate_bypass",
    "MonitorBuild",
    "build_corruption_monitor",
    "build_tracking_monitor",
    "bypass_comment",
    "corruption_assertion",
    "render_spec",
    "tracking_assertion",
    "DesignSpec",
    "MonitorCtx",
    "RegisterSpec",
    "TrojanInfo",
    "ValidWay",
    "on_input",
    "on_probe",
]

from repro.properties.coverage import (  # noqa: E402
    CoverageReport,
    WayCoverage,
    measure_way_coverage,
)

__all__ += ["CoverageReport", "WayCoverage", "measure_way_coverage"]
