"""Eq. (4): bypass-register detection via CEGIS.

Attack 2 (Section 4.2) replaces the critical register's fan-out with a
Trojan-controlled *bypass register*; once triggered, the critical register
R no longer influences any output. Eq. (4) formalizes the defense: in a
trustworthy design there is **no** input prefix S after which the outputs
are insensitive to R's value for **all** continuations:

    not exists S . forall i_{t+1} . forall p != q . o_{t+1,p} == o_{t+1,q}

The exists/forall alternation makes this a 2QBF problem, outside plain
BMC. :class:`BypassChecker` solves it with counterexample-guided inductive
synthesis (CEGIS):

1. *Synthesis*: SAT query for (S, p, q) with p != q such that, for every
   future-input **sample** collected so far, the two design copies (R cut
   and overridden with p vs q at cycle t) produce identical outputs over
   the next L cycles. The prefix frames are symbolic; each sample adds two
   constant-input suffix copies.
2. *Verification*: the candidate S is replayed on the logic simulator to
   obtain the concrete state at cycle t; a second SAT query then searches
   for a future input making some output differ between the p and q
   copies. A hit becomes a new sample; a miss proves the candidate — the
   register is bypassed and the Trojan is reported with its trigger S.

``L`` is the register's documented observe latency
(:attr:`RegisterSpec.observe_latency`): how many cycles the environment
needs to expose R on an output (e.g. a stack pointer needs a RETURN to
reach the program counter).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.bmc.unroll import Unroller
from repro.bmc.witness import Witness
from repro.netlist.cells import Kind
from repro.netlist.traversal import (
    cone_of_influence,
    transitive_fanout_outputs,
)
from repro.sat.solver import SAT, UNSAT, Solver
from repro.sat.tseitin import encode_cell, encode_xor2
from repro.sim.sequential import SequentialSimulator

VIOLATED = "violated"  # bypass found (Eq. 4 violated)
PROVED = "proved"
UNKNOWN_STATUS = "unknown"


@dataclass
class BypassResult:
    """Outcome of an Eq. (4) check."""

    status: str
    bound: int
    witness: Witness | None = None
    p_value: int | None = None
    q_value: int | None = None
    samples_used: int = 0
    cegis_iterations: int = 0
    elapsed: float = 0.0
    peak_memory: int = 0
    property_name: str = ""
    observed_outputs: tuple = ()
    latency: int = 1

    @property
    def detected(self):
        return self.status == VIOLATED

    def summary(self):
        extra = ""
        if self.detected:
            extra = " p={:#x} q={:#x}".format(self.p_value, self.q_value)
        return (
            "[{}] {} at bound {} ({:.2f}s, {} CEGIS iters, {} samples{})".format(
                self.property_name or "bypass",
                self.status,
                self.bound,
                self.elapsed,
                self.cegis_iterations,
                self.samples_used,
                extra,
            )
        )


class _SuffixEncoder:
    """Encodes L frames of the design with the critical register cut."""

    def __init__(self, netlist, r_q_nets, outputs):
        self.netlist = netlist
        self.r_q_set = set(r_q_nets)
        self.r_q_nets = list(r_q_nets)
        self.outputs = outputs
        target_nets = []
        for name in outputs:
            target_nets.extend(netlist.outputs[name])
        cone, cell_idxs, flop_idxs = cone_of_influence(netlist, target_nets)
        self.cone = cone
        self.cells = [netlist.cells[i] for i in cell_idxs]
        self.flops = [netlist.flops[i] for i in flop_idxs]
        self.input_nets = [
            net for net in sorted(netlist.input_net_set()) if net in cone
        ]
        self.state_flops = [f for f in self.flops if f.q not in self.r_q_set]

    def encode(self, solver, true_lit, base_state, r_override, input_lits, frames):
        """Encode ``frames`` suffix frames; returns output lits per frame.

        ``base_state`` maps non-R flop q nets -> literal at the cut,
        ``r_override`` maps R q nets -> literal, ``input_lits`` is a list of
        dicts (net -> literal) per suffix frame.
        """
        lit = {}
        out_lits = []
        for k in range(frames):
            lit[(0, k)] = -true_lit
            lit[(1, k)] = true_lit
            for net in self.input_nets:
                lit[(net, k)] = input_lits[k][net]
            for flop in self.flops:
                if k == 0:
                    if flop.q in self.r_q_set:
                        lit[(flop.q, 0)] = r_override[flop.q]
                    else:
                        lit[(flop.q, 0)] = base_state[flop.q]
                else:
                    lit[(flop.q, k)] = lit[(flop.d, k - 1)]
            for cell in self.cells:
                ins = [lit[(n, k)] for n in cell.inputs]
                if cell.kind is Kind.BUF:
                    lit[(cell.output, k)] = ins[0]
                elif cell.kind is Kind.NOT:
                    lit[(cell.output, k)] = -ins[0]
                else:
                    out = solver.new_var()
                    lit[(cell.output, k)] = out
                    encode_cell(solver, cell.kind, out, ins)
            frame_outputs = []
            for name in self.outputs:
                for net in self.netlist.outputs[name]:
                    frame_outputs.append(lit[(net, k)])
            out_lits.append(frame_outputs)
        return out_lits


class BypassChecker:
    """Checks Eq. (4) for one critical register."""

    def __init__(self, netlist, spec, outputs=None):
        self.netlist = netlist
        self.spec = spec
        self.register = spec.register
        self.r_q_nets = netlist.register_q_nets(self.register)
        if outputs is None:
            outputs = transitive_fanout_outputs(netlist, self.r_q_nets)
        self.outputs = tuple(sorted(outputs))
        self.latency = max(1, spec.observe_latency)
        self._suffix = (
            _SuffixEncoder(netlist, self.r_q_nets, self.outputs)
            if self.outputs
            else None
        )

    # ------------------------------------------------------------------ API

    def check(self, max_cycles, time_budget=None, max_cegis_iters=64, seed=0):
        """Search prefixes of length 1..max_cycles for a bypass condition."""
        start = time.perf_counter()
        name = "no-bypass({})".format(self.register)
        if not self.outputs:
            # R drives nothing at all: trivially unobservable.
            return BypassResult(
                status=VIOLATED,
                bound=0,
                witness=Witness([], 0, property_name=name),
                p_value=0,
                q_value=1,
                property_name=name,
                elapsed=time.perf_counter() - start,
            )
        rng = random.Random(seed)
        samples = [self._random_sample(rng)]
        iterations = 0
        bound = 0
        status = PROVED
        for t in range(1, max_cycles + 1):
            remaining = None
            if time_budget is not None:
                remaining = time_budget - (time.perf_counter() - start)
                if remaining <= 0:
                    status = UNKNOWN_STATUS
                    break
            outcome = self._check_prefix(
                t, samples, max_cegis_iters, remaining, rng
            )
            iterations += outcome["iterations"]
            if outcome["status"] == VIOLATED:
                return BypassResult(
                    status=VIOLATED,
                    bound=t,
                    witness=Witness(
                        outcome["inputs"], t - 1, property_name=name
                    ),
                    p_value=outcome["p"],
                    q_value=outcome["q"],
                    samples_used=len(samples),
                    cegis_iterations=iterations,
                    elapsed=time.perf_counter() - start,
                    property_name=name,
                    observed_outputs=self.outputs,
                    latency=self.latency,
                )
            if outcome["status"] == UNKNOWN_STATUS:
                status = UNKNOWN_STATUS
                break
            bound = t
        return BypassResult(
            status=status,
            bound=bound,
            samples_used=len(samples),
            cegis_iterations=iterations,
            elapsed=time.perf_counter() - start,
            property_name=name,
            observed_outputs=self.outputs,
        )

    # ------------------------------------------------------------- internals

    def _random_sample(self, rng):
        """A random future-input vector: list (len=L) of {net: 0/1}."""
        return [
            {net: rng.getrandbits(1) for net in self._suffix.input_nets}
            for _ in range(self.latency)
        ]

    # Encoding a synthesis formula costs O(prefix + samples * 2 * latency *
    # suffix-cone) gate encodings — on a large design this alone can dwarf
    # the solving time, so the budget must bound it too.
    MAX_SAMPLES = 12

    def _check_prefix(self, t, samples, max_iters, time_budget, rng):
        start = time.perf_counter()
        iterations = 0
        while True:
            if max_iters is not None and iterations >= max_iters:
                return {"status": UNKNOWN_STATUS, "iterations": iterations}
            if len(samples) > self.MAX_SAMPLES:
                # keep the most recent counterexamples: they refute the
                # latest candidates and keep the formula bounded
                del samples[: len(samples) - self.MAX_SAMPLES]
            remaining = None
            if time_budget is not None:
                remaining = time_budget - (time.perf_counter() - start)
                if remaining <= 0:
                    return {"status": UNKNOWN_STATUS, "iterations": iterations}
            iterations += 1
            candidate = self._synthesize(t, samples, remaining)
            if candidate is None:
                return {"status": PROVED, "iterations": iterations}
            if candidate == "unknown":
                return {"status": UNKNOWN_STATUS, "iterations": iterations}
            inputs, p, q = candidate
            counterexample = self._verify(inputs, p, q, remaining)
            if counterexample is None:
                return {
                    "status": VIOLATED,
                    "iterations": iterations,
                    "inputs": inputs,
                    "p": p,
                    "q": q,
                }
            if counterexample == "unknown":
                return {"status": UNKNOWN_STATUS, "iterations": iterations}
            samples.append(counterexample)

    def _synthesize(self, t, samples, time_budget):
        """SAT query: find (S, p, q), p != q, agreeing on every sample.

        The time budget bounds *encoding* as well as solving: building a
        sample's two suffix copies on a 10k-cell design is itself costly.
        """
        start = time.perf_counter()
        deadline = None if time_budget is None else start + time_budget
        solver = Solver()
        suffix = self._suffix
        # Symbolic prefix: unroll the D-cones of all suffix-state flops.
        prefix_targets = [f.d for f in suffix.state_flops]
        if not prefix_targets:
            prefix_targets = [0]
        unroller = Unroller(self.netlist, solver, prefix_targets)
        unroller.extend_to(t)
        true_lit = unroller.true_lit

        def state_lit(flop):
            if unroller.has_lit(flop.d, t - 1):
                return unroller.lit(flop.d, t - 1)
            # flop outside the prefix cone: its value is its reset value
            # only at t == 1; otherwise it is unconstrained — allocate.
            if t == 1:
                return true_lit if flop.init else -true_lit
            return solver.new_var()

        base_state = {f.q: state_lit(f) for f in suffix.state_flops}
        p_lits = {q: solver.new_var() for q in suffix.r_q_nets}
        q_lits = {q: solver.new_var() for q in suffix.r_q_nets}
        # p != q
        diff_bits = []
        for net in suffix.r_q_nets:
            d = solver.new_var()
            encode_xor2(solver, d, p_lits[net], q_lits[net])
            diff_bits.append(d)
        solver.add_clause(diff_bits)
        # Each sample: two constant-input suffix copies must agree.
        for sample in samples:
            if deadline is not None and time.perf_counter() > deadline:
                return "unknown"
            input_lits = [
                {
                    net: (true_lit if bits[net] else -true_lit)
                    for net in suffix.input_nets
                }
                for bits in sample
            ]
            outs_a = suffix.encode(
                solver, true_lit, base_state, p_lits, input_lits, self.latency
            )
            outs_b = suffix.encode(
                solver, true_lit, base_state, q_lits, input_lits, self.latency
            )
            for frame_a, frame_b in zip(outs_a, outs_b):
                for la, lb in zip(frame_a, frame_b):
                    solver.add_clause([-la, lb])
                    solver.add_clause([la, -lb])
        solve_budget = None
        if deadline is not None:
            solve_budget = max(deadline - time.perf_counter(), 0.001)
        result = solver.solve(time_budget=solve_budget)
        if result.status == UNSAT:
            return None
        if result.status != SAT:
            return "unknown"
        model = result.model
        inputs = unroller.input_assignment(model, t)
        p = self._decode_word(model, p_lits)
        q = self._decode_word(model, q_lits)
        return inputs, p, q

    def _decode_word(self, model, lit_map):
        word = 0
        for bit, net in enumerate(self.r_q_nets):
            literal = lit_map[net]
            value = model[abs(literal)]
            if literal < 0:
                value = not value
            if value:
                word |= 1 << bit
        return word

    def _state_after(self, inputs):
        """Concrete flop values after running the prefix on the simulator."""
        sim = SequentialSimulator(self.netlist)
        for words in inputs:
            sim.step(words)
        return {
            flop.q: sim.net_value(flop.q) for flop in self.netlist.flops
        }

    def _verify(self, inputs, p, q, time_budget):
        """Search a future input exposing R; None means bypass confirmed."""
        suffix = self._suffix
        state = self._state_after(inputs)
        solver = Solver()
        true_lit = solver.new_var()
        solver.add_clause([true_lit])

        def const(bit):
            return true_lit if bit else -true_lit

        base_state = {
            f.q: const(state[f.q]) for f in suffix.state_flops
        }
        p_map = {
            net: const((p >> i) & 1)
            for i, net in enumerate(suffix.r_q_nets)
        }
        q_map = {
            net: const((q >> i) & 1)
            for i, net in enumerate(suffix.r_q_nets)
        }
        input_lits = [
            {net: solver.new_var() for net in suffix.input_nets}
            for _ in range(self.latency)
        ]
        outs_a = suffix.encode(
            solver, true_lit, base_state, p_map, input_lits, self.latency
        )
        outs_b = suffix.encode(
            solver, true_lit, base_state, q_map, input_lits, self.latency
        )
        diffs = []
        for frame_a, frame_b in zip(outs_a, outs_b):
            for la, lb in zip(frame_a, frame_b):
                d = solver.new_var()
                encode_xor2(solver, d, la, lb)
                diffs.append(d)
        solver.add_clause(diffs)
        result = solver.solve(time_budget=time_budget)
        if result.status == UNSAT:
            return None
        if result.status != SAT:
            return "unknown"
        model = result.model
        sample = []
        for frame in input_lits:
            sample.append(
                {net: int(model[frame[net]]) for net in suffix.input_nets}
            )
        return sample


def validate_bypass(netlist, result, register, trials=16, seed=1):
    """Randomized replay check of a bypass finding.

    Runs the witness prefix, overrides the register with p and q, and
    drives ``trials`` random future-input sequences of the check's latency:
    all observed outputs must match between the two overrides for the
    finding to stand.
    """
    if not result.detected:
        return False
    rng = random.Random(seed)
    outputs = result.observed_outputs
    q_nets = netlist.register_q_nets(register)
    for _ in range(trials):
        future = [
            {
                name: rng.getrandbits(len(nets))
                for name, nets in netlist.inputs.items()
            }
            for _ in range(result.latency)
        ]
        observations = []
        for value in (result.p_value, result.q_value):
            sim = SequentialSimulator(netlist)
            for words in result.witness.inputs:
                sim.step(words)
            for i, net in enumerate(q_nets):
                sim.values[net] = (value >> i) & 1
            seen = []
            for words in future:
                for name, word in words.items():
                    sim.set_input(name, word)
                sim.propagate()
                seen.append(tuple(sim.output_value(n) for n in outputs))
                sim.clock()
            observations.append(seen)
        if observations[0] != observations[1]:
            return False
    return True
