"""Valid-way coverage: how thoroughly a functional suite exercises a spec.

The paper's premise is that Trojan-infected 3PIPs *pass functional
verification* ("the Trojans ... do not violate the functional specification
of the design until they are triggered"). This module quantifies that
verification: replay a stimulus suite and count, per valid way, how often
its condition fired and how often the register actually changed under it —
plus any Eq. (2) violations the suite happened to expose (for a Trojan to
survive verification, that count must be zero).

Used by the test suite to substantiate the dormancy claims, and available
to integrators to grade their own sign-off suites before trusting the
formal bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.builder import Circuit
from repro.properties.monitors import build_corruption_monitor
from repro.properties.valid_ways import MonitorCtx
from repro.sim.sequential import SequentialSimulator


@dataclass
class WayCoverage:
    """Coverage of one valid way across a suite."""

    name: str
    condition_hits: int = 0
    update_hits: int = 0  # condition fired AND the register changed

    @property
    def exercised(self):
        return self.update_hits > 0


@dataclass
class CoverageReport:
    """Suite-level coverage for one register spec."""

    register: str
    cycles: int = 0
    ways: dict = field(default_factory=dict)  # name -> WayCoverage
    violations: int = 0  # Eq.(2) violations observed during the suite
    unauthorized_changes: list = field(default_factory=list)  # cycle indices

    @property
    def fully_exercised(self):
        return all(way.exercised for way in self.ways.values())

    def summary(self):
        lines = [
            "way coverage for {!r} over {} cycles "
            "(Eq.2 violations observed: {}):".format(
                self.register, self.cycles, self.violations
            )
        ]
        for way in self.ways.values():
            lines.append(
                "  {:<16} condition fired {:>4}x, updated register "
                "{:>4}x{}".format(
                    way.name,
                    way.condition_hits,
                    way.update_hits,
                    "" if way.exercised else "   <- NOT EXERCISED",
                )
            )
        return "\n".join(lines)


def measure_way_coverage(netlist, spec, stimulus):
    """Replay ``stimulus`` and measure coverage for one register spec.

    Returns a :class:`CoverageReport`. Instrumentation is added to a clone;
    the caller's netlist is untouched.
    """
    monitor = build_corruption_monitor(netlist, spec, functional=False)
    aug = monitor.netlist
    circuit = Circuit.attach(aug)
    ctx = MonitorCtx(circuit)
    condition_nets = [way.condition(ctx).nets[0] for way in spec.ways]

    sim = SequentialSimulator(aug)
    report = CoverageReport(register=spec.register)
    report.ways = {way.name: WayCoverage(way.name) for way in spec.ways}

    previous_value = sim.register_value(spec.register)
    for cycle, words in enumerate(stimulus):
        for name, word in words.items():
            sim.set_input(name, word)
        sim.propagate()
        # conditions sampled before the edge authorize the update this
        # very edge performs
        conditions_now = [sim.net_value(net) for net in condition_nets]
        violation = sim.net_value(monitor.violation_net)
        sim.clock()
        value = sim.register_value(spec.register)
        changed = value != previous_value
        for way, fired in zip(spec.ways, conditions_now):
            if fired:
                coverage = report.ways[way.name]
                coverage.condition_hits += 1
                if changed:
                    coverage.update_hits += 1
        if violation:
            report.violations += 1
            report.unauthorized_changes.append(cycle)
        previous_value = value
        report.cycles += 1
    return report
