"""Monitor-circuit synthesis for the paper's security properties.

Each property becomes a circuit appended to a *clone* of the design, ending
in a 1-bit sticky *objective* net — exactly the construction the paper uses
for its ATPG formulation ("the property is modeled as a monitor circuit,
which is appended with the target circuit", Section 3.2) and equally
consumable by BMC. The monitor is validation-only and never taped out.

* :func:`build_corruption_monitor` — Eq. (2), no-data-corruption: the
  critical register R may change only when one of its valid ways fires.
  A shadow register holds R_{t-1}; the valid-way disjunction is delayed one
  cycle (an update authorized at t-1 becomes visible in R at t); any change
  without authorization raises the violation. The optional *functional*
  flavour additionally checks authorized updates write the documented
  value.

* :func:`build_tracking_monitor` — Eq. (3), pseudo-critical detection:
  candidate register P must mirror R (one cycle later, or one cycle
  earlier with ``direction="before"``), each bit with a *consistent
  polarity* (x or ¬x — the two non-stuck Boolean functions of one bit the
  paper identifies). Polarity is learned on the first cycle and enforced
  afterwards. The check is constrained to valid input sequences (S ∈ V)
  with an environment-OK sticky flop ANDed into the objective.

Timing convention: all registers update on the same clock edge; a
valid-way condition sampled at cycle t-1 authorizes the change observed in
R at cycle t.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import PropertyError
from repro.netlist.builder import Circuit
from repro.properties.valid_ways import MonitorCtx

_uid = itertools.count()


@dataclass
class MonitorBuild:
    """An augmented netlist plus the nets the engines target."""

    netlist: object
    objective_net: int  # sticky violation (combinational D of the sticky flop)
    violation_net: int  # per-cycle violation signal
    property_name: str
    monitor_registers: list = field(default_factory=list)
    bit_objectives: list = field(default_factory=list)
    description: str = ""


def _prefix(kind, register):
    return "__mon{}_{}_{}".format(next(_uid), kind, register)


def _valid_signals(circuit, ctx, spec):
    """(valid_now, prioritized per-way conditions) for a RegisterSpec."""
    conds = [way.condition(ctx) for way in spec.ways]
    valid_now = circuit.any_of(*conds)
    prioritized = []
    blocked = None
    for cond in conds:
        if blocked is None:
            prioritized.append(cond)
            blocked = cond
        else:
            prioritized.append(cond & ~blocked)
            blocked = blocked | cond
    return valid_now, prioritized


def build_corruption_monitor(netlist, spec, functional=False, way_delay=1,
                             into=None):
    """Synthesize the Eq. (2) no-data-corruption monitor for one register.

    Returns a :class:`MonitorBuild` whose ``objective_net`` can be 1 at
    frame t iff some cycle <= t exhibits an unauthorized change of the
    register (or, with ``functional=True``, an authorized change to an
    undocumented value).

    ``way_delay`` shifts the valid-way window: 1 (default) is the standard
    timing (a way sampled at t-1 authorizes the change seen at t); 2 is
    used when auditing an "after"-direction pseudo-critical register (its
    contents lag the critical register by one more cycle); 0 when auditing
    a "before"-direction one.

    ``into`` places the monitor on an existing augmented netlist instead
    of a fresh clone of ``netlist`` — the shared-cone path uses this to
    stack several monitors on one clone so a single unrolling serves all
    their objectives. The caller owns the lifetime of ``into``; monitor
    prefixes are globally unique so stacked monitors never collide.
    """
    aug = netlist.clone() if into is None else into
    circuit = Circuit.attach(aug)
    ctx = MonitorCtx(circuit)
    register = spec.register
    current = ctx.reg(register)
    width = current.width
    prefix = _prefix("eq2", register)
    mon_regs = []

    shadow = circuit.reg(
        prefix + "_shadow", width, init=netlist.register_init(register)
    )
    shadow.drive(current)
    mon_regs.append(shadow.name)

    valid_now, prioritized = _valid_signals(circuit, ctx, spec)
    valid_authorizing = valid_now
    for stage in range(way_delay):
        valid_reg = circuit.reg(
            "{}_valid{}".format(prefix, stage), 1, init=1
        )
        valid_reg.drive(valid_authorizing)
        mon_regs.append(valid_reg.name)
        valid_authorizing = valid_reg.q

    changed = current != shadow.q
    violation = changed & ~valid_authorizing

    if functional and way_delay != 1:
        raise PropertyError(
            "functional value checks require the standard way_delay of 1"
        )
    if functional:
        for way, cond in zip(spec.ways, prioritized):
            expected = way.expected(ctx, width)
            if expected is None:
                continue
            exp_reg = circuit.reg(prefix + "_exp_" + way.name, width)
            exp_reg.drive(expected)
            cond_reg = circuit.reg(prefix + "_cond_" + way.name, 1)
            cond_reg.drive(cond)
            mon_regs.extend([exp_reg.name, cond_reg.name])
            mismatch = cond_reg.q & (current != exp_reg.q)
            violation = violation | mismatch

    sticky = circuit.reg(prefix + "_sticky", 1, init=0)
    sticky_d = sticky.q | violation
    sticky.drive(sticky_d)
    mon_regs.append(sticky.name)

    return MonitorBuild(
        netlist=aug,
        objective_net=sticky_d.nets[0],
        violation_net=violation.nets[0],
        property_name="no-corruption({})".format(register),
        monitor_registers=mon_regs,
        description=(
            "Eq.(2) monitor: register {!r} changes only via {} valid "
            "way(s){}".format(
                register,
                len(spec.ways),
                " + functional value checks" if functional else "",
            )
        ),
    )


def build_tracking_monitor(netlist, spec, candidate, direction="after",
                           into=None):
    """Synthesize the Eq. (3) pseudo-critical tracking monitor.

    Checks whether ``candidate`` (P) mirrors the spec's register (R) under
    every valid input sequence:

    * ``direction="after"``: P_t must equal pol(R_{t-1}) — P sits in R's
      fan-out (Figure 2's pseudo-critical stack pointer).
    * ``direction="before"``: P_{t-1} must equal pol(R_t) — P sits in
      R's fan-in.

    The objective is satisfiable iff some bit of P *fails* to track under a
    valid sequence; an UNSAT result at bound T therefore certifies P as
    pseudo-critical (for T cycles) and Algorithm 1 promotes it to the
    critical set.

    ``into`` stacks the monitor on an existing augmented netlist instead
    of cloning ``netlist`` (see :func:`build_corruption_monitor`).
    """
    if direction not in ("after", "before"):
        raise PropertyError("direction must be 'after' or 'before'")
    aug = netlist.clone() if into is None else into
    circuit = Circuit.attach(aug)
    ctx = MonitorCtx(circuit)
    register = spec.register
    current = ctx.reg(register)
    cand = ctx.reg(candidate)
    if cand.width != current.width:
        raise PropertyError(
            "candidate {!r} is {} bits, register {!r} is {} bits".format(
                candidate, cand.width, register, current.width
            )
        )
    width = current.width
    prefix = _prefix("eq3", register)
    mon_regs = []

    # Environment constraint: only valid update sequences (S in V).
    shadow_r = circuit.reg(
        prefix + "_shadowR", width, init=netlist.register_init(register)
    )
    shadow_r.drive(current)
    valid_now, _ = _valid_signals(circuit, ctx, spec)
    valid_d = circuit.reg(prefix + "_valid", 1, init=1)
    valid_d.drive(valid_now)
    eq2_violation = (current != shadow_r.q) & ~valid_d.q
    env_ok = circuit.reg(prefix + "_envok", 1, init=1)
    env_ok_d = env_ok.q & ~eq2_violation
    env_ok.drive(env_ok_d)
    mon_regs.extend([shadow_r.name, valid_d.name, env_ok.name])

    if direction == "after":
        # P_t vs R_{t-1}
        a_bits, b_bits = cand, shadow_r.q
    else:
        # P_{t-1} vs R_t
        shadow_p = circuit.reg(
            prefix + "_shadowP", width, init=netlist.register_init(candidate)
        )
        shadow_p.drive(cand)
        mon_regs.append(shadow_p.name)
        a_bits, b_bits = shadow_p.q, current

    match = ~(a_bits ^ b_bits)  # per-bit XNOR

    # Per-bit polarity learning. The first meaningful (P, R-delayed) pair is
    # visible at cycle 1 (cycle 0 only sees reset values); the polarity is
    # latched there and enforced from cycle 2 on.
    started = circuit.reg(prefix + "_started", 1, init=0)
    started.drive(circuit.true())
    seen = circuit.reg(prefix + "_seen", width, init=0)
    pol = circuit.reg(prefix + "_pol", width, init=0)
    first = started.q.repeat(width) & ~seen.q  # 1 exactly at cycle 1
    seen.drive(started.q.repeat(width))
    pol.drive((pol.q & ~first) | (match & first))
    mon_regs.extend([started.name, seen.name, pol.name])

    viol_bits = seen.q & (match ^ pol.q)
    violation = viol_bits.reduce_or() & env_ok_d

    sticky = circuit.reg(prefix + "_sticky", 1, init=0)
    sticky_d = sticky.q | violation
    sticky.drive(sticky_d)
    mon_regs.append(sticky.name)

    # Per-bit sticky objectives for fine-grained tracking analysis.
    bit_objs = []
    for x in range(width):
        bit_sticky = circuit.reg("{}_sticky_b{}".format(prefix, x), 1, init=0)
        bit_viol = viol_bits[x] & env_ok_d
        bit_d = bit_sticky.q | bit_viol
        bit_sticky.drive(bit_d)
        mon_regs.append(bit_sticky.name)
        bit_objs.append(bit_d.nets[0])

    return MonitorBuild(
        netlist=aug,
        objective_net=sticky_d.nets[0],
        violation_net=violation.nets[0],
        property_name="tracks({} ~ {}, {})".format(
            candidate, register, direction
        ),
        monitor_registers=mon_regs,
        bit_objectives=bit_objs,
        description=(
            "Eq.(3) monitor: does {!r} mirror {!r} ({}) with consistent "
            "per-bit polarity under valid sequences?".format(
                candidate, register, direction
            )
        ),
    )
