"""The expression-way DSL: a serializable form of ValidWays specs.

:class:`~repro.properties.valid_ways.ValidWay` conditions and expected
values are Python callables evaluated against a
:class:`~repro.properties.valid_ways.MonitorCtx` — perfect for building
monitor circuits, useless for putting a spec *in a file*. Design bundles
(:mod:`repro.corpus.bundle`) need exactly that, so this module defines a
small expression language covering everything the bundled specs (and any
spec built from the same vocabulary) can say, plus three conversions:

``trace_way_callable(fn)``
    Run the callable once against a :class:`SymbolicCtx` — a stand-in
    for ``MonitorCtx`` whose signal accessors return :class:`Expr` nodes
    instead of :class:`~repro.netlist.builder.BitVec` words. Operator
    overloads record the computation as a tree. A callable that uses an
    operation the tracer does not model (data-dependent branching, raw
    net surgery, ``reg_width`` arithmetic, ...) raises
    :class:`~repro.errors.SpecDslError` — it cannot be serialized, by
    design: the DSL is the *documentation format*, not a pickle jar.

``render(expr)`` / ``parse_expr(text)``
    The textual form stored in bundles, e.g.::

        probe("is_call") & probe("p4")
        reg("stack_pointer") + 2
        ~(probe("is_lcall") | probe("is_sjmp"))

    ``parse_expr(render(e))`` is the identity on trees and the grammar
    accepts nothing it cannot evaluate.

``build(expr, ctx)`` / ``compile_expr(expr)``
    Evaluate a tree against a real ``MonitorCtx``, re-building the exact
    gate sequence the original callable would have built (operands are
    evaluated left to right, exactly like the Python expression), so a
    spec that round-trips through the DSL synthesizes bit-identical
    monitor circuits.
"""

from __future__ import annotations

from repro.errors import SpecDslError
from repro.properties.valid_ways import RegisterSpec, ValidWay

_SIGNAL_KINDS = ("input", "reg", "probe")


# ------------------------------------------------------------------ nodes


class Expr:
    """Base node: immutable, comparable, hash-stable expression tree."""

    __slots__ = ()

    # -- operator overloads shared by traced and parsed trees ------------

    def __and__(self, other):
        return Nary("&", (self, _expr(other)))

    def __or__(self, other):
        return Nary("|", (self, _expr(other)))

    def __xor__(self, other):
        return Nary("^", (self, _expr(other)))

    def __invert__(self):
        return Unary("~", self)

    def __add__(self, other):
        return Arith("+", self, _int_or_expr(other))

    def __sub__(self, other):
        return Arith("-", self, _int_or_expr(other))

    def __getitem__(self, index):
        if not isinstance(index, int):
            raise SpecDslError(
                "spec DSL supports single-bit selects only, got "
                "{!r}".format(index)
            )
        return Bit(self, index)

    def eq_const(self, value):
        return EqConst(self, int(value))

    # traced specs must not branch on circuit values
    def __bool__(self):
        raise SpecDslError(
            "spec callable branches on a circuit value; data-dependent "
            "control flow cannot be serialized into the expression-way DSL"
        )

    def __eq__(self, other):  # structural equality (trees are values)
        return type(self) is type(other) and self._key() == other._key()

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return hash((type(self).__name__, self._key()))

    def __repr__(self):
        return "Expr({})".format(render(self))


class Signal(Expr):
    """``input("name")`` / ``reg("name")`` / ``probe("name")``."""

    __slots__ = ("kind", "name")

    def __init__(self, kind, name):
        if kind not in _SIGNAL_KINDS:
            raise SpecDslError("unknown signal kind {!r}".format(kind))
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "name", str(name))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Expr nodes are immutable")

    def _key(self):
        return (self.kind, self.name)


class Const(Expr):
    """``const(value, width)``; ``true()``/``false()`` render specially."""

    __slots__ = ("value", "width")

    def __init__(self, value, width):
        width = int(width)
        if width < 1:
            raise SpecDslError("const width must be >= 1")
        object.__setattr__(self, "value", int(value) & ((1 << width) - 1))
        object.__setattr__(self, "width", width)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Expr nodes are immutable")

    def _key(self):
        return (self.value, self.width)


class Unary(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand):
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "operand", _expr(operand))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Expr nodes are immutable")

    def _key(self):
        return (self.op, self.operand)


class Nary(Expr):
    """Left-associative chain of one bitwise operator: ``a & b & c``."""

    __slots__ = ("op", "operands")

    def __init__(self, op, operands):
        if op not in ("&", "|", "^"):
            raise SpecDslError("unknown operator {!r}".format(op))
        flat = []
        for operand in operands:
            operand = _expr(operand)
            # a & b & c traces as Nary(&, (Nary(&, (a, b)), c)); flatten
            # left-nested same-op chains so render/parse are canonical
            if isinstance(operand, Nary) and operand.op == op and not flat:
                flat.extend(operand.operands)
            else:
                flat.append(operand)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "operands", tuple(flat))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Expr nodes are immutable")

    def _key(self):
        return (self.op, self.operands)


class Arith(Expr):
    """``lhs + rhs`` / ``lhs - rhs``; rhs is an int literal or a tree."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op, lhs, rhs):
        if op not in ("+", "-"):
            raise SpecDslError("unknown operator {!r}".format(op))
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "lhs", _expr(lhs))
        object.__setattr__(
            self, "rhs", rhs if isinstance(rhs, int) else _expr(rhs)
        )

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Expr nodes are immutable")

    def _key(self):
        return (self.op, self.lhs, self.rhs)


class Bit(Expr):
    """Single-bit select ``expr[i]``."""

    __slots__ = ("operand", "index")

    def __init__(self, operand, index):
        object.__setattr__(self, "operand", _expr(operand))
        object.__setattr__(self, "index", int(index))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Expr nodes are immutable")

    def _key(self):
        return (self.operand, self.index)


class EqConst(Expr):
    """``expr.eq_const(value)`` — 1-bit equality against a literal."""

    __slots__ = ("operand", "value")

    def __init__(self, operand, value):
        object.__setattr__(self, "operand", _expr(operand))
        object.__setattr__(self, "value", int(value))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Expr nodes are immutable")

    def _key(self):
        return (self.operand, self.value)


class Mux(Expr):
    """``mux(sel, if_false, if_true)``."""

    __slots__ = ("sel", "if_false", "if_true")

    def __init__(self, sel, if_false, if_true):
        object.__setattr__(self, "sel", _expr(sel))
        object.__setattr__(self, "if_false", _expr(if_false))
        object.__setattr__(self, "if_true", _expr(if_true))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Expr nodes are immutable")

    def _key(self):
        return (self.sel, self.if_false, self.if_true)


def _expr(value):
    if isinstance(value, Expr):
        return value
    raise SpecDslError(
        "spec callable mixes circuit values with {!r}; only DSL "
        "expressions and integer add/sub literals are traceable".format(
            type(value).__name__
        )
    )


def _int_or_expr(value):
    if isinstance(value, int):
        return value
    return _expr(value)


# ----------------------------------------------------------------- tracing


class SymbolicCtx:
    """MonitorCtx look-alike whose accessors return :class:`Expr` nodes.

    Covers the documented spec vocabulary (`input`/`reg`/`probe`/`const`/
    `true`/`false`/`all_of`/`any_of`/`mux`); anything else a callable
    reaches for raises :class:`SpecDslError` via ``__getattr__``.
    """

    def input(self, name):
        return Signal("input", name)

    def reg(self, name):
        return Signal("reg", name)

    def probe(self, name):
        return Signal("probe", name)

    def const(self, value, width):
        return Const(value, width)

    def true(self):
        return Const(1, 1)

    def false(self):
        return Const(0, 1)

    def all_of(self, *conds):
        return Nary("&", conds)

    def any_of(self, *conds):
        return Nary("|", conds)

    def mux(self, sel, if_false, if_true):
        return Mux(sel, if_false, if_true)

    def __getattr__(self, name):
        raise SpecDslError(
            "spec callable uses MonitorCtx.{}(), which the expression-way "
            "DSL does not model; rewrite the way in terms of input/reg/"
            "probe/const/mux and the bitwise operators".format(name)
        )


def trace_way_callable(fn):
    """Run a way callable symbolically; returns its :class:`Expr` tree."""
    try:
        result = fn(SymbolicCtx())
    except SpecDslError:
        raise
    except Exception as exc:
        raise SpecDslError(
            "spec callable could not be traced into the DSL: {}".format(exc)
        ) from exc
    return _expr(result)


# --------------------------------------------------------------- rendering


def render(expr):
    """Canonical textual form of a tree (``parse_expr`` inverts it)."""
    return _render(expr, parent=None)


def _render(expr, parent):
    if isinstance(expr, Signal):
        return '{}("{}")'.format(expr.kind, expr.name)
    if isinstance(expr, Const):
        if expr.width == 1 and expr.value == 1:
            return "true()"
        if expr.width == 1 and expr.value == 0:
            return "false()"
        return "const({}, {})".format(expr.value, expr.width)
    if isinstance(expr, Unary):
        return "~{}".format(_render(expr.operand, parent="~"))
    if isinstance(expr, Nary):
        body = " {} ".format(expr.op).join(
            _render(op, parent=expr.op) for op in expr.operands
        )
        return _parenthesize(body, parent)
    if isinstance(expr, Arith):
        rhs = (
            str(expr.rhs)
            if isinstance(expr.rhs, int)
            else _render(expr.rhs, parent=expr.op)
        )
        body = "{} {} {}".format(
            _render(expr.lhs, parent=expr.op), expr.op, rhs
        )
        return _parenthesize(body, parent)
    if isinstance(expr, Bit):
        return "{}[{}]".format(_render(expr.operand, parent="["), expr.index)
    if isinstance(expr, EqConst):
        return "{}.eq_const({})".format(
            _render(expr.operand, parent="."), expr.value
        )
    if isinstance(expr, Mux):
        return "mux({}, {}, {})".format(
            _render(expr.sel, parent=None),
            _render(expr.if_false, parent=None),
            _render(expr.if_true, parent=None),
        )
    raise SpecDslError("cannot render {!r}".format(expr))


def _parenthesize(body, parent):
    # compound expressions nested under any operator get parentheses;
    # top-level and call-argument positions do not
    if parent is None:
        return body
    return "({})".format(body)


# ----------------------------------------------------------------- parsing


class _Lexer:
    _PUNCT = ("(", ")", "[", "]", ",", "&", "|", "^", "~", "+", "-", ".")

    def __init__(self, text):
        self.text = text
        self.pos = 0
        self.tokens = []
        self._scan()
        self.index = 0

    def _scan(self):
        text = self.text
        i = 0
        while i < len(text):
            ch = text[i]
            if ch.isspace():
                i += 1
                continue
            if ch in self._PUNCT:
                self.tokens.append(("punct", ch))
                i += 1
                continue
            if ch == '"':
                j = text.find('"', i + 1)
                if j < 0:
                    raise SpecDslError(
                        "unterminated string in {!r}".format(text)
                    )
                self.tokens.append(("string", text[i + 1 : j]))
                i = j + 1
                continue
            if ch.isdigit():
                j = i
                while j < len(text) and (
                    text[j].isalnum() or text[j] == "x"
                ):
                    j += 1
                literal = text[i:j]
                try:
                    value = int(literal, 0)
                except ValueError:
                    raise SpecDslError(
                        "bad integer literal {!r}".format(literal)
                    ) from None
                self.tokens.append(("int", value))
                i = j
                continue
            if ch.isalpha() or ch == "_":
                j = i
                while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                self.tokens.append(("name", text[i:j]))
                i = j
                continue
            raise SpecDslError(
                "unexpected character {!r} in spec expression {!r}".format(
                    ch, text
                )
            )
        self.tokens.append(("eof", None))

    def peek(self):
        return self.tokens[self.index]

    def next(self):
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind, value=None):
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise SpecDslError(
                "expected {} in spec expression {!r}, found {!r}".format(
                    value or kind, self.text, token[1]
                )
            )
        return token


class _Parser:
    """Grammar (loosest binding first)::

        expr    := arith (("&" | "|" | "^") arith)*     # one op per chain
        arith   := unary (("+" | "-") (int | unary))*
        unary   := "~" unary | postfix
        postfix := primary ("[" int "]" | "." "eq_const" "(" int ")")*
        primary := call | "(" expr ")"
        call    := name "(" args ")"
    """

    def __init__(self, text):
        self.lexer = _Lexer(text)
        self.text = text

    def parse(self):
        expr = self._expr()
        self.lexer.expect("eof")
        return expr

    def _expr(self):
        first = self._arith()
        kind, value = self.lexer.peek()
        if kind == "punct" and value in ("&", "|", "^"):
            op = value
            operands = [first]
            while True:
                kind, value = self.lexer.peek()
                if kind != "punct" or value not in ("&", "|", "^"):
                    break
                if value != op:
                    raise SpecDslError(
                        "mixed {!r}/{!r} without parentheses in "
                        "{!r}".format(op, value, self.text)
                    )
                self.lexer.next()
                operands.append(self._arith())
            return Nary(op, operands)
        return first

    def _arith(self):
        expr = self._unary()
        while True:
            kind, value = self.lexer.peek()
            if kind != "punct" or value not in ("+", "-"):
                return expr
            self.lexer.next()
            nkind, nvalue = self.lexer.peek()
            if nkind == "int":
                self.lexer.next()
                expr = Arith(value, expr, nvalue)
            else:
                expr = Arith(value, expr, self._unary())

    def _unary(self):
        kind, value = self.lexer.peek()
        if kind == "punct" and value == "~":
            self.lexer.next()
            return Unary("~", self._unary())
        return self._postfix()

    def _postfix(self):
        expr = self._primary()
        while True:
            kind, value = self.lexer.peek()
            if kind == "punct" and value == "[":
                self.lexer.next()
                index = self.lexer.expect("int")[1]
                self.lexer.expect("punct", "]")
                expr = Bit(expr, index)
            elif kind == "punct" and value == ".":
                self.lexer.next()
                self.lexer.expect("name", "eq_const")
                self.lexer.expect("punct", "(")
                literal = self.lexer.expect("int")[1]
                self.lexer.expect("punct", ")")
                expr = EqConst(expr, literal)
            else:
                return expr

    def _primary(self):
        kind, value = self.lexer.next()
        if kind == "punct" and value == "(":
            expr = self._expr()
            self.lexer.expect("punct", ")")
            return expr
        if kind == "name":
            return self._call(value)
        raise SpecDslError(
            "unexpected {!r} in spec expression {!r}".format(
                value, self.text
            )
        )

    def _call(self, name):
        self.lexer.expect("punct", "(")
        if name in _SIGNAL_KINDS:
            signal = self.lexer.expect("string")[1]
            self.lexer.expect("punct", ")")
            return Signal(name, signal)
        if name == "const":
            value = self.lexer.expect("int")[1]
            self.lexer.expect("punct", ",")
            width = self.lexer.expect("int")[1]
            self.lexer.expect("punct", ")")
            return Const(value, width)
        if name in ("true", "false"):
            self.lexer.expect("punct", ")")
            return Const(1 if name == "true" else 0, 1)
        if name == "mux":
            sel = self._expr()
            self.lexer.expect("punct", ",")
            if_false = self._expr()
            self.lexer.expect("punct", ",")
            if_true = self._expr()
            self.lexer.expect("punct", ")")
            return Mux(sel, if_false, if_true)
        raise SpecDslError(
            "unknown function {!r} in spec expression {!r}".format(
                name, self.text
            )
        )


def parse_expr(text):
    """Parse DSL text into an :class:`Expr` tree."""
    if not isinstance(text, str) or not text.strip():
        raise SpecDslError("empty spec expression")
    return _Parser(text).parse()


# --------------------------------------------------------------- evaluation


def build(expr, ctx):
    """Evaluate a tree against a real MonitorCtx, building circuitry.

    Operand order matches Python's left-to-right evaluation of the
    original callable, so the gate sequence (and therefore every net id,
    via the builder's structural hashing) is identical.
    """
    if isinstance(expr, Signal):
        return getattr(ctx, expr.kind)(expr.name)
    if isinstance(expr, Const):
        return ctx.const(expr.value, expr.width)
    if isinstance(expr, Unary):
        return ~build(expr.operand, ctx)
    if isinstance(expr, Nary):
        value = build(expr.operands[0], ctx)
        for operand in expr.operands[1:]:
            word = build(operand, ctx)
            if expr.op == "&":
                value = value & word
            elif expr.op == "|":
                value = value | word
            else:
                value = value ^ word
        return value
    if isinstance(expr, Arith):
        lhs = build(expr.lhs, ctx)
        rhs = expr.rhs if isinstance(expr.rhs, int) else build(expr.rhs, ctx)
        return lhs + rhs if expr.op == "+" else lhs - rhs
    if isinstance(expr, Bit):
        return build(expr.operand, ctx)[expr.index]
    if isinstance(expr, EqConst):
        return build(expr.operand, ctx).eq_const(expr.value)
    if isinstance(expr, Mux):
        sel = build(expr.sel, ctx)
        if_false = build(expr.if_false, ctx)
        if_true = build(expr.if_true, ctx)
        return ctx.mux(sel, if_false, if_true)
    raise SpecDslError("cannot evaluate {!r}".format(expr))


class _CompiledWay:
    """Picklable callable wrapper: a parsed tree bound to :func:`build`.

    A plain ``lambda m: build(expr, m)`` would work but not survive the
    fork/spawn boundaries the runner and scheduler cross; a module-level
    class with state does.
    """

    __slots__ = ("expr",)

    def __init__(self, expr):
        self.expr = expr

    def __call__(self, ctx):
        return build(self.expr, ctx)

    def __getstate__(self):
        return render(self.expr)

    def __setstate__(self, state):
        self.expr = parse_expr(state)

    def __repr__(self):
        return "compiled<{}>".format(render(self.expr))


def compile_expr(expr):
    """Turn a tree (or DSL text) into a MonitorCtx callable."""
    if isinstance(expr, str):
        expr = parse_expr(expr)
    return _CompiledWay(_expr(expr))


# ------------------------------------------------------- spec (de)serialize


def way_to_dict(way):
    """Serialize one :class:`ValidWay` via the DSL (raises SpecDslError
    when a callable is untraceable)."""
    payload = {
        "name": way.name,
        "cycle": way.cycle,
        "expression": way.expression,
        "when": render(trace_way_callable(way.when)),
        "value": None,
    }
    if way.value is not None:
        payload["value"] = render(trace_way_callable(way.value))
    return payload


def way_from_dict(payload):
    value = payload.get("value")
    return ValidWay(
        name=payload["name"],
        when=compile_expr(payload["when"]),
        value=None if value is None else compile_expr(value),
        cycle=payload.get("cycle", "any"),
        expression=payload.get("expression", ""),
    )


def register_spec_to_dict(reg_spec):
    return {
        "register": reg_spec.register,
        "description": reg_spec.description,
        "observe_latency": reg_spec.observe_latency,
        "ways": [way_to_dict(way) for way in reg_spec.ways],
    }


def register_spec_from_dict(payload):
    return RegisterSpec(
        register=payload["register"],
        ways=[way_from_dict(way) for way in payload["ways"]],
        description=payload.get("description", ""),
        observe_latency=payload.get("observe_latency", 1),
    )
