"""Verilog/SVA assertion text generation.

The paper's toolflow ("We generated Verilog assertions for the data
corruption property ... embedded into the respective designs and provided
as input to the BMC engine", Section 3.3.1) exchanges properties as Verilog
assertion text. This module renders a :class:`RegisterSpec` into the
equivalent SystemVerilog assertions so the same specs can be consumed by a
commercial flow. Conditions use each way's ``expression`` string (the
human-readable form of its circuit condition).
"""

from __future__ import annotations

from repro.errors import PropertyError


def _cond_expr(way):
    if way.expression:
        return way.expression
    raise PropertyError(
        "valid way {!r} has no textual expression; set ValidWay.expression "
        "to emit assertions".format(way.name)
    )


def corruption_assertion(spec, clock="clk", reset=None):
    """Eq. (2) as an SVA property block for one register.

    The register may change between consecutive cycles only when some valid
    way was active (checks each bit, per the paper's partial-corruption
    note).
    """
    register = spec.register
    valid = " || ".join("({})".format(_cond_expr(w)) for w in spec.ways)
    lines = [
        "// Eq.(2) no-data-corruption property for register '{}'".format(
            register
        ),
        "// valid ways: {}".format(", ".join(w.name for w in spec.ways)),
        "property p_no_corruption_{};".format(register),
        "  @(posedge {}) ".format(clock)
        + ("disable iff ({}) ".format(reset) if reset else "")
        + "!({}) |=> ({} == $past({}));".format(valid, register, register),
        "endproperty",
        "assert_no_corruption_{0}: assert property (p_no_corruption_{0});".format(
            register
        ),
    ]
    return "\n".join(lines)


def functional_assertions(spec, clock="clk", reset=None):
    """Per-way value checks ("CALL increments the stack pointer by 1")."""
    blocks = []
    for way in spec.ways:
        if way.value is None:
            continue
        cond = _cond_expr(way)
        value = way.value_expression if hasattr(way, "value_expression") else None
        comment = "// way '{}' (cycle {}): {}".format(
            way.name, way.cycle, cond
        )
        body = (
            "property p_{0}_{1};\n"
            "  @(posedge {2}) {3}({4}) |=> "
            "({0} == $past(`EXPECTED_{0}_{1}));\n"
            "endproperty\n"
            "assert_{0}_{1}: assert property (p_{0}_{1});".format(
                spec.register,
                way.name,
                clock,
                "disable iff ({}) ".format(reset) if reset else "",
                cond,
            )
        )
        _ = value
        blocks.append(comment + "\n" + body)
    return "\n\n".join(blocks)


def tracking_assertion(spec, candidate, clock="clk", direction="after"):
    """Eq. (3) pseudo-critical tracking as an SVA block."""
    register = spec.register
    if direction == "after":
        relation = "({cand} == $past({reg})) || ({cand} == ~$past({reg}))"
    else:
        relation = "($past({cand}) == {reg}) || ($past({cand}) == ~{reg})"
    relation = relation.format(cand=candidate, reg=register)
    valid = " || ".join("({})".format(_cond_expr(w)) for w in spec.ways)
    lines = [
        "// Eq.(3) pseudo-critical tracking: does '{}' mirror '{}'?".format(
            candidate, register
        ),
        "property p_tracks_{}_{};".format(candidate, register),
        "  @(posedge {}) ({}) |=> {};".format(clock, valid, relation),
        "endproperty",
        "assert_tracks_{0}_{1}: assert property (p_tracks_{0}_{1});".format(
            candidate, register
        ),
    ]
    return "\n".join(lines)


def bypass_comment(spec):
    """Eq. (4) cannot be a plain SVA assertion (exists/forall); emit the
    documentation block the integrator attaches to the CEGIS check."""
    return (
        "// Eq.(4) no-bypass property for register '{0}':\n"
        "//   not exists S . forall i . forall p != q .\n"
        "//       outputs(t+1..t+{1}) identical under {0} = p and {0} = q\n"
        "// Checked by repro.properties.bypass.BypassChecker (CEGIS), not\n"
        "// expressible as a bounded SVA assertion.".format(
            spec.register, max(1, spec.observe_latency)
        )
    )


def render_spec(spec, clock="clk", reset=None, candidates=()):
    """Full assertion file for one register spec."""
    parts = [corruption_assertion(spec, clock, reset)]
    functional = functional_assertions(spec, clock, reset)
    if functional:
        parts.append(functional)
    for candidate in candidates:
        parts.append(tracking_assertion(spec, candidate, clock))
    parts.append(bypass_comment(spec))
    return "\n\n".join(parts) + "\n"
