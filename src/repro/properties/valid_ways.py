"""The "valid ways to update a register" specification DSL.

The paper's central artifact is the set ``V`` of valid ways to update a
critical register, taken from the IP's datasheet (Table 2 gives the RISC
example). A :class:`ValidWay` is one row of such a table: a *condition*
(when may the register change) and optionally the *expected new value*.
Conditions and values are circuit-building callables evaluated against a
:class:`MonitorCtx`, so the same spec drives monitor synthesis for BMC,
ATPG and the Verilog assertion writer.

A :class:`RegisterSpec` bundles the ways for one critical register;
a :class:`DesignSpec` bundles everything the defender knows about a 3PIP:
its critical registers, their specs, and (for the benchmark suite) which
Trojan the design carries so experiments can score detections.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PropertyError
from repro.netlist.builder import BitVec


class MonitorCtx:
    """Access to a design's ports/registers/probes while building monitors.

    Conditions receive one of these; they read design signals by name and
    combine them with :class:`~repro.netlist.builder.BitVec` operators.
    """

    def __init__(self, circuit):
        self.circuit = circuit
        self.netlist = circuit.netlist

    def input(self, name):
        """An input port of the design, as a BitVec."""
        return BitVec(self.circuit, self.netlist.inputs[name])

    def reg(self, name):
        """Current (Q) value of a named register."""
        return BitVec(self.circuit, self.netlist.register_q_nets(name))

    def reg_width(self, name):
        return self.netlist.register_width(name)

    def probe(self, name):
        """A named probe exposed by the design (decoded signals etc.)."""
        return BitVec(self.circuit, self.netlist.probe_nets(name))

    def const(self, value, width):
        return self.circuit.const(value, width)

    def true(self):
        return self.circuit.true()

    def false(self):
        return self.circuit.false()

    def all_of(self, *conds):
        return self.circuit.all_of(*conds)

    def any_of(self, *conds):
        return self.circuit.any_of(*conds)

    def mux(self, sel, if_false, if_true):
        return self.circuit.mux(sel, if_false, if_true)


@dataclass
class ValidWay:
    """One authorized update of a register (one row of Table 2).

    ``when`` builds the 1-bit enabling condition; ``value`` (optional)
    builds the expected next value — used by the *functional* flavour of the
    Eq. 2 monitor, which additionally checks that authorized updates write
    the documented value ("the stack pointer increments by 1 on CALL").
    ``cycle`` and ``expression`` are documentation (the datasheet's cycle
    column and a human-readable condition for generated assertions).
    """

    name: str
    when: object  # callable(MonitorCtx) -> 1-bit BitVec
    value: object = None  # callable(MonitorCtx) -> N-bit BitVec, optional
    cycle: str = "any"
    expression: str = ""

    def condition(self, ctx):
        cond = self.when(ctx)
        if cond.width != 1:
            raise PropertyError(
                "valid way {!r}: condition must be 1 bit, got {}".format(
                    self.name, cond.width
                )
            )
        return cond

    def expected(self, ctx, width):
        if self.value is None:
            return None
        value = self.value(ctx)
        if value.width != width:
            raise PropertyError(
                "valid way {!r}: expected value is {} bits, register is "
                "{}".format(self.name, value.width, width)
            )
        return value


@dataclass
class RegisterSpec:
    """The defender's knowledge about one critical register."""

    register: str
    ways: list
    description: str = ""
    observe_latency: int = 1  # cycles from register to outputs (Eq. 4's L)

    def __post_init__(self):
        if not self.ways:
            raise PropertyError(
                "register {!r} needs at least one valid way (include "
                "reset)".format(self.register)
            )


@dataclass
class TrojanInfo:
    """Ground truth about an inserted Trojan, for scoring experiments."""

    name: str
    trigger: str
    payload: str
    target_register: str
    trigger_cycles: int = 1  # cycles needed to arm the trigger
    # nets allocated by the Trojan constructor — lets the FANCI/VeriTrust
    # benches score whether a flagged wire actually belongs to the Trojan
    trojan_nets: frozenset = frozenset()


@dataclass
class DesignSpec:
    """Everything the SoC integrator knows about a 3PIP under audit."""

    name: str
    critical: dict  # register name -> RegisterSpec
    trojan: TrojanInfo | None = None
    notes: str = ""
    candidate_registers: list = field(default_factory=list)
    # registers to exclude from pseudo-critical candidacy (e.g. monitors)
    exclude_registers: list = field(default_factory=list)
    # input ports held at constant values during formal runs; the standard
    # entry is {"reset": 0} — the engines' frame-0 state *is* the reset
    # state, so holding reset inactive loses no behaviours while making
    # the control FSM input-independent (a large search-space cut).
    pinned_inputs: dict = field(default_factory=dict)

    def spec_for(self, register):
        try:
            return self.critical[register]
        except KeyError:
            raise PropertyError(
                "no spec for register {!r}".format(register)
            ) from None


# Convenience condition builders -------------------------------------------


def on_input(name, bit=None):
    """Condition: input port (or one bit of it) is 1."""

    def build(ctx):
        value = ctx.input(name)
        if bit is not None:
            return value[bit]
        return value

    return build


def on_probe(name, bit=None):
    """Condition: probe signal (or one bit of it) is 1."""

    def build(ctx):
        value = ctx.probe(name)
        if bit is not None:
            return value[bit]
        return value

    return build
