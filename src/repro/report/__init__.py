"""Shared report serialization (SARIF) for the static modalities.

Both static screens — :mod:`repro.lint` and :mod:`repro.ift` — emit
SARIF 2.1.0 for code-scanning UIs. The writer lives here so each
modality only describes its *tool* (driver name, rule registry) and the
log assembly, level mapping and logical-location encoding stay in one
place; :func:`merged_log` stitches the two into a single multi-run
document.
"""

from repro.report.sarif import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    driver_rule,
    finding_result,
    make_log,
    make_run,
    merged_log,
    severity_level,
    write_log,
)

__all__ = [
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "driver_rule",
    "finding_result",
    "make_log",
    "make_run",
    "merged_log",
    "severity_level",
    "write_log",
]
