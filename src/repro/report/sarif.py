"""Generic SARIF 2.1.0 building blocks shared by lint and IFT.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest. Gate-level designs have no source files, so findings carry
*logical* locations (``design/register`` or ``design/net``) instead of
physical ones, which the spec explicitly allows.

The functions here are deliberately tool-agnostic: a modality supplies
its driver metadata and findings (anything with the
:class:`~repro.lint.findings.LintFinding` field shape — ``rule``,
``severity``, ``message``, ``design``, ``register``, ``net_names``,
``evidence``) and gets back spec-shaped ``run``/``result`` dicts. One
modality = one ``run``; :func:`merged_log` concatenates runs from
several modalities into a single multi-run log, which is how
``repro ift`` emits lint + IFT evidence as one scan artifact.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from repro.lint.findings import ERROR, INFO, SUSPICIOUS, WARN

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

# SARIF defines note/warning/error; the Trojan-shaped ``suspicious``
# severity maps to error so scanning UIs surface it as blocking.
_LEVEL = {INFO: "note", WARN: "warning", SUSPICIOUS: "error", ERROR: "error"}

_INFORMATION_URI = "https://github.com/paper-repro/conf-dac-trojan"
_TOOL_VERSION = "0.2.0"


def severity_level(severity: str) -> str:
    """Map a repro severity name to a SARIF result level."""
    return _LEVEL[severity]


def driver_rule(
    rule_id: str, description: str, severity: str
) -> dict[str, Any]:
    """One ``tool.driver.rules`` entry (a SARIF reportingDescriptor)."""
    return {
        "id": rule_id,
        "shortDescription": {"text": description},
        "defaultConfiguration": {"level": severity_level(severity)},
        "properties": {"severity": severity},
    }


def finding_result(
    finding: Any, rule_index: int | None
) -> dict[str, Any]:
    """One SARIF ``result`` for a lint/IFT finding."""
    subject = finding.register or (
        finding.net_names[0] if finding.net_names else finding.design
    )
    fq_name = (
        "{}/{}".format(finding.design, subject)
        if finding.design
        else subject
    )
    result: dict[str, Any] = {
        "ruleId": finding.rule,
        "level": severity_level(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "logicalLocations": [
                    {
                        "name": subject,
                        "fullyQualifiedName": fq_name,
                        "kind": "member",
                    }
                ]
            }
        ],
        "properties": {
            "severity": finding.severity,
            "design": finding.design,
            "register": finding.register,
            "netNames": list(finding.net_names),
            "evidence": dict(finding.evidence),
        },
    }
    if rule_index is not None:
        result["ruleIndex"] = rule_index
    return result


def make_run(
    driver_name: str,
    rules: Sequence[dict[str, Any]],
    findings: Sequence[Any],
    properties: Mapping[str, Any],
) -> dict[str, Any]:
    """One SARIF ``run``: a tool descriptor plus its results."""
    index = {entry["id"]: i for i, entry in enumerate(rules)}
    return {
        "tool": {
            "driver": {
                "name": driver_name,
                "informationUri": _INFORMATION_URI,
                "version": _TOOL_VERSION,
                "rules": list(rules),
            }
        },
        "results": [
            finding_result(finding, index.get(finding.rule))
            for finding in findings
        ],
        "properties": dict(properties),
    }


def make_log(runs: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Wrap runs into a top-level SARIF log."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": list(runs),
    }


def merged_log(*run_groups: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """One multi-run log from several modalities' run lists."""
    runs: list[dict[str, Any]] = []
    for group in run_groups:
        runs.extend(group)
    return make_log(runs)


def write_log(path: Any, log: Mapping[str, Any]) -> Any:
    """Serialize a SARIF log dict to ``path``; returns the path."""
    with open(path, "w") as handle:
        json.dump(log, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path
