"""Supervised execution layer for Algorithm 1's property checks.

Everything the detector and the benchmark harness need to survive
hostile workloads: crash-isolated workers with hard timeouts and memory
caps (:mod:`~repro.runner.worker`), retry policies with escalating
budgets (:mod:`~repro.runner.policy`), structured per-check outcomes
(:mod:`~repro.runner.outcome`), audit checkpoint/resume
(:mod:`~repro.runner.checkpoint`) and deterministic fault injection for
testing all of it (:mod:`~repro.runner.faultinject`).
"""

from repro.runner.checkpoint import (
    AuditCheckpoint,
    RestoredResult,
    finding_from_dict,
    finding_to_dict,
)
from repro.runner.faultinject import FaultInjector, FaultSpec, InjectedFault
from repro.runner.outcome import (
    AttemptRecord,
    CachedResult,
    CheckOutcome,
    PartialVerdict,
)
from repro.runner.policy import (
    BUDGET,
    CRASHED,
    DEGRADED_STATUSES,
    EXHAUSTED,
    OK,
    TIMEOUT,
    ResourceLimits,
    RetryPolicy,
)
from repro.runner.execution import CheckExecution
from repro.runner.supervisor import (
    INLINE,
    PROCESS,
    CheckRunner,
    absorb_message,
    absorb_result,
    strip_telemetry,
)
from repro.runner.tasks import (
    BypassTask,
    CallableTask,
    GroupObjectiveTask,
    ObjectiveTask,
)

__all__ = [
    "AuditCheckpoint",
    "AttemptRecord",
    "BUDGET",
    "BypassTask",
    "CachedResult",
    "CallableTask",
    "CheckExecution",
    "CheckOutcome",
    "CheckRunner",
    "GroupObjectiveTask",
    "absorb_message",
    "absorb_result",
    "strip_telemetry",
    "CRASHED",
    "DEGRADED_STATUSES",
    "EXHAUSTED",
    "FaultInjector",
    "FaultSpec",
    "INLINE",
    "InjectedFault",
    "ObjectiveTask",
    "OK",
    "PartialVerdict",
    "PROCESS",
    "ResourceLimits",
    "RestoredResult",
    "RetryPolicy",
    "TIMEOUT",
    "finding_from_dict",
    "finding_to_dict",
]
