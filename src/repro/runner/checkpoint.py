"""Checkpoint/resume for multi-register audits.

An SoC-scale audit runs Algorithm 1 over dozens of critical registers;
losing hours of completed findings because the process died on register
N is unacceptable at the ROADMAP's service scale. :class:`AuditCheckpoint`
persists each completed :class:`RegisterFinding` to a JSON file as soon
as the register's audit finishes; a later run pointed at the same file
(``--resume``) restores those findings verbatim and audits only the
remaining registers.

The on-disk format is deliberately engine-agnostic: engine results are
reduced to the shared ``status`` / ``bound`` / ``witness`` / ``p_value``
/ ``q_value`` shape and restored as :class:`RestoredResult` objects that
behave identically in reports. Writes are atomic (temp file + rename)
so a crash mid-write never corrupts the checkpoint.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.bmc.witness import Witness
from repro.errors import CheckpointError, CheckpointWriteError
from repro.runner.outcome import CheckOutcome

FORMAT_VERSION = 1


@dataclass
class RestoredResult:
    """Engine-result shape rebuilt from a checkpoint entry."""

    status: str
    bound: int
    witness: Witness | None = None
    elapsed: float = 0.0
    peak_memory: int = 0
    property_name: str = ""
    p_value: int | None = None
    q_value: int | None = None
    restored: bool = True
    extra: dict = field(default_factory=dict)

    @property
    def detected(self):
        return self.status == "violated"

    def summary(self):
        return "[{}] {} at bound {} (restored from checkpoint)".format(
            self.property_name or "check", self.status, self.bound
        )


# ----------------------------------------------------------- serialization


def _witness_to_dict(witness):
    if witness is None:
        return None
    return witness.to_dict()


def _witness_from_dict(data):
    if data is None:
        return None
    return Witness.from_dict(data)


def result_to_dict(result):
    """Reduce any engine result to the shared JSON shape."""
    if result is None:
        return None
    data = {
        "status": getattr(result, "status", "unknown"),
        "bound": getattr(result, "bound", 0),
        "elapsed": getattr(result, "elapsed", 0.0),
        "peak_memory": getattr(result, "peak_memory", 0),
        "property_name": getattr(result, "property_name", ""),
        "witness": _witness_to_dict(getattr(result, "witness", None)),
    }
    for key in ("p_value", "q_value"):
        value = getattr(result, key, None)
        if value is not None:
            data[key] = value
    return data


def result_from_dict(data):
    if data is None:
        return None
    return RestoredResult(
        status=data.get("status", "unknown"),
        bound=data.get("bound", 0),
        witness=_witness_from_dict(data.get("witness")),
        elapsed=data.get("elapsed", 0.0),
        peak_memory=data.get("peak_memory", 0),
        property_name=data.get("property_name", ""),
        p_value=data.get("p_value"),
        q_value=data.get("q_value"),
    )


def finding_to_dict(finding):
    """Serialize one completed :class:`RegisterFinding`."""
    return {
        "register": finding.register,
        "pseudo_criticals": [list(pair) for pair in finding.pseudo_criticals],
        "corruption": result_to_dict(finding.corruption),
        "bypass": result_to_dict(finding.bypass),
        "pseudo_corruptions": {
            name: result_to_dict(result)
            for name, result in finding.pseudo_corruptions.items()
        },
        "witness_confirmed": finding.witness_confirmed,
        "elapsed": finding.elapsed,
        "check_outcomes": {
            name: outcome.to_dict()
            for name, outcome in finding.check_outcomes.items()
        },
        "lint_evidence": [
            dict(entry) for entry in getattr(finding, "lint_evidence", [])
        ],
        "ift_evidence": [
            dict(entry) for entry in getattr(finding, "ift_evidence", [])
        ],
        "diff_evidence": [
            dict(entry) for entry in getattr(finding, "diff_evidence", [])
        ],
    }


def finding_from_dict(data):
    # imported here: repro.core.detector imports repro.runner, so a
    # module-level import of repro.core.report would close a cycle when
    # repro.runner is imported first
    from repro.core.report import RegisterFinding

    finding = RegisterFinding(register=data["register"])
    finding.pseudo_criticals = [
        tuple(pair) for pair in data.get("pseudo_criticals", [])
    ]
    finding.corruption = result_from_dict(data.get("corruption"))
    finding.bypass = result_from_dict(data.get("bypass"))
    finding.pseudo_corruptions = {
        name: result_from_dict(entry)
        for name, entry in data.get("pseudo_corruptions", {}).items()
    }
    finding.witness_confirmed = data.get("witness_confirmed")
    finding.elapsed = data.get("elapsed", 0.0)
    finding.check_outcomes = {
        name: CheckOutcome.from_dict(entry)
        for name, entry in data.get("check_outcomes", {}).items()
    }
    finding.lint_evidence = [
        dict(entry) for entry in data.get("lint_evidence", [])
    ]
    finding.ift_evidence = [
        dict(entry) for entry in data.get("ift_evidence", [])
    ]
    finding.diff_evidence = [
        dict(entry) for entry in data.get("diff_evidence", [])
    ]
    finding.restored = True
    return finding


# ----------------------------------------------------------------- storage


def warn_checkpoint_lost(exc, tracer=None):
    """Shared "checkpointing disabled" warning for detector + scheduler.

    Emits a Python :class:`RuntimeWarning` (visible in logs/pytest) and,
    when tracing, a ``checkpoint.write_failed`` telemetry point — the
    audit continues, so this is the only record the failure leaves.
    """
    import warnings

    warnings.warn(
        "audit continues WITHOUT checkpointing: {}".format(exc),
        RuntimeWarning,
        stacklevel=3,
    )
    if tracer is not None and tracer.enabled:
        tracer.point(
            "checkpoint.write_failed",
            path=exc.path,
            error=str(exc.cause),
        )
        tracer.metrics.counter("checkpoint.write_failures").inc()


class AuditCheckpoint:
    """JSON-backed store of completed register findings for one audit."""

    def __init__(self, path):
        self.path = Path(path)
        self._data = None

    # ------------------------------------------------------------- lifecycle

    def begin(self, design, engine, max_cycles):
        """Open (or create) the checkpoint for one audit configuration.

        Returns the restored findings, ``{register: RegisterFinding}``.
        A checkpoint written for a different design/engine/bound is
        rejected — resuming it would splice incompatible guarantees.
        """
        if self.path.exists():
            try:
                raw = json.loads(self.path.read_text())
            except (OSError, ValueError) as exc:
                raise CheckpointError(
                    "unreadable checkpoint {}: {}".format(self.path, exc)
                ) from exc
            if raw.get("version") != FORMAT_VERSION:
                raise CheckpointError(
                    "checkpoint {} has version {!r}, expected {}".format(
                        self.path, raw.get("version"), FORMAT_VERSION
                    )
                )
            stamp = (raw.get("design"), raw.get("engine"),
                     raw.get("max_cycles"))
            if stamp != (design, engine, max_cycles):
                raise CheckpointError(
                    "checkpoint {} was written for {!r}/{}@{} cycles, not "
                    "{!r}/{}@{} cycles".format(
                        self.path, stamp[0], stamp[1], stamp[2],
                        design, engine, max_cycles,
                    )
                )
            self._data = raw
        else:
            self._data = {
                "version": FORMAT_VERSION,
                "design": design,
                "engine": engine,
                "max_cycles": max_cycles,
                "findings": {},
            }
        return {
            register: finding_from_dict(entry)
            for register, entry in self._data["findings"].items()
        }

    @property
    def completed(self):
        """Registers whose findings are already persisted."""
        if self._data is None:
            return frozenset()
        return frozenset(self._data["findings"])

    def save_finding(self, register, finding):
        """Persist one completed register finding (atomic write)."""
        if self._data is None:
            raise CheckpointError(
                "checkpoint not opened; call begin() first"
            )
        self._data["findings"][register] = finding_to_dict(finding)
        self._write()

    def _write(self):
        """Atomic, durable write: temp file, fsync, rename.

        The fsync *before* the rename is the disk-full/power-loss
        guard: ``os.replace`` is atomic in the namespace, but without
        the fsync the renamed file may still be backed by unwritten
        (or unwritable — ENOSPC surfaces at flush time) pages, and a
        crash would leave a *named* checkpoint with torn contents.
        Any ``OSError`` along the way becomes a structured
        :class:`CheckpointWriteError` so the audit can keep running
        uncheckpointed instead of dying on register N.
        """
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=self.path.name,
                suffix=".tmp",
            )
        except OSError as exc:
            raise CheckpointWriteError(self.path, exc) from exc
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self._data, handle, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            if isinstance(exc, OSError):
                raise CheckpointWriteError(self.path, exc) from exc
            raise
