"""The per-check supervision state machine, shared by serial and pool.

:class:`CheckExecution` owns everything one supervised check decides
*between* attempts: the outcome-cache consult (full hit / partial-hit
resume / miss), the retry schedule with bound/budget rescaling, the
best-partial-result fold, and the resume-base bookkeeping that turns a
resumed run's relative bounds back into absolute claims.

It deliberately performs **no execution and no tracing**: the caller
runs the attempt however it likes — :class:`~repro.runner.supervisor.
CheckRunner` synchronously (inline or one worker per attempt), the
parallel scheduler (:mod:`repro.sched`) by dispatching to a persistent
worker pool — and feeds the resulting :class:`AttemptRecord` back in.
Keeping the state machine in one place is what makes a check behave
identically whether it ran serially or on a pool: same cache
disposition, same retry ladder, same final :class:`CheckOutcome`.

The drive protocol::

    execution = CheckExecution(task, name, retry=policy, cache=cache)
    if not execution.consult_cache():        # full hit short-circuits
        while True:
            task, delay = execution.next_attempt()   # rescaled, + backoff
            record = ...run task, however...         # -> AttemptRecord
            if execution.record_attempt(record):
                break
    outcome = execution.finish()
"""

from __future__ import annotations

import time

from repro.bmc.witness import Witness
from repro.runner.outcome import CachedResult, CheckOutcome
from repro.runner.policy import OK

#: Engine result statuses that count as a conclusive verdict.
CONCLUSIVE = ("violated", "proved")


class CheckExecution:
    """State machine for one supervised check (see module docstring)."""

    def __init__(self, task, name, retry, cache=None):
        self.task = task
        self.name = name
        self.retry = retry
        self.cache = cache
        self.outcome = CheckOutcome(name=name)
        self.resume_base = 0
        self.attempt_index = 0  # index the *next* attempt will carry
        self._best_partial = None  # deepest inconclusive engine result
        self._started = time.perf_counter()
        self._done = False

    # ------------------------------------------------------------- cache

    def consult_cache(self, count=True):
        """Check the outcome cache before spending any solver time.

        Returns ``True`` when the cached entry fully answers the request
        (the outcome is complete; skip the attempt loop). A partial hit
        rewrites :attr:`task` to resume past the cached proved bound.
        ``count=False`` re-consults without bumping the session counters
        (the scheduler re-checks after waiting out another pool's claim).
        """
        cache, task = self.cache, self.task
        if cache is None or not hasattr(task, "cache_key"):
            return False
        outcome = self.outcome
        entry = cache.lookup(task.cache_key())
        requested = getattr(task, "max_cycles", 0) or 0
        if entry is not None:
            if (
                entry.has_violation
                and entry.violation_bound <= requested
                and entry.witness is not None
            ):
                if count:
                    cache.counters["hits"] += 1
                outcome.cache = "hit"
                outcome.status = OK
                outcome.bound_reached = entry.violation_bound
                outcome.result = CachedResult(
                    status="violated",
                    bound=entry.violation_bound,
                    witness=Witness.from_dict(entry.witness),
                    property_name=outcome.name,
                    saved_elapsed=entry.elapsed,
                )
                self._done = True
                return True
            if entry.proved_bound >= requested > 0:
                if count:
                    cache.counters["hits"] += 1
                outcome.cache = "hit"
                outcome.status = OK
                outcome.bound_reached = entry.proved_bound
                outcome.result = CachedResult(
                    status="proved",
                    bound=entry.proved_bound,
                    property_name=outcome.name,
                    saved_elapsed=entry.elapsed,
                )
                self._done = True
                return True
            if (
                0 < entry.proved_bound < requested
                and getattr(task, "start_cycle", 1) == 1
                and hasattr(task, "with_resume")
            ):
                if count:
                    cache.counters["partial_hits"] += 1
                outcome.cache = "partial"
                self.task = task.with_resume(entry.proved_bound)
                self.resume_base = entry.proved_bound
                return False
        if count:
            cache.counters["misses"] += 1
        if outcome.cache is None:
            outcome.cache = "miss"
        return False

    # ----------------------------------------------------------- attempts

    def next_attempt(self):
        """``(task, delay)`` for the upcoming attempt.

        ``task`` has the retry policy's bound/budget schedule applied for
        :attr:`attempt_index`; ``delay`` is the backoff in seconds the
        caller owes before running it (sleep, or requeue-not-before).
        """
        return (
            self._rescaled(self.attempt_index),
            self.retry.delay_for(self.attempt_index),
        )

    def _rescaled(self, index):
        task = self.task
        if index == 0:
            return task
        max_cycles = getattr(task, "max_cycles", None)
        if max_cycles is not None and hasattr(task, "with_bound"):
            new_bound = self.retry.bound_for(index, max_cycles)
            if new_bound != max_cycles:
                task = task.with_bound(new_bound)
        budget = getattr(task, "time_budget", None)
        if budget is not None and hasattr(task, "with_budget"):
            new_budget = self.retry.budget_for(index, budget)
            if new_budget != budget:
                task = task.with_budget(new_budget)
        return task

    def record_attempt(self, record):
        """Fold one finished :class:`AttemptRecord` in.

        Returns ``True`` when the check is done (conclusive verdict or
        retries exhausted); ``False`` means the caller owes another
        attempt (:attr:`attempt_index` has advanced).
        """
        outcome = self.outcome
        outcome.attempts.append(record)
        outcome.bound_reached = max(
            outcome.bound_reached, record.bound_reached
        )
        outcome.peak_memory = max(outcome.peak_memory, record.peak_memory)
        if record.status == OK:
            outcome.status = OK
            outcome.result = record._result
            outcome.error = None
            self._done = True
            return True
        outcome.status = record.status
        outcome.error = record.error
        partial = getattr(record, "_result", None)
        if partial is not None and (
            self._best_partial is None
            or partial.bound > self._best_partial.bound
        ):
            self._best_partial = partial
        if not self.retry.should_retry(record.status, self.attempt_index):
            self._done = True
            return True
        self.attempt_index += 1
        return False

    # ------------------------------------------------------------- finish

    @property
    def done(self):
        return self._done

    def finish(self):
        """Seal and return the :class:`CheckOutcome`."""
        outcome = self.outcome
        if outcome.cache == "hit":
            outcome.elapsed = time.perf_counter() - self._started
            return outcome
        if outcome.result is None and self._best_partial is not None:
            outcome.result = self._best_partial
        if self.resume_base:
            # a resumed check's engine-side bounds only cover the frames
            # it actually ran; fold the cached certified prefix back in
            outcome.bound_reached = max(
                outcome.bound_reached, self.resume_base
            )
            result = outcome.result
            if result is not None and getattr(result, "status", None) in (
                "proved", "unknown"
            ):
                result.bound = max(result.bound, self.resume_base)
        outcome.elapsed = time.perf_counter() - self._started
        return outcome
