"""Deterministic fault injection for the supervised runner.

Proving the runner's crash isolation, hard timeouts, retry policy and
checkpoint/resume requires engines that fail *on demand*: the real
engines are deterministic and (deliberately) hard to crash. A
:class:`FaultInjector` carries a list of :class:`FaultSpec` rules; the
supervisor consults it inside the execution context — in the worker
process under process isolation, inline otherwise — immediately before
a check runs, so an injected hang really does stall the worker and an
injected hard crash really does kill it.

Determinism: a rule fires based only on the check *name* and the
0-based *attempt index* (``first_attempts`` = inject on attempts
``0..first_attempts-1``), never on wall clock or randomness — so a
"crash once, then succeed" retry scenario replays identically on every
run, in-process or across a fork.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.errors import ResourceBudgetExceeded

RAISE = "raise"      # raise a generic engine exception
BUDGET = "budget"    # raise ResourceBudgetExceeded(bound_reached=...)
STALL = "stall"      # sleep past the hard timeout (a hung engine)
CRASH = "crash"      # kill the worker process outright (os._exit)
MEMORY = "memory"    # raise MemoryError (the RLIMIT_AS outcome)

KINDS = (RAISE, BUDGET, STALL, CRASH, MEMORY)


class InjectedFault(RuntimeError):
    """The generic exception raised by ``raise`` faults."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    Parameters
    ----------
    match:
        ``fnmatch`` pattern tested (case-sensitively) against the check
        name, e.g. ``"corruption(*)"`` or ``"*stack_pointer*"``.
    kind:
        One of :data:`KINDS`.
    first_attempts:
        Inject only while the attempt index is below this value; the
        default (a large number) injects on every attempt. ``1`` gives
        "fail once, succeed on retry".
    seconds:
        Stall duration for ``stall`` faults.
    bound_reached:
        The partial bound reported by ``budget`` faults.
    message:
        Text carried by raised exceptions.
    """

    match: str
    kind: str
    first_attempts: int = 1 << 30
    seconds: float = 3600.0
    bound_reached: int = 0
    message: str = "injected fault"

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                "unknown fault kind {!r}; pick one of {}".format(
                    self.kind, KINDS
                )
            )

    def applies(self, name, attempt_index):
        return attempt_index < self.first_attempts and fnmatchcase(
            name, self.match
        )


class FaultInjector:
    """Applies the first matching :class:`FaultSpec` before a check runs."""

    def __init__(self, faults=()):
        self.faults = list(faults)

    # ------------------------------------------------- convenience builders

    @classmethod
    def crash_on(cls, match, **kw):
        return cls([FaultSpec(match=match, kind=CRASH, **kw)])

    @classmethod
    def stall_on(cls, match, seconds=3600.0, **kw):
        return cls([FaultSpec(match=match, kind=STALL, seconds=seconds, **kw)])

    @classmethod
    def raise_on(cls, match, message="injected engine failure", **kw):
        return cls([FaultSpec(match=match, kind=RAISE, message=message, **kw)])

    @classmethod
    def budget_on(cls, match, bound_reached=0, **kw):
        return cls(
            [FaultSpec(match=match, kind=BUDGET,
                       bound_reached=bound_reached, **kw)]
        )

    @classmethod
    def memory_on(cls, match, **kw):
        return cls([FaultSpec(match=match, kind=MEMORY, **kw)])

    # --------------------------------------------------------------- firing

    def spec_for(self, name, attempt_index):
        for spec in self.faults:
            if spec.applies(name, attempt_index):
                return spec
        return None

    def fire(self, name, attempt_index, in_worker=False):
        """Apply the first matching rule; no-op when none matches.

        ``in_worker`` tells a ``crash`` fault it may genuinely kill the
        process; inline it degrades to an uncatchable-by-engines
        exception so the test process survives while the supervisor
        still sees a crash.
        """
        spec = self.spec_for(name, attempt_index)
        if spec is None:
            return
        if spec.kind == RAISE:
            raise InjectedFault(spec.message)
        if spec.kind == BUDGET:
            raise ResourceBudgetExceeded(
                spec.message, bound_reached=spec.bound_reached
            )
        if spec.kind == MEMORY:
            raise MemoryError(spec.message)
        if spec.kind == STALL:
            time.sleep(spec.seconds)
            return
        if spec.kind == CRASH:
            if in_worker:
                os._exit(66)  # simulate a segfaulting engine
            raise InjectedFault("hard crash (inline): " + spec.message)


# --------------------------------------------------------------------------
# Service-level faults (durable queue + cache backends, see repro.serve)
# --------------------------------------------------------------------------

#: A leased worker dies silently at a named stage of a job — no release,
#: no complete, heartbeats stop. The queue must reclaim the lease by TTL.
KILL_LEASE_HOLDER = "kill-lease-holder"
#: A journal append is cut short after N bytes (the torn tail a power
#: loss leaves); the CRC framing must degrade it to the previous record.
TORN_JOURNAL_WRITE = "torn-journal-write"
#: The queue's clock jumps by ``skew`` seconds for one reading — the
#: cross-host skew that makes a *live* lease look expired (or vice versa).
CLOCK_SKEW = "stale-lease-clock-skew"
#: A cache-backend operation hangs past its deadline / fails outright;
#: the FallbackBackend must degrade, never stall the audit.
BACKEND_TIMEOUT = "backend-timeout"

SERVICE_KINDS = (
    KILL_LEASE_HOLDER, TORN_JOURNAL_WRITE, CLOCK_SKEW, BACKEND_TIMEOUT,
)


class WorkerKilled(BaseException):
    """Raised *inside* a service worker to simulate SIGKILL mid-job.

    Deliberately a ``BaseException``: engine- and queue-level ``except
    Exception`` handlers must not be able to "survive" a kill, exactly
    as they could not survive the real signal. Only the service worker
    loop catches it — and reacts by abandoning the job without
    releasing the lease, which is what a dead process does.
    """


@dataclass(frozen=True)
class ServiceFaultSpec:
    """One deterministic service-level injection rule.

    Parameters
    ----------
    kind:
        One of :data:`SERVICE_KINDS`.
    match:
        ``fnmatch`` pattern tested against the *subject* — for worker
        kills, ``"<job_id>@<stage>"`` (stages: ``leased``, ``mid``,
        ``pre-complete``); for torn writes, the journal record kind;
        for backend faults, the operation name (``get``/``put``/
        ``claim``/``release``); for clock skew, the queue operation.
    first_times:
        Fire only the first N times this rule matches its subject
        (counted per ``(rule, subject)``); the default ``1`` gives
        "kill the first lease holder, let the retry live" — the replay
        determinism the chaos tests rest on.
    skew:
        Seconds added to the clock reading for ``stale-lease-clock-skew``.
    keep_bytes:
        Bytes of the record actually written by ``torn-journal-write``.
    """

    kind: str
    match: str = "*"
    first_times: int = 1
    skew: float = 0.0
    keep_bytes: int = 8

    def __post_init__(self):
        if self.kind not in SERVICE_KINDS:
            raise ValueError(
                "unknown service fault kind {!r}; pick one of {}".format(
                    self.kind, SERVICE_KINDS
                )
            )


class ServiceFaultPlan:
    """Deterministic firing of :class:`ServiceFaultSpec` rules.

    Occurrences are counted per ``(rule index, subject)``: the same
    subject re-presented after a reclaim sees the occurrence counter it
    already spent, so ``first_times=1`` kills a job's first lease holder
    and spares the second — identically on every run.
    """

    def __init__(self, faults=()):
        self.faults = list(faults)
        self._seen = {}  # (rule_index, subject) -> occurrence count
        self.fired = []  # (kind, subject) log, for assertions/telemetry

    @classmethod
    def parse(cls, entries):
        """Build a plan from CLI strings ``KIND[:MATCH[:TIMES]]``.

        Examples: ``kill-lease-holder:*@pre-complete``,
        ``backend-timeout:get:3``, ``stale-lease-clock-skew:lease:1``.
        """
        faults = []
        for entry in entries or ():
            parts = str(entry).split(":")
            kind = parts[0]
            match = parts[1] if len(parts) > 1 and parts[1] else "*"
            times = int(parts[2]) if len(parts) > 2 and parts[2] else 1
            faults.append(
                ServiceFaultSpec(kind=kind, match=match, first_times=times)
            )
        return cls(faults)

    def fires(self, kind, subject):
        """The first matching rule with occurrences left, or ``None``.

        Calling this *consumes* one occurrence of the matched rule for
        the subject.
        """
        for index, spec in enumerate(self.faults):
            if spec.kind != kind or not fnmatchcase(subject, spec.match):
                continue
            seen = self._seen.get((index, subject), 0)
            if seen >= spec.first_times:
                continue
            self._seen[(index, subject)] = seen + 1
            self.fired.append((kind, subject))
            return spec
        return None

    # ------------------------------------------------------- convenience

    def kill_worker(self, job_id, stage):
        """Raise :class:`WorkerKilled` when a kill rule fires here."""
        spec = self.fires(KILL_LEASE_HOLDER, "{}@{}".format(job_id, stage))
        if spec is not None:
            raise WorkerKilled(
                "injected worker kill: job {} at {}".format(job_id, stage)
            )

    def torn_bytes(self, record_kind):
        """``keep_bytes`` for a torn journal append, or ``None``."""
        spec = self.fires(TORN_JOURNAL_WRITE, record_kind)
        return None if spec is None else spec.keep_bytes

    def skew_for(self, operation):
        """Clock-skew seconds to add to one reading (0.0 = none)."""
        spec = self.fires(CLOCK_SKEW, operation)
        return 0.0 if spec is None else spec.skew

    def backend_fault(self, operation):
        """Raise :class:`InjectedFault` when a backend rule fires."""
        spec = self.fires(BACKEND_TIMEOUT, operation)
        if spec is not None:
            raise InjectedFault(
                "injected backend timeout on {}".format(operation)
            )


class FaultyBackendProxy:
    """Wraps a cache backend so a :class:`ServiceFaultPlan` can fail it.

    Sits *between* a :class:`~repro.cache.backend.FallbackBackend` and
    its primary: each op first consults the plan (raising
    :class:`InjectedFault` on a ``backend-timeout`` rule), then
    delegates. Tests point a FallbackBackend at this proxy to prove the
    breaker opens, the audit degrades to local, and nothing stalls.
    """

    name = "faulty-proxy"

    def __init__(self, inner, plan):
        self.inner = inner
        self.plan = plan

    def get(self, key):
        self.plan.backend_fault("get")
        return self.inner.get(key)

    def put(self, key, **fields):
        self.plan.backend_fault("put")
        self.inner.put(key, **fields)

    def claim(self, key):
        self.plan.backend_fault("claim")
        return self.inner.claim(key)

    def release(self, key):
        self.plan.backend_fault("release")
        self.inner.release(key)

    def release_all(self):
        self.inner.release_all()
