"""Deterministic fault injection for the supervised runner.

Proving the runner's crash isolation, hard timeouts, retry policy and
checkpoint/resume requires engines that fail *on demand*: the real
engines are deterministic and (deliberately) hard to crash. A
:class:`FaultInjector` carries a list of :class:`FaultSpec` rules; the
supervisor consults it inside the execution context — in the worker
process under process isolation, inline otherwise — immediately before
a check runs, so an injected hang really does stall the worker and an
injected hard crash really does kill it.

Determinism: a rule fires based only on the check *name* and the
0-based *attempt index* (``first_attempts`` = inject on attempts
``0..first_attempts-1``), never on wall clock or randomness — so a
"crash once, then succeed" retry scenario replays identically on every
run, in-process or across a fork.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.errors import ResourceBudgetExceeded

RAISE = "raise"      # raise a generic engine exception
BUDGET = "budget"    # raise ResourceBudgetExceeded(bound_reached=...)
STALL = "stall"      # sleep past the hard timeout (a hung engine)
CRASH = "crash"      # kill the worker process outright (os._exit)
MEMORY = "memory"    # raise MemoryError (the RLIMIT_AS outcome)

KINDS = (RAISE, BUDGET, STALL, CRASH, MEMORY)


class InjectedFault(RuntimeError):
    """The generic exception raised by ``raise`` faults."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    Parameters
    ----------
    match:
        ``fnmatch`` pattern tested (case-sensitively) against the check
        name, e.g. ``"corruption(*)"`` or ``"*stack_pointer*"``.
    kind:
        One of :data:`KINDS`.
    first_attempts:
        Inject only while the attempt index is below this value; the
        default (a large number) injects on every attempt. ``1`` gives
        "fail once, succeed on retry".
    seconds:
        Stall duration for ``stall`` faults.
    bound_reached:
        The partial bound reported by ``budget`` faults.
    message:
        Text carried by raised exceptions.
    """

    match: str
    kind: str
    first_attempts: int = 1 << 30
    seconds: float = 3600.0
    bound_reached: int = 0
    message: str = "injected fault"

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                "unknown fault kind {!r}; pick one of {}".format(
                    self.kind, KINDS
                )
            )

    def applies(self, name, attempt_index):
        return attempt_index < self.first_attempts and fnmatchcase(
            name, self.match
        )


class FaultInjector:
    """Applies the first matching :class:`FaultSpec` before a check runs."""

    def __init__(self, faults=()):
        self.faults = list(faults)

    # ------------------------------------------------- convenience builders

    @classmethod
    def crash_on(cls, match, **kw):
        return cls([FaultSpec(match=match, kind=CRASH, **kw)])

    @classmethod
    def stall_on(cls, match, seconds=3600.0, **kw):
        return cls([FaultSpec(match=match, kind=STALL, seconds=seconds, **kw)])

    @classmethod
    def raise_on(cls, match, message="injected engine failure", **kw):
        return cls([FaultSpec(match=match, kind=RAISE, message=message, **kw)])

    @classmethod
    def budget_on(cls, match, bound_reached=0, **kw):
        return cls(
            [FaultSpec(match=match, kind=BUDGET,
                       bound_reached=bound_reached, **kw)]
        )

    @classmethod
    def memory_on(cls, match, **kw):
        return cls([FaultSpec(match=match, kind=MEMORY, **kw)])

    # --------------------------------------------------------------- firing

    def spec_for(self, name, attempt_index):
        for spec in self.faults:
            if spec.applies(name, attempt_index):
                return spec
        return None

    def fire(self, name, attempt_index, in_worker=False):
        """Apply the first matching rule; no-op when none matches.

        ``in_worker`` tells a ``crash`` fault it may genuinely kill the
        process; inline it degrades to an uncatchable-by-engines
        exception so the test process survives while the supervisor
        still sees a crash.
        """
        spec = self.spec_for(name, attempt_index)
        if spec is None:
            return
        if spec.kind == RAISE:
            raise InjectedFault(spec.message)
        if spec.kind == BUDGET:
            raise ResourceBudgetExceeded(
                spec.message, bound_reached=spec.bound_reached
            )
        if spec.kind == MEMORY:
            raise MemoryError(spec.message)
        if spec.kind == STALL:
            time.sleep(spec.seconds)
            return
        if spec.kind == CRASH:
            if in_worker:
                os._exit(66)  # simulate a segfaulting engine
            raise InjectedFault("hard crash (inline): " + spec.message)
