"""Structured outcomes for supervised property checks.

Every check routed through :class:`repro.runner.supervisor.CheckRunner`
produces a :class:`CheckOutcome`: what finally happened (``status``), the
engine result if one exists, the deepest bound certified across all
attempts, and one :class:`AttemptRecord` per attempt. Failed checks
still yield an engine-result-shaped object (:class:`PartialVerdict`) so
Algorithm 1's report code — ``detected`` / ``status`` / ``bound`` /
``witness`` — works uniformly whether an engine concluded, timed out, or
took its worker process down with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runner.policy import BUDGET, CRASHED, EXHAUSTED, OK, TIMEOUT

UNKNOWN_STATUS = "unknown"


@dataclass
class PartialVerdict:
    """Engine-result stand-in for a check that produced no result object.

    Mirrors the ``status`` / ``bound`` / ``witness`` / ``detected`` /
    ``elapsed`` / ``peak_memory`` shape shared by :class:`BmcResult`,
    the ATPG results and :class:`BypassResult`, so report rendering and
    ``trusted_for`` never special-case a crashed or timed-out check.
    """

    status: str = UNKNOWN_STATUS
    bound: int = 0
    witness: object = None
    elapsed: float = 0.0
    peak_memory: int = 0
    property_name: str = ""
    note: str = ""  # human-readable failure cause ("crashed: ...", ...)

    @property
    def detected(self):
        return False

    def summary(self):
        tail = " — {}".format(self.note) if self.note else ""
        return "[{}] {} at bound {} ({:.2f}s){}".format(
            self.property_name or "check", self.status, self.bound,
            self.elapsed, tail,
        )


@dataclass
class CachedResult:
    """Engine-result stand-in replayed from the outcome cache.

    Shapes a cache hit like a live engine verdict (``status`` / ``bound``
    / ``witness`` / ``detected`` / ``elapsed``), with ``cached=True`` and
    the solve seconds the hit avoided (``saved_elapsed``) for the bench
    tables. A cached violation carries the stored witness, which callers
    replay-confirm on the simulator exactly like a fresh one.
    """

    status: str
    bound: int
    witness: object = None
    elapsed: float = 0.0
    peak_memory: int = 0
    property_name: str = ""
    saved_elapsed: float = 0.0
    cached: bool = True

    @property
    def detected(self):
        return self.status == "violated"

    def summary(self):
        return "[{}] {} at bound {} (cache hit, ~{:.2f}s saved)".format(
            self.property_name or "check", self.status, self.bound,
            self.saved_elapsed,
        )


@dataclass
class AttemptRecord:
    """One attempt of one check, as seen by the supervisor."""

    index: int
    status: str  # ok / exhausted / budget / timeout / crashed
    bound_reached: int = 0
    elapsed: float = 0.0
    mode: str = "inline"  # inline / process
    max_cycles: int = 0
    time_budget: float | None = None
    peak_memory: int = 0
    error: str | None = None


@dataclass
class CheckOutcome:
    """Everything the supervisor learned about one property check."""

    name: str
    status: str = OK  # ok / exhausted / budget / timeout / crashed
    result: object = None  # engine result when one was produced
    bound_reached: int = 0  # deepest bound certified by any attempt
    attempts: list = field(default_factory=list)  # AttemptRecord per try
    elapsed: float = 0.0  # wall clock across all attempts
    peak_memory: int = 0  # max across attempts that measured it
    error: str | None = None  # last failure description
    # outcome-cache disposition: None (cache off), "hit" (verdict served
    # with zero solves), "partial" (resumed from a cached proved bound),
    # or "miss"
    cache: str | None = None

    @property
    def ok(self):
        return self.status == OK

    @property
    def conclusive(self):
        """Did some attempt end with a violated/proved engine verdict?"""
        return self.status == OK

    @property
    def detected(self):
        return self.result is not None and self.result.detected

    @property
    def num_attempts(self):
        return len(self.attempts)

    @property
    def verdict(self):
        """An engine-result-shaped object, synthesizing one if needed."""
        if self.result is not None:
            return self.result
        return PartialVerdict(
            status=UNKNOWN_STATUS,
            bound=self.bound_reached,
            elapsed=self.elapsed,
            peak_memory=self.peak_memory,
            property_name=self.name,
            note=self.describe(),
        )

    def describe(self):
        """One-line human summary of how the check degraded (or not)."""
        label = {
            OK: "completed",
            EXHAUSTED: "budget exhausted",
            BUDGET: "budget exhausted",
            TIMEOUT: "hard timeout",
            CRASHED: "crashed",
        }.get(self.status, self.status)
        text = "{} after {} attempt{}".format(
            label, self.num_attempts, "" if self.num_attempts == 1 else "s"
        )
        if self.status != OK:
            text += ", certified {} cycles".format(self.bound_reached)
        if self.cache == "hit":
            text += " (cache hit)"
        elif self.cache == "partial":
            text += " (resumed from cached bound)"
        if self.error:
            text += " ({})".format(self.error)
        return text

    def to_dict(self):
        """JSON-serializable view (engine result reduced to its shape)."""
        return {
            "name": self.name,
            "status": self.status,
            "bound_reached": self.bound_reached,
            "elapsed": self.elapsed,
            "peak_memory": self.peak_memory,
            "error": self.error,
            "cache": self.cache,
            "attempts": [
                {
                    "index": a.index,
                    "status": a.status,
                    "bound_reached": a.bound_reached,
                    "elapsed": a.elapsed,
                    "mode": a.mode,
                    "max_cycles": a.max_cycles,
                    "time_budget": a.time_budget,
                    "error": a.error,
                }
                for a in self.attempts
            ],
        }

    @classmethod
    def from_dict(cls, data):
        outcome = cls(
            name=data["name"],
            status=data["status"],
            bound_reached=data.get("bound_reached", 0),
            elapsed=data.get("elapsed", 0.0),
            peak_memory=data.get("peak_memory", 0),
            error=data.get("error"),
            cache=data.get("cache"),
        )
        outcome.attempts = [
            AttemptRecord(
                index=a["index"],
                status=a["status"],
                bound_reached=a.get("bound_reached", 0),
                elapsed=a.get("elapsed", 0.0),
                mode=a.get("mode", "inline"),
                max_cycles=a.get("max_cycles", 0),
                time_budget=a.get("time_budget"),
                error=a.get("error"),
            )
            for a in data.get("attempts", [])
        ]
        return outcome
