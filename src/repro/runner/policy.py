"""Retry and resource-limit policies for supervised property checks.

The paper caps every BMC/ATPG run at a fixed wall-clock budget and
reports the largest bound reached (Sections 3.2-3.3); a production audit
service additionally has to survive engines that hang, crash, or blow
through memory. Two small policy objects describe how the supervisor
(:class:`repro.runner.supervisor.CheckRunner`) reacts:

* :class:`ResourceLimits` — the *hard* envelope around one attempt: a
  wall-clock timeout enforced by killing the worker process, and an
  address-space cap installed in the worker via ``setrlimit``. These are
  distinct from the engines' cooperative ``time_budget``, which a stuck
  implication loop can simply fail to check.
* :class:`RetryPolicy` — how many attempts a check gets, how long to
  back off between them, and how the bound / budget are rescaled on each
  retry (the classic mitigation for a solver blow-up at depth ``t`` is
  to retry at ``t // 2`` and still certify *something*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Attempt/outcome statuses shared across the runner package.
OK = "ok"                  # engine returned a conclusive verdict
EXHAUSTED = "exhausted"    # engine returned "unknown" (cooperative budget)
BUDGET = "budget"          # engine raised ResourceBudgetExceeded
TIMEOUT = "timeout"        # hard wall-clock kill by the supervisor
CRASHED = "crashed"        # engine raised / worker process died

#: Statuses that mean "the check did not conclude" — candidates for retry.
DEGRADED_STATUSES = (EXHAUSTED, BUDGET, TIMEOUT, CRASHED)


@dataclass(frozen=True)
class ResourceLimits:
    """Hard per-attempt envelope enforced by the supervisor.

    Parameters
    ----------
    wall_timeout:
        Seconds after which a worker process is killed (``timeout``
        status). ``None`` disables the hard timeout; the engines'
        cooperative ``time_budget`` still applies.
    memory_bytes:
        ``RLIMIT_AS`` installed in the worker before the check runs;
        allocation past the cap raises ``MemoryError`` in the worker,
        which the supervisor reports as ``crashed``. ``None`` leaves the
        inherited limit.
    grace:
        Extra seconds granted past a task's cooperative ``time_budget``
        when deriving a default hard timeout: the engine should stop
        itself first, the kill is the backstop.
    """

    wall_timeout: float | None = None
    memory_bytes: int | None = None
    grace: float = 2.0

    def effective_timeout(self, cooperative_budget=None):
        """Hard timeout for one attempt, or None when unbounded."""
        if self.wall_timeout is not None:
            return self.wall_timeout
        if cooperative_budget is not None:
            return cooperative_budget + self.grace
        return None


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor re-runs a check that failed to conclude.

    Parameters
    ----------
    attempts:
        Total attempts (1 = no retries).
    backoff / backoff_factor:
        Sleep ``backoff * backoff_factor**(n-1)`` seconds before retry
        ``n`` (n = 1 for the first retry).
    halve_bound:
        Halve ``max_cycles`` on every retry (never below 1), trading
        guarantee depth for a verdict — the paper's "largest bound
        reached" degradation applied proactively.
    budget_scale:
        Multiply the cooperative ``time_budget`` by this factor on each
        retry (> 1 escalates, < 1 shrinks).
    retry_on:
        Attempt statuses that trigger a retry; conclusive verdicts never
        retry.
    """

    attempts: int = 1
    backoff: float = 0.0
    backoff_factor: float = 2.0
    halve_bound: bool = False
    budget_scale: float = 1.0
    retry_on: tuple = field(default=DEGRADED_STATUSES)

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")

    def should_retry(self, status, attempt_index):
        """Retry after attempt ``attempt_index`` (0-based) ended in ``status``?"""
        if attempt_index + 1 >= self.attempts:
            return False
        return status in self.retry_on

    def delay_for(self, attempt_index):
        """Seconds to sleep before attempt ``attempt_index`` (0-based)."""
        if attempt_index <= 0 or self.backoff <= 0:
            return 0.0
        return self.backoff * self.backoff_factor ** (attempt_index - 1)

    def bound_for(self, attempt_index, max_cycles):
        """Bound to use at attempt ``attempt_index`` (0-based)."""
        if not self.halve_bound or attempt_index <= 0:
            return max_cycles
        return max(1, max_cycles >> attempt_index)

    def budget_for(self, attempt_index, time_budget):
        """Cooperative budget for attempt ``attempt_index`` (0-based)."""
        if time_budget is None or attempt_index <= 0:
            return time_budget
        return time_budget * self.budget_scale ** attempt_index
