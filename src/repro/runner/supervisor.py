"""The supervised check runner: isolation, budgets, retries.

:class:`CheckRunner` is the single choke point every property check of
Algorithm 1 (and the benchmark harness) goes through. For each check it
runs one or more *attempts* under a :class:`RetryPolicy`, each attempt
either inline (same process, cooperative budgets only — the historical
behaviour) or in a ``multiprocessing`` worker with a hard wall-clock
timeout and an ``RLIMIT_AS`` memory cap. Whatever happens — a verdict,
an exhausted budget, a :class:`ResourceBudgetExceeded`, a hang killed at
the timeout, or a worker that dies outright — the caller receives a
structured :class:`CheckOutcome`, never an exception: a single solver
blow-up can no longer abort a whole audit.

The per-check decision logic (cache consult, retry ladder, partial-
result folding) lives in :class:`~repro.runner.execution.CheckExecution`
so the parallel scheduler (:mod:`repro.sched`) runs the *same* state
machine on its persistent worker pool. ``CheckRunner`` itself is the
serial driver: it executes attempts one at a time, in this thread.

A runner configured for parallelism (``configure(workers=N)`` with
``N >= 2``) sets :attr:`jobs` and refuses the serial :meth:`run` — it
must be handed to :class:`~repro.core.detector.TrojanDetector` (or
:mod:`repro.sched` directly), which drives the pool. Before the
scheduler existed, ``workers=4`` silently behaved exactly like
``workers=1``; it now either parallelizes or raises, never lies.
"""

from __future__ import annotations

import time

from repro.errors import ReproError, ResourceBudgetExceeded
from repro.obs.profiling import profiled
from repro.obs.tracer import get_tracer
from repro.runner.execution import CONCLUSIVE, CheckExecution
from repro.runner.outcome import AttemptRecord
from repro.runner.policy import (
    BUDGET,
    CRASHED,
    EXHAUSTED,
    OK,
    TIMEOUT,
    ResourceLimits,
    RetryPolicy,
)
from repro.runner.worker import run_in_process

INLINE = "inline"
PROCESS = "process"

#: Kept for backward compatibility; canonical home is runner.execution.
_CONCLUSIVE = CONCLUSIVE


def absorb_result(record, result):
    """Write an engine result object onto an :class:`AttemptRecord`."""
    record._result = result
    record.bound_reached = getattr(result, "bound", 0)
    record.peak_memory = getattr(result, "peak_memory", 0)
    status = getattr(result, "status", None)
    record.status = OK if status in CONCLUSIVE else EXHAUSTED
    if record.status == EXHAUSTED:
        record.error = "engine returned {!r} at bound {}".format(
            status, record.bound_reached
        )


def absorb_message(record, message, name, tracer):
    """Interpret a worker protocol tuple onto an :class:`AttemptRecord`.

    The tagged-tuple protocol is shared by the fork-per-attempt worker
    (:func:`~repro.runner.worker.run_in_process`) and the persistent
    pool (:mod:`repro.sched.pool`): ``("ok", result)``, ``("budget",
    message, bound)``, ``("timeout", message)``, ``("crashed", message)``.
    """
    kind = message[0]
    if kind == "ok":
        absorb_result(record, message[1])
    elif kind == "budget":
        record.status = BUDGET
        record.error = message[1]
        record.bound_reached = message[2]
    elif kind == "timeout":
        record.status = TIMEOUT
        record.error = message[1]
        if tracer.enabled:
            # the worker was killed: its event buffer died with it
            tracer.point("runner.kill", check=name, reason="timeout")
            tracer.metrics.counter("runner.kills").inc()
    else:  # crashed
        record.status = CRASHED
        record.error = message[1]
        if tracer.enabled:
            tracer.point("runner.crash", check=name, error=message[1])
            tracer.metrics.counter("runner.crashes").inc()


def strip_telemetry(tracer, message):
    """Strip a worker's trailing telemetry element off a protocol
    tuple, grafting its events under the current (attempt) span and
    folding its counters into this process's registry. Supervisor-
    generated tuples (timeout, EOF-crash) carry none."""
    if message and isinstance(message[-1], dict) and (
        "events" in message[-1]
    ):
        telemetry = message[-1]
        tracer.absorb(telemetry.get("events"))
        tracer.metrics.merge_counters(telemetry.get("counters") or {})
        message = message[:-1]
    return message


class CheckRunner:
    """Runs property checks under supervision.

    Parameters
    ----------
    isolation:
        ``"inline"`` (default) runs checks in-process — no hard kill is
        possible, only the engines' cooperative ``time_budget``.
        ``"process"`` runs each attempt in a worker with hard limits.
    limits:
        :class:`ResourceLimits` for process-isolated attempts.
    retry:
        :class:`RetryPolicy`; the default makes a single attempt.
    fault_injector:
        Optional :class:`~repro.runner.faultinject.FaultInjector`
        consulted inside the execution context before each attempt.
    jobs:
        Degree of check-level parallelism this runner *requests*. The
        runner itself stays a serial executor; ``jobs >= 2`` marks it
        as pool-backed, and the detector routes such a runner through
        :class:`~repro.sched.AuditScheduler` (N persistent workers
        honouring this runner's ``limits``/``retry``). Calling
        :meth:`run` directly on a ``jobs >= 2`` runner raises.
    """

    def __init__(self, isolation=INLINE, limits=None, retry=None,
                 fault_injector=None, mp_context=None, profile_dir=None,
                 jobs=1, backend_factory=None):
        if isolation not in (INLINE, PROCESS):
            raise ReproError(
                "unknown isolation {!r}; pick {!r} or {!r}".format(
                    isolation, INLINE, PROCESS
                )
            )
        if jobs < 1:
            raise ReproError("jobs must be >= 1, got {}".format(jobs))
        if jobs > 1 and isolation != PROCESS:
            raise ReproError(
                "jobs={} needs process isolation: pool workers are "
                "processes".format(jobs)
            )
        self.isolation = isolation
        self.limits = limits if limits is not None else ResourceLimits()
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_injector = fault_injector
        self.mp_context = mp_context
        self.profile_dir = profile_dir  # cProfile dumps, one per attempt
        self.jobs = jobs
        self.backend_factory = backend_factory  # cache_dir -> CacheBackend
        self._caches = {}  # cache_dir -> CacheBackend

    def cache_for(self, cache_dir):
        """Memoized :class:`~repro.cache.CacheBackend` for a directory.

        The default factory builds a
        :class:`~repro.cache.backend.LocalBackend` (the pre-backend
        behaviour, verbatim); a runner constructed with
        ``backend_factory=`` can substitute any backend — e.g. a
        :class:`~repro.cache.backend.FallbackBackend` wrapping a shared
        store — without the supervisor or scheduler noticing.
        """
        if cache_dir is None:
            return None
        cache = self._caches.get(cache_dir)
        if cache is None:
            if self.backend_factory is not None:
                cache = self.backend_factory(cache_dir)
            else:
                from repro.cache.backend import backend_for

                cache = backend_for(cache_dir)
            self._caches[cache_dir] = cache
        return cache

    @property
    def cache_counters(self):
        """Aggregated hit/partial/miss/store counters across cache dirs."""
        totals = {"hits": 0, "partial_hits": 0, "misses": 0, "stores": 0}
        for cache in self._caches.values():
            for key in totals:
                totals[key] += cache.counters.get(key, 0)
        return totals

    @classmethod
    def configure(cls, workers=0, check_timeout=None, retries=0,
                  memory_bytes=None, halve_bound=False, backoff=0.0,
                  fault_injector=None, profile_dir=None):
        """Build a runner from flat knobs (the CLI's view of the world).

        ``workers=0`` runs checks inline; ``workers=1`` isolates each
        check in a (fresh) worker process; ``workers=N`` for ``N >= 2``
        configures a pool-backed runner — ``jobs=N`` — that the detector
        drives through the parallel scheduler's persistent worker pool.
        """
        return cls(
            isolation=PROCESS if workers else INLINE,
            limits=ResourceLimits(
                wall_timeout=check_timeout, memory_bytes=memory_bytes
            ),
            retry=RetryPolicy(
                attempts=retries + 1, halve_bound=halve_bound,
                backoff=backoff,
            ),
            fault_injector=fault_injector,
            profile_dir=profile_dir,
            jobs=max(1, workers),
        )

    # ------------------------------------------------------------------ API

    def run(self, task, name=None):
        """Run ``task`` to a :class:`CheckOutcome`; never raises for
        engine-side failures (supervisor bugs still propagate)."""
        if self.jobs > 1:
            raise ReproError(
                "this runner is configured for jobs={}: single checks "
                "cannot be parallelized by run(); pass the runner to "
                "TrojanDetector (or repro.sched.AuditScheduler), which "
                "drives the worker pool — or configure(workers=1) for "
                "serial supervised execution".format(self.jobs)
            )
        if name is None:
            name = getattr(task, "property_name", "") or "check"
        tracer = get_tracer()
        if not tracer.enabled:
            return self._run(task, name, tracer)
        with tracer.span("runner.check", check=name) as extra:
            outcome = self._run(task, name, tracer)
            extra.update(
                status=outcome.status,
                attempts=len(outcome.attempts),
                cache=outcome.cache,
                bound=outcome.bound_reached,
            )
            tracer.metrics.counter("runner.checks").inc()
            tracer.metrics.counter("runner.attempts").inc(
                len(outcome.attempts)
            )
            tracer.metrics.histogram("runner.check_seconds").observe(
                outcome.elapsed
            )
        return outcome

    def _run(self, task, name, tracer):
        execution = CheckExecution(
            task, name, self.retry,
            cache=self.cache_for(getattr(task, "cache_dir", None)),
        )
        done = execution.consult_cache()
        if tracer.enabled and execution.outcome.cache is not None:
            tracer.point("cache." + execution.outcome.cache, check=name)
        while not done:
            attempt_task, delay = execution.next_attempt()
            if delay > 0:
                time.sleep(delay)
            index = execution.attempt_index
            record = self._attempt(attempt_task, name, index, tracer)
            done = execution.record_attempt(record)
            if not done and tracer.enabled:
                tracer.point(
                    "runner.retry",
                    check=name,
                    failed_status=record.status,
                    next_attempt=execution.attempt_index,
                    backoff=self.retry.delay_for(execution.attempt_index),
                )
                tracer.metrics.counter("runner.retries").inc()
        return execution.finish()

    # ------------------------------------------------------------ internals

    def _attempt(self, task, name, index, tracer):
        start = time.perf_counter()
        mode = self.isolation
        record = AttemptRecord(
            index=index,
            status=CRASHED,
            mode=mode,
            max_cycles=getattr(task, "max_cycles", 0) or 0,
            time_budget=getattr(task, "time_budget", None),
        )
        record._result = None
        with tracer.span(
            "runner.attempt", check=name, index=index, mode=mode
        ) as extra:
            if mode == PROCESS:
                message = run_in_process(
                    task,
                    name=name,
                    attempt_index=index,
                    hard_timeout=self.limits.effective_timeout(
                        record.time_budget
                    ),
                    memory_bytes=self.limits.memory_bytes,
                    injector=self.fault_injector,
                    mp_context=self.mp_context,
                    collect_events=tracer.enabled,
                    profile_dir=self.profile_dir,
                )
                if tracer.enabled:
                    message = strip_telemetry(tracer, message)
                absorb_message(record, message, name, tracer)
            else:
                try:
                    if self.fault_injector is not None:
                        self.fault_injector.fire(name, index,
                                                 in_worker=False)
                    with profiled(self.profile_dir,
                                  "{}.attempt{}".format(name, index)):
                        result = task()
                except ResourceBudgetExceeded as exc:
                    record.status = BUDGET
                    record.error = str(exc)
                    record.bound_reached = getattr(exc, "bound_reached", 0)
                except Exception as exc:  # noqa: BLE001 - isolation boundary
                    record.status = CRASHED
                    record.error = "{}: {}".format(type(exc).__name__, exc)
                else:
                    absorb_result(record, result)
            extra.update(status=record.status, bound=record.bound_reached)
        record.elapsed = time.perf_counter() - start
        return record
