"""The supervised check runner: isolation, budgets, retries.

:class:`CheckRunner` is the single choke point every property check of
Algorithm 1 (and the benchmark harness) goes through. For each check it
runs one or more *attempts* under a :class:`RetryPolicy`, each attempt
either inline (same process, cooperative budgets only — the historical
behaviour) or in a ``multiprocessing`` worker with a hard wall-clock
timeout and an ``RLIMIT_AS`` memory cap. Whatever happens — a verdict,
an exhausted budget, a :class:`ResourceBudgetExceeded`, a hang killed at
the timeout, or a worker that dies outright — the caller receives a
structured :class:`CheckOutcome`, never an exception: a single solver
blow-up can no longer abort a whole audit.
"""

from __future__ import annotations

import time

from repro.bmc.witness import Witness
from repro.errors import ReproError, ResourceBudgetExceeded
from repro.obs.profiling import profiled
from repro.obs.tracer import get_tracer
from repro.runner.outcome import AttemptRecord, CachedResult, CheckOutcome
from repro.runner.policy import (
    BUDGET,
    CRASHED,
    EXHAUSTED,
    OK,
    TIMEOUT,
    ResourceLimits,
    RetryPolicy,
)
from repro.runner.worker import run_in_process

INLINE = "inline"
PROCESS = "process"

#: Engine result statuses that count as a conclusive verdict.
_CONCLUSIVE = ("violated", "proved")


class CheckRunner:
    """Runs property checks under supervision.

    Parameters
    ----------
    isolation:
        ``"inline"`` (default) runs checks in-process — no hard kill is
        possible, only the engines' cooperative ``time_budget``.
        ``"process"`` runs each attempt in a worker with hard limits.
    limits:
        :class:`ResourceLimits` for process-isolated attempts.
    retry:
        :class:`RetryPolicy`; the default makes a single attempt.
    fault_injector:
        Optional :class:`~repro.runner.faultinject.FaultInjector`
        consulted inside the execution context before each attempt.
    """

    def __init__(self, isolation=INLINE, limits=None, retry=None,
                 fault_injector=None, mp_context=None, profile_dir=None):
        if isolation not in (INLINE, PROCESS):
            raise ReproError(
                "unknown isolation {!r}; pick {!r} or {!r}".format(
                    isolation, INLINE, PROCESS
                )
            )
        self.isolation = isolation
        self.limits = limits if limits is not None else ResourceLimits()
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_injector = fault_injector
        self.mp_context = mp_context
        self.profile_dir = profile_dir  # cProfile dumps, one per attempt
        self._caches = {}  # cache_dir -> OutcomeCache

    def cache_for(self, cache_dir):
        """Memoized :class:`~repro.cache.OutcomeCache` for a directory."""
        if cache_dir is None:
            return None
        cache = self._caches.get(cache_dir)
        if cache is None:
            from repro.cache import OutcomeCache

            cache = self._caches[cache_dir] = OutcomeCache(cache_dir)
        return cache

    @property
    def cache_counters(self):
        """Aggregated hit/partial/miss/store counters across cache dirs."""
        totals = {"hits": 0, "partial_hits": 0, "misses": 0, "stores": 0}
        for cache in self._caches.values():
            for key in totals:
                totals[key] += cache.counters.get(key, 0)
        return totals

    @classmethod
    def configure(cls, workers=0, check_timeout=None, retries=0,
                  memory_bytes=None, halve_bound=False, backoff=0.0,
                  fault_injector=None, profile_dir=None):
        """Build a runner from flat knobs (the CLI's view of the world)."""
        return cls(
            isolation=PROCESS if workers else INLINE,
            limits=ResourceLimits(
                wall_timeout=check_timeout, memory_bytes=memory_bytes
            ),
            retry=RetryPolicy(
                attempts=retries + 1, halve_bound=halve_bound,
                backoff=backoff,
            ),
            fault_injector=fault_injector,
            profile_dir=profile_dir,
        )

    # ------------------------------------------------------------------ API

    def run(self, task, name=None):
        """Run ``task`` to a :class:`CheckOutcome`; never raises for
        engine-side failures (supervisor bugs still propagate)."""
        if name is None:
            name = getattr(task, "property_name", "") or "check"
        tracer = get_tracer()
        if not tracer.enabled:
            return self._run(task, name, tracer)
        with tracer.span("runner.check", check=name) as extra:
            outcome = self._run(task, name, tracer)
            extra.update(
                status=outcome.status,
                attempts=len(outcome.attempts),
                cache=outcome.cache,
                bound=outcome.bound_reached,
            )
            tracer.metrics.counter("runner.checks").inc()
            tracer.metrics.counter("runner.attempts").inc(
                len(outcome.attempts)
            )
            tracer.metrics.histogram("runner.check_seconds").observe(
                outcome.elapsed
            )
        return outcome

    def _run(self, task, name, tracer):
        start = time.perf_counter()
        outcome = CheckOutcome(name=name)
        task, resume_base = self._consult_cache(task, outcome)
        if tracer.enabled and outcome.cache is not None:
            tracer.point("cache." + outcome.cache, check=name)
        if outcome.cache == "hit":
            outcome.elapsed = time.perf_counter() - start
            return outcome
        best_partial = None  # deepest inconclusive engine result
        for index in range(self.retry.attempts):
            delay = self.retry.delay_for(index)
            if delay > 0:
                time.sleep(delay)
            attempt_task = self._rescale(task, index)
            record = self._attempt(attempt_task, name, index, tracer)
            outcome.attempts.append(record)
            outcome.bound_reached = max(
                outcome.bound_reached, record.bound_reached
            )
            outcome.peak_memory = max(
                outcome.peak_memory, record.peak_memory
            )
            if record.status == OK:
                outcome.status = OK
                outcome.result = record._result
                outcome.error = None
                break
            outcome.status = record.status
            outcome.error = record.error
            partial = record._result
            if partial is not None and (
                best_partial is None or partial.bound > best_partial.bound
            ):
                best_partial = partial
            if not self.retry.should_retry(record.status, index):
                break
            if tracer.enabled:
                tracer.point(
                    "runner.retry",
                    check=name,
                    failed_status=record.status,
                    next_attempt=index + 1,
                    backoff=self.retry.delay_for(index + 1),
                )
                tracer.metrics.counter("runner.retries").inc()
        if outcome.result is None and best_partial is not None:
            outcome.result = best_partial
        if resume_base:
            # a resumed check's engine-side bounds only cover the frames
            # it actually ran; fold the cached certified prefix back in
            outcome.bound_reached = max(outcome.bound_reached, resume_base)
            result = outcome.result
            if result is not None and getattr(result, "status", None) in (
                "proved", "unknown"
            ):
                result.bound = max(result.bound, resume_base)
        outcome.elapsed = time.perf_counter() - start
        return outcome

    # ------------------------------------------------------------ internals

    def _consult_cache(self, task, outcome):
        """Check the outcome cache before spending any solver time.

        Returns ``(task, resume_base)``: the task possibly rewritten to
        resume past a cached proved bound, and that bound (0 = none).
        A full hit is written onto ``outcome`` (``cache="hit"``) and the
        caller returns it without running anything.
        """
        cache = self.cache_for(getattr(task, "cache_dir", None))
        if cache is None or not hasattr(task, "cache_key"):
            return task, 0
        entry = cache.lookup(task.cache_key())
        requested = getattr(task, "max_cycles", 0) or 0
        if entry is not None:
            if (
                entry.has_violation
                and entry.violation_bound <= requested
                and entry.witness is not None
            ):
                cache.counters["hits"] += 1
                outcome.cache = "hit"
                outcome.status = OK
                outcome.bound_reached = entry.violation_bound
                outcome.result = CachedResult(
                    status="violated",
                    bound=entry.violation_bound,
                    witness=Witness.from_dict(entry.witness),
                    property_name=outcome.name,
                    saved_elapsed=entry.elapsed,
                )
                return task, 0
            if entry.proved_bound >= requested > 0:
                cache.counters["hits"] += 1
                outcome.cache = "hit"
                outcome.status = OK
                outcome.bound_reached = entry.proved_bound
                outcome.result = CachedResult(
                    status="proved",
                    bound=entry.proved_bound,
                    property_name=outcome.name,
                    saved_elapsed=entry.elapsed,
                )
                return task, 0
            if (
                0 < entry.proved_bound < requested
                and getattr(task, "start_cycle", 1) == 1
                and hasattr(task, "with_resume")
            ):
                cache.counters["partial_hits"] += 1
                outcome.cache = "partial"
                return task.with_resume(entry.proved_bound), entry.proved_bound
        cache.counters["misses"] += 1
        if outcome.cache is None:
            outcome.cache = "miss"
        return task, 0

    def _rescale(self, task, index):
        """Apply the retry policy's bound/budget schedule to attempt ``index``."""
        if index == 0:
            return task
        max_cycles = getattr(task, "max_cycles", None)
        if max_cycles is not None and hasattr(task, "with_bound"):
            new_bound = self.retry.bound_for(index, max_cycles)
            if new_bound != max_cycles:
                task = task.with_bound(new_bound)
        budget = getattr(task, "time_budget", None)
        if budget is not None and hasattr(task, "with_budget"):
            new_budget = self.retry.budget_for(index, budget)
            if new_budget != budget:
                task = task.with_budget(new_budget)
        return task

    def _attempt(self, task, name, index, tracer):
        start = time.perf_counter()
        mode = self.isolation
        record = AttemptRecord(
            index=index,
            status=CRASHED,
            mode=mode,
            max_cycles=getattr(task, "max_cycles", 0) or 0,
            time_budget=getattr(task, "time_budget", None),
        )
        record._result = None
        with tracer.span(
            "runner.attempt", check=name, index=index, mode=mode
        ) as extra:
            if mode == PROCESS:
                message = run_in_process(
                    task,
                    name=name,
                    attempt_index=index,
                    hard_timeout=self.limits.effective_timeout(
                        record.time_budget
                    ),
                    memory_bytes=self.limits.memory_bytes,
                    injector=self.fault_injector,
                    mp_context=self.mp_context,
                    collect_events=tracer.enabled,
                    profile_dir=self.profile_dir,
                )
                if tracer.enabled:
                    message = self._absorb_telemetry(tracer, message)
                self._absorb_message(record, message, name, tracer)
            else:
                try:
                    if self.fault_injector is not None:
                        self.fault_injector.fire(name, index,
                                                 in_worker=False)
                    with profiled(self.profile_dir,
                                  "{}.attempt{}".format(name, index)):
                        result = task()
                except ResourceBudgetExceeded as exc:
                    record.status = BUDGET
                    record.error = str(exc)
                    record.bound_reached = getattr(exc, "bound_reached", 0)
                except Exception as exc:  # noqa: BLE001 - isolation boundary
                    record.status = CRASHED
                    record.error = "{}: {}".format(type(exc).__name__, exc)
                else:
                    self._absorb_result(record, result)
            extra.update(status=record.status, bound=record.bound_reached)
        record.elapsed = time.perf_counter() - start
        return record

    @staticmethod
    def _absorb_telemetry(tracer, message):
        """Strip a worker's trailing telemetry element off a protocol
        tuple, grafting its events under the current (attempt) span and
        folding its counters into this process's registry. Supervisor-
        generated tuples (timeout, EOF-crash) carry none."""
        if message and isinstance(message[-1], dict) and (
            "events" in message[-1]
        ):
            telemetry = message[-1]
            tracer.absorb(telemetry.get("events"))
            tracer.metrics.merge_counters(telemetry.get("counters") or {})
            message = message[:-1]
        return message

    def _absorb_message(self, record, message, name, tracer):
        kind = message[0]
        if kind == "ok":
            self._absorb_result(record, message[1])
        elif kind == "budget":
            record.status = BUDGET
            record.error = message[1]
            record.bound_reached = message[2]
        elif kind == "timeout":
            record.status = TIMEOUT
            record.error = message[1]
            if tracer.enabled:
                # the worker was killed: its event buffer died with it
                tracer.point("runner.kill", check=name, reason="timeout")
                tracer.metrics.counter("runner.kills").inc()
        else:  # crashed
            record.status = CRASHED
            record.error = message[1]
            if tracer.enabled:
                tracer.point("runner.crash", check=name, error=message[1])
                tracer.metrics.counter("runner.crashes").inc()

    def _absorb_result(self, record, result):
        record._result = result
        record.bound_reached = getattr(result, "bound", 0)
        record.peak_memory = getattr(result, "peak_memory", 0)
        status = getattr(result, "status", None)
        record.status = OK if status in _CONCLUSIVE else EXHAUSTED
        if record.status == EXHAUSTED:
            record.error = "engine returned {!r} at bound {}".format(
                status, record.bound_reached
            )
