"""Picklable check tasks the supervisor can run in-process or in a worker.

A *task* is a small callable object capturing everything one property
check needs: the monitor netlist, the objective, the engine name and the
check kwargs. Tasks are plain dataclasses (no closures) so they survive
a trip into a ``multiprocessing`` worker under any start method, and
they expose the two rescaling hooks the retry policy uses:

* :meth:`with_bound` — rebuild the task at a smaller ``max_cycles``
  (bound-halving on retry);
* :meth:`with_budget` — rebuild with a scaled cooperative
  ``time_budget``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ObjectiveTask:
    """One Eq. (2)/(3) bounded check of a 1-bit objective net."""

    engine: str
    netlist: object
    objective_net: int
    max_cycles: int
    property_name: str = ""
    pinned_inputs: object = None
    use_coi: bool = True
    check_kwargs: dict = field(default_factory=dict)

    @property
    def time_budget(self):
        return self.check_kwargs.get("time_budget")

    def with_bound(self, max_cycles):
        return replace(self, max_cycles=max_cycles)

    def with_budget(self, time_budget):
        kwargs = dict(self.check_kwargs)
        kwargs["time_budget"] = time_budget
        return replace(self, check_kwargs=kwargs)

    def __call__(self):
        from repro.core.backends import run_objective

        return run_objective(
            self.engine,
            self.netlist,
            self.objective_net,
            self.max_cycles,
            property_name=self.property_name,
            pinned_inputs=self.pinned_inputs,
            use_coi=self.use_coi,
            **self.check_kwargs,
        )


@dataclass(frozen=True)
class BypassTask:
    """One Eq. (4) CEGIS bypass check for a critical register."""

    netlist: object
    spec: object  # RegisterSpec
    max_cycles: int
    time_budget: float | None = None
    max_cegis_iters: int = 64
    seed: int = 0

    @property
    def property_name(self):
        return "no-bypass({})".format(self.spec.register)

    def with_bound(self, max_cycles):
        return replace(self, max_cycles=max_cycles)

    def with_budget(self, time_budget):
        return replace(self, time_budget=time_budget)

    def __call__(self):
        from repro.properties.bypass import BypassChecker

        return BypassChecker(self.netlist, self.spec).check(
            self.max_cycles,
            time_budget=self.time_budget,
            max_cegis_iters=self.max_cegis_iters,
            seed=self.seed,
        )


@dataclass(frozen=True)
class CallableTask:
    """Adapter for arbitrary callables (tests, custom engines).

    ``fn`` is called as ``fn(max_cycles=..., time_budget=...)`` when it
    accepts those keywords, else bare — keeping ad-hoc tasks compatible
    with the retry policy's rescaling.
    """

    fn: object
    max_cycles: int = 0
    time_budget: float | None = None
    property_name: str = ""
    pass_limits: bool = False

    def with_bound(self, max_cycles):
        return replace(self, max_cycles=max_cycles)

    def with_budget(self, time_budget):
        return replace(self, time_budget=time_budget)

    def __call__(self):
        if self.pass_limits:
            return self.fn(
                max_cycles=self.max_cycles, time_budget=self.time_budget
            )
        return self.fn()
