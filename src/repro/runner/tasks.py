"""Picklable check tasks the supervisor can run in-process or in a worker.

A *task* is a small callable object capturing everything one property
check needs: the monitor netlist, the objective, the engine name and the
check kwargs. Tasks are plain dataclasses (no closures) so they survive
a trip into a ``multiprocessing`` worker under any start method, and
they expose the two rescaling hooks the retry policy uses:

* :meth:`with_bound` — rebuild the task at a smaller ``max_cycles``
  (bound-halving on retry);
* :meth:`with_budget` — rebuild with a scaled cooperative
  ``time_budget``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ObjectiveTask:
    """One Eq. (2)/(3) bounded check of a 1-bit objective net.

    With ``cache_dir`` set, the task participates in the outcome cache
    (:mod:`repro.cache`): the supervisor consults the store before the
    task runs, and the task writes its verdict back *from wherever it
    executes* — the worker process under process isolation, the calling
    process inline — so a crash-killed supervisor still keeps the
    worker's finished proofs. ``cache_resume_base`` is the cached proved
    bound a resumed check continues from; the write-back path refuses to
    extend a proof across a gap (a hand-set ``start_cycle`` without a
    certified prefix stores nothing but violations).
    """

    engine: str
    netlist: object
    objective_net: int
    max_cycles: int
    property_name: str = ""
    pinned_inputs: object = None
    use_coi: bool = True
    check_kwargs: dict = field(default_factory=dict)
    cache_dir: str | None = None
    cache_resume_base: int = 0
    #: Execution hint only (see repro.bmc.session.SessionObjective):
    #: routes the check onto a live per-register solver session when one
    #: exists in this process. Excluded from equality so session and
    #: fresh builds of the same check compare equal, and dropped by
    #: pickling so worker processes fall back to cold engines — a live
    #: solver cannot cross a process boundary.
    session: object = field(default=None, compare=False, repr=False)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["session"] = None
        return state

    def __setstate__(self, state):
        for key, value in state.items():
            object.__setattr__(self, key, value)

    @property
    def time_budget(self):
        return self.check_kwargs.get("time_budget")

    @property
    def start_cycle(self):
        return self.check_kwargs.get("start_cycle", 1)

    def with_bound(self, max_cycles):
        return replace(self, max_cycles=max_cycles)

    def with_budget(self, time_budget):
        kwargs = dict(self.check_kwargs)
        kwargs["time_budget"] = time_budget
        return replace(self, check_kwargs=kwargs)

    def with_resume(self, certified_bound):
        """Resume after a cached proof: skip bounds ``1..certified_bound``."""
        kwargs = dict(self.check_kwargs)
        kwargs["start_cycle"] = certified_bound + 1
        return replace(
            self, check_kwargs=kwargs, cache_resume_base=certified_bound
        )

    def cache_key(self):
        """The content-addressed identity of this check (see repro.cache)."""
        from repro.cache import check_key

        return check_key(
            self.netlist,
            self.objective_net,
            self.engine,
            pinned_inputs=self.pinned_inputs,
            use_coi=self.use_coi,
        )

    def _store_result(self, result):
        if self.cache_dir is None:
            return
        # only a contiguous certified prefix makes the run's deepest
        # bound an absolute claim; a foreign start_cycle breaks that
        contiguous = self.start_cycle == self.cache_resume_base + 1
        status = getattr(result, "status", None)
        if not contiguous and status != "violated":
            return
        from repro.cache import OutcomeCache

        OutcomeCache(self.cache_dir).record_result(
            self.cache_key(),
            result,
            engine=self.engine,
            certified_base=self.cache_resume_base if contiguous else 0,
        )

    def __call__(self):
        from repro.core.backends import run_objective

        result = run_objective(
            self.engine,
            self.netlist,
            self.objective_net,
            self.max_cycles,
            property_name=self.property_name,
            pinned_inputs=self.pinned_inputs,
            use_coi=self.use_coi,
            session=self.session,
            **self.check_kwargs,
        )
        try:
            self._store_result(result)
        except Exception:  # noqa: BLE001 - cache failure must not cost a verdict
            pass
        return result


@dataclass(frozen=True)
class GroupObjectiveTask:
    """One cone-shared group of Eq. (3) tracking objectives (BMC only).

    Wraps :class:`~repro.bmc.group.MultiObjectiveBmc` over objectives
    whose fan-in cones overlap: one clone, one unrolling per bound, one
    solver serving every member via assumptions. The parallel scheduler
    runs each group as a *single* pool task — the shared encoding is the
    whole point, splitting the members across workers would re-pay it
    per member. Returns the per-member result list in member order.

    Grouped checks do not participate in the outcome cache (member
    verdicts are entangled with the group's shared encoding budget),
    matching the serial ``share_cones`` path.
    """

    netlist: object
    objective_nets: tuple
    max_cycles: int
    property_names: tuple = ()
    pinned_inputs: object = None
    time_budget: float | None = None

    @property
    def property_name(self):
        return "group({})".format(
            ",".join(self.property_names) or len(self.objective_nets)
        )

    def with_bound(self, max_cycles):
        return replace(self, max_cycles=max_cycles)

    def with_budget(self, time_budget):
        return replace(self, time_budget=time_budget)

    def __call__(self):
        from repro.bmc.group import MultiObjectiveBmc

        multi = MultiObjectiveBmc(
            self.netlist,
            list(self.objective_nets),
            property_names=list(self.property_names) or None,
            pinned_inputs=self.pinned_inputs,
        )
        return multi.check_all(self.max_cycles, time_budget=self.time_budget)


@dataclass(frozen=True)
class BypassTask:
    """One Eq. (4) CEGIS bypass check for a critical register."""

    netlist: object
    spec: object  # RegisterSpec
    max_cycles: int
    time_budget: float | None = None
    max_cegis_iters: int = 64
    seed: int = 0

    @property
    def property_name(self):
        return "no-bypass({})".format(self.spec.register)

    def with_bound(self, max_cycles):
        return replace(self, max_cycles=max_cycles)

    def with_budget(self, time_budget):
        return replace(self, time_budget=time_budget)

    def __call__(self):
        from repro.properties.bypass import BypassChecker

        return BypassChecker(self.netlist, self.spec).check(
            self.max_cycles,
            time_budget=self.time_budget,
            max_cegis_iters=self.max_cegis_iters,
            seed=self.seed,
        )


@dataclass(frozen=True)
class CallableTask:
    """Adapter for arbitrary callables (tests, custom engines).

    ``fn`` is called as ``fn(max_cycles=..., time_budget=...)`` when it
    accepts those keywords, else bare — keeping ad-hoc tasks compatible
    with the retry policy's rescaling.
    """

    fn: object
    max_cycles: int = 0
    time_budget: float | None = None
    property_name: str = ""
    pass_limits: bool = False

    def with_bound(self, max_cycles):
        return replace(self, max_cycles=max_cycles)

    def with_budget(self, time_budget):
        return replace(self, time_budget=time_budget)

    def __call__(self):
        if self.pass_limits:
            return self.fn(
                max_cycles=self.max_cycles, time_budget=self.time_budget
            )
        return self.fn()
