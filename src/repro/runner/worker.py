"""Process isolation for one check attempt.

The supervisor calls :func:`run_in_process` to execute a task in a
``multiprocessing`` worker with a hard wall-clock timeout and an
optional address-space cap. The worker speaks a tiny tagged-tuple
protocol over a one-way pipe:

* ``("ok", result)`` — the engine returned a result object;
* ``("budget", message, bound_reached)`` — it raised
  :class:`ResourceBudgetExceeded`;
* ``("crashed", message)`` — it raised anything else (including
  ``MemoryError`` from the rlimit cap), or the process died without
  sending (segfault, ``os._exit``, OOM-kill) — detected as EOF on the
  pipe;
* ``("timeout", message)`` — the supervisor killed the worker after the
  hard timeout.

When the supervisor is tracing (``collect_events=True``) the worker
buffers its own telemetry in a :class:`~repro.obs.tracer.BufferTracer`
and appends one extra element to the child-sent tuples above — a dict
``{"events": [...], "counters": {...}}`` — which the supervisor grafts
under its attempt span. A killed or crashed-without-send worker loses
its buffer by construction; the supervisor's kill event records that.

On Linux workers are forked, so task objects are *not* re-pickled on
the way in (only results travel back through the pipe); under spawn
start methods everything in :mod:`repro.runner.tasks` pickles cleanly.
"""

from __future__ import annotations

import multiprocessing

from repro.errors import ResourceBudgetExceeded
from repro.obs.profiling import profiled
from repro.obs.tracer import NULL_TRACER, BufferTracer, set_tracer

_KILL_GRACE = 5.0  # seconds to wait after terminate() before SIGKILL


def _apply_memory_cap(memory_bytes):
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    new_hard = hard if hard != resource.RLIM_INFINITY else memory_bytes
    resource.setrlimit(
        resource.RLIMIT_AS, (min(memory_bytes, new_hard), new_hard)
    )


def _child_main(conn, task, name, attempt_index, memory_bytes, injector,
                collect_events=False, profile_dir=None):
    """Worker entry point: run the task, report through the pipe."""
    # A forked child inherits the parent's global tracer — including an
    # open trace-file handle it must never write to (interleaved ids).
    # Replace it before any engine code runs: a buffer when the parent
    # wants events shipped back, the null tracer otherwise.
    buffer = BufferTracer() if collect_events else None
    set_tracer(buffer if collect_events else NULL_TRACER)

    def payload(base):
        if buffer is None:
            return base
        return base + ({
            "events": buffer.drain(),
            "counters": buffer.metrics.snapshot()["counters"],
        },)

    try:
        if memory_bytes is not None:
            _apply_memory_cap(memory_bytes)
        if injector is not None:
            injector.fire(name, attempt_index, in_worker=True)
        with profiled(profile_dir,
                      "{}.attempt{}".format(name, attempt_index)):
            result = task()
        conn.send(payload(("ok", result)))
    except ResourceBudgetExceeded as exc:
        conn.send(payload(
            ("budget", str(exc), getattr(exc, "bound_reached", 0))
        ))
    except MemoryError as exc:
        conn.send(payload(("crashed", "MemoryError: {}".format(exc))))
    except BaseException as exc:  # noqa: BLE001 - isolation boundary
        try:
            conn.send(payload(
                ("crashed", "{}: {}".format(type(exc).__name__, exc))
            ))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


def _context():
    """Prefer fork (no task pickling, cheap COW memory) when available."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context()


def run_in_process(task, name="check", attempt_index=0, hard_timeout=None,
                   memory_bytes=None, injector=None, mp_context=None,
                   collect_events=False, profile_dir=None):
    """Run ``task()`` in a worker; returns a protocol tuple (see module doc)."""
    ctx = mp_context if mp_context is not None else _context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_child_main,
        args=(child_conn, task, name, attempt_index, memory_bytes, injector,
              collect_events, profile_dir),
        daemon=True,
    )
    proc.start()
    child_conn.close()  # keep exactly one writer so EOF is observable
    try:
        if not parent_conn.poll(hard_timeout):
            proc.terminate()
            proc.join(_KILL_GRACE)
            if proc.is_alive():  # pragma: no cover - terminate() sufficed
                proc.kill()
                proc.join()
            return (
                "timeout",
                "hard timeout: worker killed after {:.1f}s".format(
                    hard_timeout
                ),
            )
        try:
            message = parent_conn.recv()
        except EOFError:
            proc.join()
            return (
                "crashed",
                "worker died without a result (exit code {})".format(
                    proc.exitcode
                ),
            )
        proc.join()
        return message
    finally:
        parent_conn.close()
        if proc.is_alive():  # pragma: no cover - defensive cleanup
            proc.kill()
            proc.join()
