"""SAT layer: CNF container, DIMACS I/O, CDCL solver, Tseitin encoding."""

from repro.sat.cnf import Cnf
from repro.sat.dimacs import dump, dumps, load, loads
from repro.sat.solver import SAT, UNKNOWN, UNSAT, SolveResult, Solver, luby
from repro.sat.tseitin import CombEncoder, encode_cell

__all__ = [
    "Cnf",
    "dump",
    "dumps",
    "load",
    "loads",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "SolveResult",
    "Solver",
    "luby",
    "CombEncoder",
    "encode_cell",
]
